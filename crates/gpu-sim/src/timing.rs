//! Roofline timing model.
//!
//! A kernel's simulated duration is the larger of its compute time and its
//! memory time (the classic roofline), with the achievable fractions of peak
//! derated by occupancy: a memory-bound kernel needs enough resident warps to
//! hide DRAM latency, which is exactly why the paper tunes `bin` and register
//! usage instead of simply maximizing per-block resources.

use crate::{DeviceSpec, KernelTraffic, Occupancy};

/// Breakdown of one kernel's simulated execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Time the arithmetic pipeline needs, in seconds.
    pub compute_s: f64,
    /// Time the memory system needs, in seconds.
    pub memory_s: f64,
    /// Kernel launch overhead, in seconds.
    pub launch_overhead_s: f64,
    /// Total simulated time (max of compute/memory plus overhead).
    pub total_s: f64,
    /// True when the memory term dominates.
    pub memory_bound: bool,
}

/// Tunable constants of the roofline model.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// Fraction of peak FLOP/s a well-written kernel sustains at full
    /// occupancy (dense-ish inner loops rarely exceed ~60 %).
    pub compute_efficiency: f64,
    /// Fraction of peak DRAM bandwidth sustained by coalesced streams.
    pub coalesced_efficiency: f64,
    /// Fraction of peak DRAM bandwidth sustained by the discontiguous,
    /// sparse gathers of `get_hermitian` *without* the texture path
    /// (§2.2 Challenge 1).  The gathers fetch whole `f`-float θ vectors, so
    /// each access is internally contiguous but the vectors themselves are
    /// scattered across `Θᵀ`; the sustained fraction sits between random-word
    /// access and fully coalesced streams.
    pub scattered_efficiency: f64,
    /// Occupancy below this knee linearly degrades achievable bandwidth
    /// (not enough warps in flight to hide latency).
    pub occupancy_knee: f64,
    /// Fixed kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        Self {
            compute_efficiency: 0.55,
            coalesced_efficiency: 0.75,
            scattered_efficiency: 0.42,
            occupancy_knee: 0.4,
            launch_overhead_s: 8e-6,
        }
    }
}

impl TimingModel {
    /// Derating factor from occupancy: 1.0 at or above the knee, linear
    /// below it (never below 0.05 so times stay finite).
    pub fn occupancy_factor(&self, occupancy: f64) -> f64 {
        if occupancy >= self.occupancy_knee {
            1.0
        } else {
            (occupancy / self.occupancy_knee).max(0.05)
        }
    }

    /// Prices one kernel.
    ///
    /// `scattered` marks kernels whose global traffic is dominated by
    /// irregular gathers (the un-optimized `get_hermitian`); coalesced
    /// kernels (batched solves, streaming writes) use the higher efficiency.
    pub fn kernel_time(
        &self,
        spec: &DeviceSpec,
        traffic: &KernelTraffic,
        occupancy: &Occupancy,
        scattered: bool,
    ) -> KernelTiming {
        let occ = self.occupancy_factor(occupancy.occupancy);

        let peak_flops = spec.peak_gflops() * 1e9;
        let compute_s = traffic.flops / (peak_flops * self.compute_efficiency * occ);

        let global_eff = if scattered {
            self.scattered_efficiency
        } else {
            self.coalesced_efficiency
        };
        let global_bw = spec.global_bw_gbs * 1e9 * global_eff * occ;
        let texture_bw = spec.texture_bw_gbs * 1e9 * occ.max(0.5);
        let shared_bw = spec.shared_bw_gbs * 1e9;

        let memory_s = traffic.effective_global_bytes() / global_bw
            + traffic.texture_hit_bytes() / texture_bw
            + traffic.shared_bytes() / shared_bw;

        let busy = compute_s.max(memory_s);
        KernelTiming {
            compute_s,
            memory_s,
            launch_overhead_s: self.launch_overhead_s,
            total_s: busy + self.launch_overhead_s,
            memory_bound: memory_s >= compute_s,
        }
    }

    /// Time to copy `bytes` over a PCIe-class link of `gbs` GB/s, including a
    /// fixed per-transfer latency.
    pub fn transfer_time(&self, bytes: f64, gbs: f64) -> f64 {
        const PCIE_LATENCY_S: f64 = 10e-6;
        PCIE_LATENCY_S + bytes / (gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_occupancy(spec: &DeviceSpec) -> Occupancy {
        Occupancy::compute(spec, 256, 32, 0)
    }

    #[test]
    fn compute_bound_kernel_scales_with_flops() {
        let spec = DeviceSpec::titan_x();
        let model = TimingModel::default();
        let occ = full_occupancy(&spec);
        let t1 = model.kernel_time(
            &spec,
            &KernelTraffic {
                flops: 1e9,
                ..KernelTraffic::new()
            },
            &occ,
            false,
        );
        let t2 = model.kernel_time(
            &spec,
            &KernelTraffic {
                flops: 2e9,
                ..KernelTraffic::new()
            },
            &occ,
            false,
        );
        assert!(!t1.memory_bound);
        let r = (t2.total_s - model.launch_overhead_s) / (t1.total_s - model.launch_overhead_s);
        assert!((r - 2.0).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_kernel_detected() {
        let spec = DeviceSpec::titan_x();
        let model = TimingModel::default();
        let occ = full_occupancy(&spec);
        // 1 GB of scattered reads but almost no flops.
        let t = model.kernel_time(
            &spec,
            &KernelTraffic {
                flops: 1e6,
                global_read_bytes: 1e9,
                ..KernelTraffic::new()
            },
            &occ,
            true,
        );
        assert!(t.memory_bound);
        assert!(t.memory_s > t.compute_s * 100.0);
    }

    #[test]
    fn texture_hits_are_cheaper_than_global_reads() {
        let spec = DeviceSpec::titan_x();
        let model = TimingModel::default();
        let occ = full_occupancy(&spec);
        let uncached = KernelTraffic {
            global_read_bytes: 1e9,
            ..KernelTraffic::new()
        };
        let cached = KernelTraffic {
            texture_read_bytes: 1e9,
            texture_hit_rate: 0.9,
            ..KernelTraffic::new()
        };
        let t_uncached = model.kernel_time(&spec, &uncached, &occ, true);
        let t_cached = model.kernel_time(&spec, &cached, &occ, true);
        assert!(
            t_cached.total_s < t_uncached.total_s * 0.5,
            "cached {} vs uncached {}",
            t_cached.total_s,
            t_uncached.total_s
        );
    }

    #[test]
    fn low_occupancy_slows_the_kernel_down() {
        let spec = DeviceSpec::titan_x();
        let model = TimingModel::default();
        let high = Occupancy::compute(&spec, 256, 32, 0);
        // Huge shared-memory block: only one or two resident blocks.
        let low = Occupancy::compute(&spec, 128, 32, 48 * 1024);
        assert!(low.occupancy < high.occupancy);
        let traffic = KernelTraffic {
            flops: 1e9,
            global_read_bytes: 5e8,
            ..KernelTraffic::new()
        };
        let t_high = model.kernel_time(&spec, &traffic, &high, true);
        let t_low = model.kernel_time(&spec, &traffic, &low, true);
        assert!(t_low.total_s > t_high.total_s);
    }

    #[test]
    fn occupancy_factor_clamps() {
        let m = TimingModel::default();
        assert_eq!(m.occupancy_factor(0.9), 1.0);
        assert_eq!(m.occupancy_factor(m.occupancy_knee), 1.0);
        assert!(m.occupancy_factor(0.2) < 1.0);
        assert!(m.occupancy_factor(0.0) >= 0.05);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let m = TimingModel::default();
        let tiny = m.transfer_time(1.0, 16.0);
        assert!(tiny >= 10e-6);
        let one_gb = m.transfer_time(1e9, 16.0);
        assert!((one_gb - (10e-6 + 1.0 / 16.0)).abs() < 1e-9);
    }

    #[test]
    fn faster_device_is_faster() {
        let model = TimingModel::default();
        let titan = DeviceSpec::titan_x();
        let gk = DeviceSpec::gk210();
        let traffic = KernelTraffic {
            flops: 1e10,
            global_read_bytes: 1e9,
            ..KernelTraffic::new()
        };
        let occ_t = full_occupancy(&titan);
        let occ_g = full_occupancy(&gk);
        let tt = model.kernel_time(&titan, &traffic, &occ_t, false);
        let tg = model.kernel_time(&gk, &traffic, &occ_g, false);
        assert!(tt.total_s < tg.total_s);
    }
}

//! Benchmark and reproduction harness for cumf-rs.
//!
//! The [`experiments`] module contains one function per table/figure of the
//! cuMF paper; each returns structured data.  The `repro` binary prints them
//! as text tables, the criterion benches under `benches/` measure the
//! underlying kernels on real (scaled-down) workloads, and `EXPERIMENTS.md`
//! records paper-reported vs reproduced values.

pub mod experiments;

pub use experiments::*;

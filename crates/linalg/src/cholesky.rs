//! Cholesky factorization and solve for the small SPD Hermitian systems of
//! ALS.
//!
//! The regularized normal-equation matrices `A_u = Σ θ_v θ_vᵀ + λ n_{x_u} I`
//! are symmetric positive definite whenever `λ > 0`, so Cholesky (`A = L·Lᵀ`)
//! is the natural solver — it is also what cuBLAS's batched POTRF/POTRS pair
//! would run on the real GPU.

use std::fmt;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyError {
    /// The pivot index at which a non-positive diagonal was encountered.
    pub pivot: usize,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} is non-positive)",
            self.pivot
        )
    }
}

impl std::error::Error for CholeskyError {}

/// In-place Cholesky factorization of a row-major `f × f` SPD matrix.
///
/// On success the lower triangle (including diagonal) of `a` holds `L` such
/// that `A = L·Lᵀ`; the strict upper triangle is left untouched.
pub fn cholesky_factor(a: &mut [f32], f: usize) -> Result<(), CholeskyError> {
    debug_assert_eq!(a.len(), f * f);
    for j in 0..f {
        // Diagonal element.
        let mut d = a[j * f + j] as f64;
        for k in 0..j {
            let l = a[j * f + k] as f64;
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError { pivot: j });
        }
        let d = d.sqrt();
        a[j * f + j] = d as f32;
        let inv_d = 1.0 / d;
        // Column below the diagonal.
        for i in (j + 1)..f {
            let mut s = a[i * f + j] as f64;
            for k in 0..j {
                s -= (a[i * f + k] as f64) * (a[j * f + k] as f64);
            }
            a[i * f + j] = (s * inv_d) as f32;
        }
    }
    Ok(())
}

/// Solves `L·Lᵀ·x = b` in place given a factor produced by
/// [`cholesky_factor`]; `b` is overwritten with the solution.
pub fn cholesky_solve_factored(l: &[f32], f: usize, b: &mut [f32]) {
    debug_assert_eq!(l.len(), f * f);
    debug_assert_eq!(b.len(), f);
    // Forward substitution: L·y = b.
    for i in 0..f {
        let mut s = b[i] as f64;
        for k in 0..i {
            s -= (l[i * f + k] as f64) * (b[k] as f64);
        }
        b[i] = (s / l[i * f + i] as f64) as f32;
    }
    // Backward substitution: Lᵀ·x = y.
    for i in (0..f).rev() {
        let mut s = b[i] as f64;
        for k in (i + 1)..f {
            s -= (l[k * f + i] as f64) * (b[k] as f64);
        }
        b[i] = (s / l[i * f + i] as f64) as f32;
    }
}

/// Solves the SPD system `A·x = b`, destroying `a` (which receives the
/// Cholesky factor) and overwriting `b` with the solution `x`.
///
/// This is the per-row work item of the paper's `batch_solve` phase and
/// costs `O(f³)` as accounted in Table 3.
pub fn cholesky_solve(a: &mut [f32], f: usize, b: &mut [f32]) -> Result<(), CholeskyError> {
    cholesky_factor(a, f)?;
    cholesky_solve_factored(a, f, b);
    Ok(())
}

/// Computes the residual `‖A·x − b‖₂` for testing/validation purposes, given
/// the original (unfactored) matrix.
pub fn residual_norm(a: &[f32], f: usize, x: &[f32], b: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..f {
        let mut s = 0.0f64;
        for j in 0..f {
            s += (a[i * f + j] as f64) * (x[j] as f64);
        }
        let r = s - b[i] as f64;
        acc += r * r;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{add_diagonal, syr_full};

    use rand::prelude::*;

    /// Builds a random SPD matrix as a sum of rank-1 terms plus a ridge,
    /// exactly the structure ALS produces.
    fn random_spd(f: usize, terms: usize, lambda: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = vec![0.0f32; f * f];
        for _ in 0..terms {
            let x: Vec<f32> = (0..f).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
            syr_full(&mut a, &x);
        }
        add_diagonal(&mut a, f, lambda);
        a
    }

    #[test]
    fn solves_identity() {
        let mut a = vec![0.0f32; 9];
        add_diagonal(&mut a, 3, 1.0);
        let mut b = vec![2.0, -3.0, 4.0];
        cholesky_solve(&mut a, 3, &mut b).unwrap();
        assert_eq!(b, vec![2.0, -3.0, 4.0]);
    }

    #[test]
    fn solves_known_2x2() {
        // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5]
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        let mut b = vec![10.0, 8.0];
        cholesky_solve(&mut a, 2, &mut b).unwrap();
        assert!((b[0] - 1.75).abs() < 1e-5);
        assert!((b[1] - 1.5).abs() < 1e-5);
    }

    #[test]
    fn factor_of_non_spd_fails() {
        // Negative diagonal is not SPD.
        let mut a = vec![-1.0, 0.0, 0.0, 1.0];
        assert_eq!(cholesky_factor(&mut a, 2), Err(CholeskyError { pivot: 0 }));
        // Rank-deficient (no ridge) with fewer rank-1 terms than f.
        let mut rng = StdRng::seed_from_u64(1);
        let f = 6;
        let mut a = vec![0.0f32; f * f];
        let x: Vec<f32> = (0..f).map(|_| rng.random::<f32>()).collect();
        syr_full(&mut a, &x);
        assert!(cholesky_factor(&mut a, f).is_err());
    }

    #[test]
    fn random_spd_systems_have_small_residual() {
        for (f, terms, seed) in [
            (4usize, 10usize, 1u64),
            (16, 40, 2),
            (32, 100, 3),
            (64, 200, 4),
        ] {
            let a = random_spd(f, terms, 0.1, seed);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let b: Vec<f32> = (0..f).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
            let mut a_work = a.clone();
            let mut x = b.clone();
            cholesky_solve(&mut a_work, f, &mut x).unwrap();
            let res = residual_norm(&a, f, &x, &b);
            let scale = b.iter().map(|&v| (v as f64).abs()).sum::<f64>().max(1.0);
            assert!(res / scale < 1e-3, "f={f} residual {res}");
        }
    }

    #[test]
    fn factored_solve_reusable_for_multiple_rhs() {
        let f = 8;
        let a = random_spd(f, 20, 0.5, 9);
        let mut l = a.clone();
        cholesky_factor(&mut l, f).unwrap();
        for s in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(s);
            let b: Vec<f32> = (0..f).map(|_| rng.random::<f32>()).collect();
            let mut x = b.clone();
            cholesky_solve_factored(&l, f, &mut x);
            assert!(residual_norm(&a, f, &x, &b) < 1e-3);
        }
    }

    #[test]
    fn error_display() {
        let e = CholeskyError { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }
}

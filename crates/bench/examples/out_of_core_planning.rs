//! Out-of-core planning, prefetching and fault tolerance (§4.3–4.4 of the
//! paper) on the very large Table 5 workloads.
//!
//! This example does three things:
//!
//! 1. asks the partition planner (equation (8)) how each paper-scale data
//!    set would be split across four 12 GB GPUs;
//! 2. shows how much of the host→device streaming the prefetching pipeline
//!    hides behind compute;
//! 3. demonstrates checkpoint / restart by interrupting a training run and
//!    resuming it from the latest checkpoint.
//!
//! Run with:
//! ```text
//! cargo run --release --example out_of_core_planning
//! ```

use cumf_core::als::BaseAls;
use cumf_core::checkpoint::{Checkpoint, CheckpointManager};
use cumf_core::config::AlsConfig;
use cumf_core::costmodel::{cumf_iteration_cost, ClusterConfig};
use cumf_core::oocore::{hidden_transfer_fraction, pipeline_time, BatchCost};
use cumf_core::planner::{plan, ProblemDims};
use cumf_data::datasets::PaperDataset;
use cumf_data::synth::SyntheticConfig;
use cumf_gpu_sim::DeviceSpec;

fn main() {
    // --- 1. Partition plans for the paper-scale problems -------------------
    println!("partition plans on a 12 GB GK210 (equation (8), 500 MB headroom):\n");
    println!("data set        |    m        |    n        |     Nz       |  f  |  p |    q");
    println!("----------------+-------------+-------------+--------------+-----+----+------");
    for ds in PaperDataset::all() {
        let s = ds.spec();
        let dims = ProblemDims::new(s.m, s.n, s.nz, s.f as u64);
        match plan(&dims, &DeviceSpec::gk210(), 32, 1 << 22) {
            Ok(p) => println!(
                "{:<15} | {:>11} | {:>11} | {:>12} | {:>3} | {:>2} | {:>4}",
                s.name, s.m, s.n, s.nz, s.f, p.p, p.q
            ),
            Err(e) => println!("{:<15} | {e}", s.name),
        }
    }

    // --- 2. How much streaming the prefetcher hides ------------------------
    let spec = PaperDataset::Facebook.spec();
    let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
    let cost = cumf_iteration_cost(&dims, &ClusterConfig::four_k80());
    println!(
        "\nFacebook-scale iteration on 4 x GK210: {:.0} s total ({:.0} s kernels, {:.0} s reduces, {:.0} s exposed transfers)",
        cost.total_s(),
        cost.get_hermitian_s + cost.batch_solve_s,
        cost.reduce_s,
        cost.transfer_s
    );

    let q = cost.plan_x.q.max(2);
    let per_batch_compute = (cost.get_hermitian_s + cost.batch_solve_s) / (2.0 * q as f64);
    let per_batch_transfer = per_batch_compute * 0.6; // R block streaming at 25 GB/s
    let batches = vec![
        BatchCost {
            transfer_s: per_batch_transfer,
            compute_s: per_batch_compute
        };
        q
    ];
    println!(
        "out-of-core pipeline over q = {q} batches: serial {:.0} s, prefetched {:.0} s ({:.0} % of transfers hidden)",
        pipeline_time(&batches, false),
        pipeline_time(&batches, true),
        100.0 * hidden_transfer_fraction(&batches)
    );

    // --- 3. Checkpoint / restart -------------------------------------------
    let data = SyntheticConfig {
        m: 400,
        n: 200,
        nnz: 12_000,
        rank: 6,
        ..Default::default()
    }
    .generate();
    let ratings = data.to_csr();
    let config = AlsConfig {
        f: 16,
        lambda: 0.05,
        iterations: 6,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!("cumf_oocore_example_{}", std::process::id()));
    let manager = CheckpointManager::new(&dir).expect("create checkpoint dir");

    // Run three iterations, checkpointing each one, then "crash".
    let mut engine = BaseAls::new(config.clone(), ratings.clone());
    for iter in 1..=3u64 {
        engine.iterate();
        manager
            .save(&Checkpoint {
                iteration: iter,
                x: engine.x().clone(),
                theta: engine.theta().clone(),
            })
            .expect("checkpoint");
    }
    let rmse_at_crash = engine.train_rmse();
    drop(engine);

    // Restart from the latest checkpoint and finish the remaining iterations.
    let latest = manager
        .load_latest()
        .expect("read checkpoints")
        .expect("checkpoint exists");
    println!(
        "\nrestarting from checkpoint after iteration {} (train RMSE {:.4})",
        latest.iteration, rmse_at_crash
    );
    let mut resumed = BaseAls::new(config, ratings);
    resumed.set_factors(latest.x, latest.theta);
    for _ in latest.iteration as usize..6 {
        resumed.iterate();
    }
    println!(
        "after resuming to iteration 6: train RMSE {:.4}",
        resumed.train_rmse()
    );

    std::fs::remove_dir_all(&dir).ok();
}

//! Multi-GPU machine abstraction.
//!
//! A [`GpuCluster`] bundles the pieces SU-ALS (Algorithm 3) needs: `p`
//! devices with their allocators and timelines, the PCIe topology between
//! them, the timing model, and a shared profiler.

use crate::{
    DeviceAllocator, DeviceSpec, DeviceTimeline, EventKind, PcieTopology, Profiler, TimingModel,
};

/// A single machine with one or more simulated GPUs.
#[derive(Debug, Clone)]
pub struct GpuCluster {
    spec: DeviceSpec,
    topology: PcieTopology,
    timing: TimingModel,
    allocators: Vec<DeviceAllocator>,
    timelines: Vec<DeviceTimeline>,
    profiler: Profiler,
}

impl GpuCluster {
    /// Builds a cluster of `n_gpus` identical devices over the given
    /// topology.
    pub fn new(spec: DeviceSpec, topology: PcieTopology, n_gpus: usize) -> Self {
        assert!(n_gpus >= 1, "a cluster needs at least one GPU");
        assert_eq!(
            topology.n_gpus(),
            n_gpus,
            "topology and cluster GPU count differ"
        );
        let allocators = (0..n_gpus)
            .map(|_| DeviceAllocator::new(spec.global_mem_bytes))
            .collect();
        let timelines = (0..n_gpus).map(|_| DeviceTimeline::new()).collect();
        Self {
            spec,
            topology,
            timing: TimingModel::default(),
            allocators,
            timelines,
            profiler: Profiler::new(),
        }
    }

    /// One Titan X on a flat topology — the single-GPU setting of §5.2–5.3.
    pub fn single_titan_x() -> Self {
        Self::new(DeviceSpec::titan_x(), PcieTopology::flat(1), 1)
    }

    /// `n` Titan X cards on a flat PCIe root — the scalability setting of §5.4.
    pub fn titan_x_flat(n: usize) -> Self {
        Self::new(DeviceSpec::titan_x(), PcieTopology::flat(n), n)
    }

    /// Four GK210 dies (two K80 boards) on a dual-socket machine — the
    /// very-large-problem setting of §5.5.
    pub fn k80_dual_socket() -> Self {
        Self::new(DeviceSpec::gk210(), PcieTopology::dual_socket(4), 4)
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.allocators.len()
    }

    /// Device specification (all devices are identical).
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Interconnect topology.
    pub fn topology(&self) -> &PcieTopology {
        &self.topology
    }

    /// Timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Replaces the timing model (for sensitivity studies).
    pub fn set_timing(&mut self, timing: TimingModel) {
        self.timing = timing;
    }

    /// Allocator of device `g`.
    pub fn allocator(&self, g: usize) -> &DeviceAllocator {
        &self.allocators[g]
    }

    /// Mutable allocator of device `g`.
    pub fn allocator_mut(&mut self, g: usize) -> &mut DeviceAllocator {
        &mut self.allocators[g]
    }

    /// Timeline of device `g`.
    pub fn timeline(&self, g: usize) -> &DeviceTimeline {
        &self.timelines[g]
    }

    /// Mutable timeline of device `g`.
    pub fn timeline_mut(&mut self, g: usize) -> &mut DeviceTimeline {
        &mut self.timelines[g]
    }

    /// The shared profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Simulated wall-clock: the latest instant at which any device is busy.
    pub fn simulated_time(&self) -> f64 {
        self.timelines
            .iter()
            .map(|t| t.now())
            .fold(0.0f64, f64::max)
    }

    /// Advances every device to the same instant (a global barrier, used
    /// between the get-hermitian and reduction phases of SU-ALS).
    pub fn global_barrier(&mut self) -> f64 {
        let t = self.simulated_time();
        for tl in &mut self.timelines {
            tl.barrier_at(t);
        }
        t
    }

    /// Records a kernel of `duration` seconds on device `g` starting when
    /// that device's compute engine is free, and returns its completion time.
    pub fn run_kernel(&mut self, g: usize, name: &str, duration: f64) -> f64 {
        let start = self.timelines[g].compute_idle_at();
        let done = self.timelines[g].enqueue_compute(duration);
        self.profiler
            .record(g, name, EventKind::Kernel, start, duration);
        done
    }

    /// Records a transfer of `duration` seconds on device `g`'s copy engine
    /// (started no earlier than `not_before`) and returns its completion time.
    pub fn run_transfer(&mut self, g: usize, name: &str, duration: f64, not_before: f64) -> f64 {
        let start = self.timelines[g].copy_idle_at().max(not_before);
        let done = self.timelines[g].enqueue_copy_after(duration, not_before);
        self.profiler
            .record(g, name, EventKind::Transfer, start, duration);
        done
    }

    /// Resets every timeline and the profiler (allocators keep their
    /// contents); used between benchmark repetitions.
    pub fn reset_time(&mut self) {
        for t in &mut self.timelines {
            *t = DeviceTimeline::new();
        }
        self.profiler.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_shapes() {
        let c = GpuCluster::single_titan_x();
        assert_eq!(c.n_gpus(), 1);
        let c = GpuCluster::titan_x_flat(4);
        assert_eq!(c.n_gpus(), 4);
        assert_eq!(c.topology().n_sockets(), 1);
        let c = GpuCluster::k80_dual_socket();
        assert_eq!(c.n_gpus(), 4);
        assert_eq!(c.topology().n_sockets(), 2);
        assert_eq!(c.spec().total_cores(), 2496);
    }

    #[test]
    #[should_panic(expected = "topology and cluster GPU count differ")]
    fn mismatched_topology_panics() {
        GpuCluster::new(DeviceSpec::titan_x(), PcieTopology::flat(2), 4);
    }

    #[test]
    fn kernels_and_transfers_advance_time() {
        let mut c = GpuCluster::titan_x_flat(2);
        c.run_kernel(0, "k0", 1.0);
        c.run_kernel(1, "k1", 2.0);
        c.run_transfer(0, "t0", 0.5, 0.0);
        assert_eq!(c.simulated_time(), 2.0);
        assert_eq!(c.profiler().len(), 3);
        // Device 0 overlap: transfer hidden behind its 1 s kernel.
        assert_eq!(c.timeline(0).now(), 1.0);
    }

    #[test]
    fn global_barrier_aligns_devices() {
        let mut c = GpuCluster::titan_x_flat(2);
        c.run_kernel(0, "fast", 1.0);
        c.run_kernel(1, "slow", 3.0);
        let t = c.global_barrier();
        assert_eq!(t, 3.0);
        c.run_kernel(0, "next", 1.0);
        assert_eq!(c.timeline(0).now(), 4.0);
    }

    #[test]
    fn reset_time_clears_timelines_and_profiler() {
        let mut c = GpuCluster::titan_x_flat(2);
        c.run_kernel(0, "k", 1.0);
        c.reset_time();
        assert_eq!(c.simulated_time(), 0.0);
        assert!(c.profiler().is_empty());
    }

    #[test]
    fn allocators_are_per_device() {
        let mut c = GpuCluster::titan_x_flat(2);
        c.allocator_mut(0).alloc("theta", 100).unwrap();
        assert_eq!(c.allocator(0).used(), 100);
        assert_eq!(c.allocator(1).used(), 0);
    }
}

//! Fault-tolerance checkpointing (§4.4 of the paper).
//!
//! "During ALS execution we asynchronously checkpoint X and Θ generated from
//! the latest iteration, into a connected parallel file system.  When the
//! machine fails, the latest X or Θ (whichever is more recent) is used to
//! restart ALS."
//!
//! The format is a small self-describing binary file (magic, version,
//! iteration, shapes, little-endian `f32` payloads) — no external
//! serialization crates needed.
//!
//! Between full checkpoints, incremental **fold-ins** (see
//! [`crate::foldin`]) are journaled as [`CheckpointDelta`] records: changed
//! user rows plus optional appended user/item rows, chained onto the full
//! checkpoint they were applied after.  A delta file is `O(u·f)` on disk —
//! the whole point of the incremental path — and
//! [`CheckpointManager::load_latest_with_deltas`] replays the chain on
//! restore, so a crash after a fold-in loses nothing even though no full
//! checkpoint was rewritten.
//!
//! Left alone, a delta chain grows until the next retrain, and restore time
//! grows with it.  A [`CompactionPolicy`] bounds that:
//! [`CheckpointManager::compact`] folds the latest chain into a fresh full
//! checkpoint (stamped `base_iteration + 1`, so a crash between the write
//! and the cleanup can never replay a delta twice — the folded chain is
//! keyed to the old iteration and simply ignored) and prunes the folded
//! records; [`CheckpointManager::save_delta_compacting`] journals a delta
//! and compacts automatically once the chain exceeds the policy's record
//! count or its on-disk size exceeds the configured fraction of the base
//! checkpoint.

use cumf_linalg::FactorMatrix;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

const MAGIC: &[u8; 8] = b"CUMFCKP1";
/// Version 2 adds the base factor shapes (replay-safety guard); v1 records
/// are rejected as unreadable rather than replayed without the guard.
const DELTA_MAGIC: &[u8; 8] = b"CUMFDLT2";

/// A checkpoint of the factor matrices after a given iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Iteration number the factors were produced by (1-based).
    pub iteration: u64,
    /// User factors `X`.
    pub x: FactorMatrix,
    /// Item factors `Θ`.
    pub theta: FactorMatrix,
}

/// An incremental update journaled between full checkpoints: the durable
/// record of one fold-in, replayable on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDelta {
    /// Iteration of the full checkpoint this delta chains from.
    pub base_iteration: u64,
    /// 1-based position in the delta chain after that checkpoint.
    pub seq: u64,
    /// User rows (`X`) of the exact state this delta was built against —
    /// the base checkpoint plus every earlier delta in the chain.  Guards
    /// replay: an iteration number alone cannot tell a stale chain from
    /// the checkpoint a later run rewrote under the same number, but a
    /// shape mismatch turns that silent corruption into a loud error.
    pub base_users: u64,
    /// Item rows (`Θ`) of the state this delta was built against.
    pub base_items: u64,
    /// Users whose factor rows changed (parallel to `changed_rows`).
    pub changed_ids: Vec<u32>,
    /// One replacement row per changed user.
    pub changed_rows: FactorMatrix,
    /// Brand-new users appended after the base checkpoint's rows.
    pub appended_users: Option<FactorMatrix>,
    /// New catalog items appended after the base checkpoint's rows.
    pub appended_items: Option<FactorMatrix>,
}

impl CheckpointDelta {
    /// Applies this delta to a restored checkpoint in place.
    ///
    /// # Panics
    /// Panics if the delta does not chain from `checkpoint`'s iteration,
    /// the checkpoint's factor shapes differ from the state the delta was
    /// built against (a reused iteration number over different factors —
    /// replaying would corrupt silently), a changed id is out of range, or
    /// ranks disagree.
    pub fn apply_to(&self, checkpoint: &mut Checkpoint) {
        assert_eq!(
            self.base_iteration, checkpoint.iteration,
            "delta chains from a different checkpoint"
        );
        assert_eq!(
            (self.base_users, self.base_items),
            (checkpoint.x.len() as u64, checkpoint.theta.len() as u64),
            "delta was built against different factor shapes; refusing to \
             replay onto a checkpoint that reused the iteration number"
        );
        assert_eq!(
            self.changed_ids.len(),
            self.changed_rows.len(),
            "changed ids and rows disagree"
        );
        let f = checkpoint.x.rank();
        for (i, &user) in self.changed_ids.iter().enumerate() {
            assert_eq!(self.changed_rows.rank(), f, "changed row rank mismatch");
            checkpoint
                .x
                .vector_mut(user as usize)
                .copy_from_slice(self.changed_rows.vector(i));
        }
        if let Some(app) = &self.appended_users {
            checkpoint.x.append_rows(app);
        }
        if let Some(app) = &self.appended_items {
            checkpoint.theta.append_rows(app);
        }
    }
}

/// When to rewrite a full checkpoint instead of letting the delta chain
/// grow (restore time is `O(base + chain)`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionPolicy {
    /// Compact once the chain holds this many delta records (0 = never by
    /// count).
    pub max_deltas: usize,
    /// Compact once the chain's on-disk bytes exceed this fraction of the
    /// base checkpoint's size (≤ 0.0 = never by size).
    pub max_chain_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_deltas: 16,
            max_chain_fraction: 0.5,
        }
    }
}

/// What a [`CheckpointManager::compact`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Iteration of the checkpoint the chain was folded into.
    pub base_iteration: u64,
    /// Iteration stamped on the rewritten full checkpoint
    /// (`base_iteration + 1`).
    pub new_iteration: u64,
    /// Delta records folded in (and pruned).
    pub folded_deltas: usize,
}

/// Writes and restores checkpoints in a directory.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
}

impl CheckpointManager {
    /// Creates a manager rooted at `dir` (the directory is created if
    /// missing).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory checkpoints are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("checkpoint_{iteration:08}.cumf"))
    }

    /// Saves a checkpoint synchronously.  The file is written to a temporary
    /// name and atomically renamed, so a crash mid-write never corrupts the
    /// latest checkpoint.
    pub fn save(&self, checkpoint: &Checkpoint) -> io::Result<PathBuf> {
        let final_path = self.path_for(checkpoint.iteration);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp_path)?);
            w.write_all(MAGIC)?;
            w.write_all(&checkpoint.iteration.to_le_bytes())?;
            write_factor(&mut w, &checkpoint.x)?;
            write_factor(&mut w, &checkpoint.theta)?;
            w.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }

    /// Saves a checkpoint on a background thread (the asynchronous mode the
    /// paper describes); join the handle to observe errors.
    pub fn save_async(&self, checkpoint: Checkpoint) -> JoinHandle<io::Result<PathBuf>> {
        let manager = self.clone();
        std::thread::spawn(move || manager.save(&checkpoint))
    }

    /// The highest-iteration checkpoint file, if any.
    fn latest_checkpoint_entry(&self) -> io::Result<Option<(u64, PathBuf)>> {
        let mut best: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(iter_str) = name
                .strip_prefix("checkpoint_")
                .and_then(|s| s.strip_suffix(".cumf"))
            {
                if let Ok(iter) = iter_str.parse::<u64>() {
                    if best.as_ref().map(|(b, _)| iter > *b).unwrap_or(true) {
                        best = Some((iter, entry.path()));
                    }
                }
            }
        }
        Ok(best)
    }

    /// Loads the checkpoint with the highest iteration number, if any.
    pub fn load_latest(&self) -> io::Result<Option<Checkpoint>> {
        match self.latest_checkpoint_entry()? {
            None => Ok(None),
            Some((_, path)) => Ok(Some(Self::load(&path)?)),
        }
    }

    /// Loads a specific checkpoint file.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a cuMF checkpoint",
            ));
        }
        let iteration = read_u64(&mut r)?;
        let x = read_factor(&mut r)?;
        let theta = read_factor(&mut r)?;
        Ok(Checkpoint {
            iteration,
            x,
            theta,
        })
    }

    fn delta_path_for(&self, base_iteration: u64, seq: u64) -> PathBuf {
        self.dir
            .join(format!("delta_{base_iteration:08}_{seq:04}.cumfd"))
    }

    /// Journals a fold-in delta next to the full checkpoints (same
    /// write-then-rename atomicity).  The file holds only the changed and
    /// appended rows — `O(u·f)` bytes, not a full factor copy.
    pub fn save_delta(&self, delta: &CheckpointDelta) -> io::Result<PathBuf> {
        assert_eq!(
            delta.changed_ids.len(),
            delta.changed_rows.len(),
            "changed ids and rows disagree"
        );
        let final_path = self.delta_path_for(delta.base_iteration, delta.seq);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp_path)?);
            w.write_all(DELTA_MAGIC)?;
            w.write_all(&delta.base_iteration.to_le_bytes())?;
            w.write_all(&delta.seq.to_le_bytes())?;
            w.write_all(&delta.base_users.to_le_bytes())?;
            w.write_all(&delta.base_items.to_le_bytes())?;
            w.write_all(&(delta.changed_ids.len() as u64).to_le_bytes())?;
            for &id in &delta.changed_ids {
                w.write_all(&id.to_le_bytes())?;
            }
            write_factor(&mut w, &delta.changed_rows)?;
            for optional in [&delta.appended_users, &delta.appended_items] {
                match optional {
                    Some(m) => {
                        w.write_all(&[1u8])?;
                        write_factor(&mut w, m)?;
                    }
                    None => w.write_all(&[0u8])?,
                }
            }
            w.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }

    /// Loads one delta record.
    pub fn load_delta(path: &Path) -> io::Result<CheckpointDelta> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != DELTA_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a cuMF checkpoint delta",
            ));
        }
        let base_iteration = read_u64(&mut r)?;
        let seq = read_u64(&mut r)?;
        let base_users = read_u64(&mut r)?;
        let base_items = read_u64(&mut r)?;
        let n_changed = read_u64(&mut r)? as usize;
        let mut changed_ids = Vec::with_capacity(n_changed);
        for _ in 0..n_changed {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            changed_ids.push(u32::from_le_bytes(buf));
        }
        let changed_rows = read_factor(&mut r)?;
        let mut optionals = [None, None];
        for slot in &mut optionals {
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            if flag[0] == 1 {
                *slot = Some(read_factor(&mut r)?);
            }
        }
        let [appended_users, appended_items] = optionals;
        Ok(CheckpointDelta {
            base_iteration,
            seq,
            base_users,
            base_items,
            changed_ids,
            changed_rows,
            appended_users,
            appended_items,
        })
    }

    /// The delta files chained onto `iteration`, sorted by sequence number.
    fn chain_files(&self, iteration: u64) -> io::Result<Vec<(u64, PathBuf)>> {
        let prefix = format!("delta_{iteration:08}_");
        let mut chain: Vec<(u64, PathBuf)> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().to_string();
                name.strip_prefix(&prefix)
                    .and_then(|s| s.strip_suffix(".cumfd"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(|seq| (seq, e.path()))
            })
            .collect();
        chain.sort_by_key(|(seq, _)| *seq);
        Ok(chain)
    }

    /// Restores the latest full checkpoint **with its delta chain
    /// replayed**: every `delta_<iteration>_<seq>` record chained onto the
    /// latest checkpoint is applied in sequence order.  Returns the
    /// reconstructed checkpoint and the number of deltas replayed.
    pub fn load_latest_with_deltas(&self) -> io::Result<Option<(Checkpoint, usize)>> {
        let Some(mut checkpoint) = self.load_latest()? else {
            return Ok(None);
        };
        let chain = self.chain_files(checkpoint.iteration)?;
        let replayed = chain.len();
        for (_, path) in chain {
            Self::load_delta(&path)?.apply_to(&mut checkpoint);
        }
        Ok(Some((checkpoint, replayed)))
    }

    /// Record count and summed on-disk bytes of the delta chain hanging off
    /// `iteration`.
    pub fn chain_stats(&self, iteration: u64) -> io::Result<(usize, u64)> {
        let chain = self.chain_files(iteration)?;
        let mut bytes = 0u64;
        for (_, path) in &chain {
            bytes += fs::metadata(path)?.len();
        }
        Ok((chain.len(), bytes))
    }

    /// True when the latest checkpoint's delta chain exceeds `policy` —
    /// either by record count or by on-disk size relative to the base
    /// checkpoint file.  `false` when no checkpoint (or no chain) exists.
    pub fn should_compact(&self, policy: &CompactionPolicy) -> io::Result<bool> {
        let Some((iteration, path)) = self.latest_checkpoint_entry()? else {
            return Ok(false);
        };
        let (count, chain_bytes) = self.chain_stats(iteration)?;
        if count == 0 {
            return Ok(false);
        }
        if policy.max_deltas > 0 && count >= policy.max_deltas {
            return Ok(true);
        }
        if policy.max_chain_fraction > 0.0 {
            let base_bytes = fs::metadata(&path)?.len();
            if chain_bytes as f64 > policy.max_chain_fraction * base_bytes as f64 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Folds the latest checkpoint's delta chain into a fresh full
    /// checkpoint stamped `base_iteration + 1` and prunes the folded
    /// records, bounding restore time to one file read again.  Returns
    /// `None` when there is nothing to fold.
    ///
    /// Crash safety: the new checkpoint is written (atomically) **before**
    /// the chain is deleted.  A crash in between leaves both on disk — but
    /// the stale chain is keyed to the *old* iteration, the restore path
    /// follows the highest iteration, and the orphaned records are swept by
    /// the next [`CheckpointManager::prune`].  A delta is therefore never
    /// replayed on top of a checkpoint that already contains it (replaying
    /// appended rows twice would corrupt the factors).
    ///
    /// Namespace caveat: the synthetic `base_iteration + 1` shares the
    /// trainer's iteration numbering.  Reusing a checkpoint directory
    /// across unrelated runs can therefore shadow (or be shadowed by) a
    /// retrain's own files — a hazard that predates compaction and is why
    /// runs should get fresh directories or `prune` aggressively.  If a
    /// retrain *does* overwrite an iteration that still has journaled
    /// deltas, replay fails loudly on the deltas' recorded base shapes
    /// ([`CheckpointDelta::base_users`]/[`CheckpointDelta::base_items`])
    /// instead of corrupting the factors silently.
    pub fn compact(&self) -> io::Result<Option<CompactionReport>> {
        let Some((mut checkpoint, folded_deltas)) = self.load_latest_with_deltas()? else {
            return Ok(None);
        };
        if folded_deltas == 0 {
            return Ok(None);
        }
        let base_iteration = checkpoint.iteration;
        checkpoint.iteration = base_iteration + 1;
        self.save(&checkpoint)?;
        self.remove_delta_chain(base_iteration)?;
        Ok(Some(CompactionReport {
            base_iteration,
            new_iteration: checkpoint.iteration,
            folded_deltas,
        }))
    }

    /// Journals `delta` and then compacts if the grown chain now exceeds
    /// `policy` — the bounded-restore write path an incremental serving
    /// loop should use.  Returns the delta's path and the compaction
    /// report, if one ran.
    pub fn save_delta_compacting(
        &self,
        delta: &CheckpointDelta,
        policy: &CompactionPolicy,
    ) -> io::Result<(PathBuf, Option<CompactionReport>)> {
        let path = self.save_delta(delta)?;
        let report = if self.should_compact(policy)? {
            self.compact()?
        } else {
            None
        };
        Ok((path, report))
    }

    /// Deletes every checkpoint older than the latest `keep` ones, along
    /// with each pruned checkpoint's delta journal — a delta chained onto a
    /// deleted base can never be replayed, so keeping it would only grow
    /// the directory without bound.  Returns the number of full checkpoints
    /// removed.
    pub fn prune(&self, keep: usize) -> io::Result<usize> {
        let mut files: Vec<(u64, PathBuf)> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().to_string();
                name.strip_prefix("checkpoint_")
                    .and_then(|s| s.strip_suffix(".cumf"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(|i| (i, e.path()))
            })
            .collect();
        files.sort_by_key(|(i, _)| *i);
        let mut removed = 0;
        while files.len() > keep {
            let (iteration, path) = files.remove(0);
            fs::remove_file(path)?;
            self.remove_delta_chain(iteration)?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Deletes every `delta_<iteration>_*.cumfd` record chained onto the
    /// given checkpoint iteration.
    fn remove_delta_chain(&self, iteration: u64) -> io::Result<()> {
        let prefix = format!("delta_{iteration:08}_");
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) && name.ends_with(".cumfd") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

fn write_factor<W: Write>(w: &mut W, m: &FactorMatrix) -> io::Result<()> {
    w.write_all(&(m.len() as u64).to_le_bytes())?;
    w.write_all(&(m.rank() as u64).to_le_bytes())?;
    for &v in m.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_factor<R: Read>(r: &mut R) -> io::Result<FactorMatrix> {
    let n = read_u64(r)? as usize;
    let f = read_u64(r)? as usize;
    let mut bytes = vec![0u8; n * f * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(FactorMatrix::from_vec(n, f, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let id = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("cumf_ckpt_test_{}_{id}", std::process::id()))
    }

    fn sample_checkpoint(iteration: u64, seed: u64) -> Checkpoint {
        Checkpoint {
            iteration,
            x: FactorMatrix::random(50, 8, 1.0, seed),
            theta: FactorMatrix::random(30, 8, 1.0, seed + 1),
        }
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let ckpt = sample_checkpoint(3, 1);
        let path = mgr.save(&ckpt).unwrap();
        let loaded = CheckpointManager::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_latest_picks_the_highest_iteration() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        mgr.save(&sample_checkpoint(1, 1)).unwrap();
        mgr.save(&sample_checkpoint(7, 2)).unwrap();
        mgr.save(&sample_checkpoint(4, 3)).unwrap();
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 7);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_latest_on_empty_dir_is_none() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load_latest().unwrap().is_none());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn async_save_is_observable_after_join() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let handle = mgr.save_async(sample_checkpoint(2, 9));
        let path = handle.join().unwrap().unwrap();
        assert!(path.exists());
        assert_eq!(mgr.load_latest().unwrap().unwrap().iteration, 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        for i in 1..=5 {
            mgr.save(&sample_checkpoint(i, i)).unwrap();
        }
        let removed = mgr.prune(2).unwrap();
        assert_eq!(removed, 3);
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 5);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn prune_drops_the_delta_chains_of_pruned_checkpoints() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        for i in 1..=3 {
            mgr.save(&sample_checkpoint(i, i)).unwrap();
            mgr.save_delta(&CheckpointDelta {
                appended_users: None,
                appended_items: None,
                ..sample_delta(i, 1, 10 + i)
            })
            .unwrap();
        }
        mgr.prune(1).unwrap();
        let deltas: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.ends_with(".cumfd"))
            .collect();
        // Only the surviving checkpoint's chain remains.
        assert_eq!(deltas, vec!["delta_00000003_0001.cumfd".to_string()]);
        let (restored, replayed) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(restored.iteration, 3);
        assert_eq!(replayed, 1);
        fs::remove_dir_all(dir).unwrap();
    }

    /// A delta chained directly onto a [`sample_checkpoint`] (50 users, 30
    /// items); chained deltas must override `base_users`/`base_items` to
    /// the post-predecessor shapes.
    fn sample_delta(base: u64, seq: u64, seed: u64) -> CheckpointDelta {
        CheckpointDelta {
            base_iteration: base,
            seq,
            base_users: 50,
            base_items: 30,
            changed_ids: vec![1, 7, 40],
            changed_rows: FactorMatrix::random(3, 8, 1.0, seed),
            appended_users: Some(FactorMatrix::random(2, 8, 1.0, seed + 1)),
            appended_items: Some(FactorMatrix::random(4, 8, 1.0, seed + 2)),
        }
    }

    #[test]
    fn delta_save_and_load_roundtrip() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let delta = sample_delta(3, 1, 50);
        let path = mgr.save_delta(&delta).unwrap();
        assert_eq!(CheckpointManager::load_delta(&path).unwrap(), delta);
        // A delta with no appended rows roundtrips too.
        let lean = CheckpointDelta {
            appended_users: None,
            appended_items: None,
            seq: 2,
            ..sample_delta(3, 2, 60)
        };
        let path = mgr.save_delta(&lean).unwrap();
        assert_eq!(CheckpointManager::load_delta(&path).unwrap(), lean);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restore_replays_the_delta_chain_in_order() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let base = sample_checkpoint(5, 70);
        mgr.save(&base).unwrap();
        // Two chained deltas; the second overwrites user 1 again, so replay
        // order matters.  d2 records the post-d1 shapes (52 users, 34
        // items) it was built against.
        let d1 = sample_delta(5, 1, 80);
        let mut d2 = CheckpointDelta {
            base_users: 52,
            base_items: 34,
            ..sample_delta(5, 2, 90)
        };
        d2.appended_users = None;
        d2.appended_items = None;
        // A delta chained onto a *different* checkpoint must be ignored.
        let stray = sample_delta(4, 1, 99);
        mgr.save_delta(&d1).unwrap();
        mgr.save_delta(&d2).unwrap();
        mgr.save_delta(&stray).unwrap();

        let (restored, replayed) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(replayed, 2);

        let mut expect = base.clone();
        d1.apply_to(&mut expect);
        d2.apply_to(&mut expect);
        assert_eq!(restored, expect);
        // Spot-check: user 1 carries d2's row, not d1's.
        assert_eq!(restored.x.vector(1), d2.changed_rows.vector(0));
        // Appended rows from d1 are present.
        assert_eq!(restored.x.len(), 52);
        assert_eq!(restored.theta.len(), 34);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restore_without_deltas_is_the_plain_checkpoint() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let ckpt = sample_checkpoint(2, 7);
        mgr.save(&ckpt).unwrap();
        let (restored, replayed) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(restored, ckpt);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compact_folds_the_chain_and_prunes_it() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let base = sample_checkpoint(5, 70);
        mgr.save(&base).unwrap();
        let d1 = sample_delta(5, 1, 80);
        // d1 appended 2 users and 4 items; d2 chains onto that state.
        let d2 = CheckpointDelta {
            base_users: 52,
            base_items: 34,
            ..sample_delta(5, 2, 81)
        };
        mgr.save_delta(&d1).unwrap();
        mgr.save_delta(&d2).unwrap();

        // What a replaying restore would reconstruct...
        let (replayed, n) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(n, 2);

        let report = mgr.compact().unwrap().expect("chain to fold");
        assert_eq!(report.base_iteration, 5);
        assert_eq!(report.new_iteration, 6);
        assert_eq!(report.folded_deltas, 2);

        // ...is exactly what the folded checkpoint restores to, with no
        // deltas left to replay.
        let (restored, replayed_after) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(replayed_after, 0);
        assert_eq!(restored.iteration, 6);
        assert_eq!(restored.x, replayed.x);
        assert_eq!(restored.theta, replayed.theta);
        assert_eq!(mgr.chain_stats(5).unwrap(), (0, 0), "folded chain pruned");

        // Nothing to fold twice.
        assert_eq!(mgr.compact().unwrap(), None);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_delta_compacting_triggers_on_record_count() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        mgr.save(&sample_checkpoint(1, 7)).unwrap();
        let policy = CompactionPolicy {
            max_deltas: 3,
            max_chain_fraction: 0.0,
        };
        // Two deltas stay journaled...
        for seq in 1..=2 {
            let lean = CheckpointDelta {
                appended_users: None,
                appended_items: None,
                ..sample_delta(1, seq, 30 + seq)
            };
            let (_, report) = mgr.save_delta_compacting(&lean, &policy).unwrap();
            assert_eq!(report, None, "seq {seq}");
        }
        assert_eq!(mgr.chain_stats(1).unwrap().0, 2);
        // ...the third crosses the bound and folds the chain.
        let lean = CheckpointDelta {
            appended_users: None,
            appended_items: None,
            ..sample_delta(1, 3, 33)
        };
        let (_, report) = mgr.save_delta_compacting(&lean, &policy).unwrap();
        let report = report.expect("compaction to run");
        assert_eq!(report.folded_deltas, 3);
        assert_eq!(report.new_iteration, 2);
        assert_eq!(mgr.load_latest_with_deltas().unwrap().unwrap().1, 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_delta_compacting_triggers_on_chain_size_fraction() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        // Tiny base, fat deltas: the size trigger fires long before any
        // count bound would.
        mgr.save(&Checkpoint {
            iteration: 1,
            x: FactorMatrix::random(4, 8, 1.0, 1),
            theta: FactorMatrix::random(4, 8, 1.0, 2),
        })
        .unwrap();
        let policy = CompactionPolicy {
            max_deltas: 0,
            max_chain_fraction: 0.5,
        };
        let fat = CheckpointDelta {
            base_iteration: 1,
            seq: 1,
            base_users: 4,
            base_items: 4,
            changed_ids: vec![0],
            changed_rows: FactorMatrix::random(1, 8, 1.0, 3),
            appended_users: Some(FactorMatrix::random(64, 8, 1.0, 4)),
            appended_items: None,
        };
        let (_, report) = mgr.save_delta_compacting(&fat, &policy).unwrap();
        assert!(report.is_some(), "fat chain must trip the size fraction");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn should_compact_is_quiet_without_chain_or_checkpoint() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let policy = CompactionPolicy::default();
        assert!(!mgr.should_compact(&policy).unwrap(), "empty dir");
        mgr.save(&sample_checkpoint(1, 9)).unwrap();
        assert!(!mgr.should_compact(&policy).unwrap(), "no chain");
        assert_eq!(mgr.compact().unwrap(), None);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "different checkpoint")]
    fn delta_refuses_a_mismatched_base() {
        let mut ckpt = sample_checkpoint(3, 1);
        sample_delta(9, 1, 2).apply_to(&mut ckpt);
    }

    #[test]
    #[should_panic(expected = "different factor shapes")]
    fn delta_refuses_a_checkpoint_with_reused_iteration_but_other_factors() {
        // A retrain overwrote iteration 3 with a differently-shaped model;
        // the journaled delta's base shapes (50 × 30) no longer match, and
        // replaying must fail loudly instead of corrupting silently.
        let mut ckpt = Checkpoint {
            iteration: 3,
            x: FactorMatrix::random(40, 8, 1.0, 1),
            theta: FactorMatrix::random(30, 8, 1.0, 2),
        };
        sample_delta(3, 1, 5).apply_to(&mut ckpt);
    }

    #[test]
    fn corrupt_delta_is_rejected() {
        let dir = temp_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("delta_00000001_0001.cumfd");
        fs::write(&path, b"not a delta").unwrap();
        assert!(CheckpointManager::load_delta(&path).is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = temp_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint_00000001.cumf");
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(CheckpointManager::load(&path).is_err());
        fs::remove_dir_all(dir).unwrap();
    }
}

//! Partition planner (§4.3 of the paper, equation (8)).
//!
//! SU-ALS must choose `p` (vertical partitions of `Θᵀ`, one per GPU in the
//! data-parallel phase) and `q` (horizontal batches of `X`) so that one
//! GPU can simultaneously hold its share of every operand:
//!
//! ```text
//!   m·f/q  +  n·f/p  +  |R^(ij)|  +  (m/q)·f²  +  (m/q)·f  +  ε  <  C
//! ```
//!
//! with `C` the device capacity in single-precision words and `ε` a headroom
//! for miscellaneous buffers (the paper uses 500 MB for a 12 GB card).

use cumf_gpu_sim::DeviceSpec;
use std::fmt;

/// Full-scale problem dimensions the planner works with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemDims {
    /// Number of rows (users) `m`.
    pub m: u64,
    /// Number of columns (items) `n`.
    pub n: u64,
    /// Number of ratings `Nz`.
    pub nz: u64,
    /// Latent dimension `f`.
    pub f: u64,
}

impl ProblemDims {
    /// Dimensions of a concrete sparse matrix with the given rank.
    pub fn new(m: u64, n: u64, nz: u64, f: u64) -> Self {
        Self { m, n, nz, f }
    }
}

/// A feasible `(p, q)` partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Number of vertical `Θᵀ` partitions (data parallelism width).
    pub p: usize,
    /// Number of horizontal `X` batches (model-parallel batches solved in
    /// sequence).
    pub q: usize,
}

impl PartitionPlan {
    /// Total number of `R` grid blocks.
    pub fn blocks(&self) -> usize {
        self.p * self.q
    }
}

impl Default for PartitionPlan {
    /// The trivial plan: everything on one GPU in one batch.
    fn default() -> Self {
        Self { p: 1, q: 1 }
    }
}

/// Error returned when no feasible partitioning exists within the caller's
/// limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Largest `p` tried.
    pub max_p: usize,
    /// Largest `q` tried.
    pub max_q: usize,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no feasible (p ≤ {}, q ≤ {}) partitioning found",
            self.max_p, self.max_q
        )
    }
}

impl std::error::Error for PlanError {}

/// Default headroom ε: 500 MB expressed in single-precision words.
pub const DEFAULT_HEADROOM_WORDS: u64 = 500 * 1024 * 1024 / 4;

/// Left-hand side of equation (8) in words for a given `(p, q)`.
pub fn footprint_words(dims: &ProblemDims, p: usize, q: usize) -> u64 {
    let p = p as u64;
    let q = q as u64;
    let x_batch = dims.m.div_ceil(q) * dims.f;
    let theta_part = dims.n.div_ceil(p) * dims.f;
    let r_block = 2 * dims.nz.div_ceil(p * q) + dims.m.div_ceil(q) + 1;
    let hermitians = dims.m.div_ceil(q) * dims.f * dims.f;
    let rhs = dims.m.div_ceil(q) * dims.f;
    x_batch + theta_part + r_block + hermitians + rhs
}

/// Checks equation (8) for a given `(p, q)`.
pub fn feasible(
    dims: &ProblemDims,
    p: usize,
    q: usize,
    capacity_words: u64,
    headroom_words: u64,
) -> bool {
    if p == 0 || q == 0 {
        return false;
    }
    let budget = capacity_words.saturating_sub(headroom_words);
    footprint_words(dims, p, q) < budget
}

/// Chooses `(p, q)` following the paper's best practices:
///
/// 1. if everything fits with `p = 1, q = 1`, use a single GPU;
/// 2. otherwise start from the smallest `p` such that `Θᵀ`'s partition is
///    about half the device (`n·f/p ≈ C/2`) and pick the smallest `q`
///    satisfying equation (8);
/// 3. grow `p` (up to `max_p`) if even very large `q` cannot satisfy it.
pub fn plan(
    dims: &ProblemDims,
    device: &DeviceSpec,
    max_p: usize,
    max_q: usize,
) -> Result<PartitionPlan, PlanError> {
    let capacity_words = device.global_mem_f32_capacity();
    plan_with_capacity(dims, capacity_words, DEFAULT_HEADROOM_WORDS, max_p, max_q)
}

/// [`plan`] with an explicit capacity/headroom (useful for tests and
/// what-if analyses).
pub fn plan_with_capacity(
    dims: &ProblemDims,
    capacity_words: u64,
    headroom_words: u64,
    max_p: usize,
    max_q: usize,
) -> Result<PartitionPlan, PlanError> {
    assert!(
        max_p >= 1 && max_q >= 1,
        "partition limits must be at least 1"
    );
    if feasible(dims, 1, 1, capacity_words, headroom_words) {
        return Ok(PartitionPlan { p: 1, q: 1 });
    }
    let budget = capacity_words.saturating_sub(headroom_words);
    // Best practice 3: start from p with n·f/p ≈ C/2.
    let theta_words = dims.n * dims.f;
    let p_start = (2 * theta_words).div_ceil(budget.max(1)).max(1) as usize;
    for p in p_start..=max_p {
        for q in 1..=max_q {
            if feasible(dims, p, q, capacity_words, headroom_words) {
                return Ok(PartitionPlan { p, q });
            }
            // The q-dependent terms shrink as q grows; once they are already
            // tiny, growing q further cannot help — move on to a larger p.
            let residual = footprint_words(dims, p, q) - dims.n.div_ceil(p as u64) * dims.f;
            if residual < budget / 64 {
                break;
            }
        }
    }
    Err(PlanError { max_p, max_q })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::datasets::PaperDataset;

    fn dims_of(d: PaperDataset, f: u64) -> ProblemDims {
        let s = d.spec();
        ProblemDims::new(s.m, s.n, s.nz, f)
    }

    #[test]
    fn netflix_needs_batching_but_only_one_theta_partition() {
        // §2.2: m·f² for Netflix at f=100 exceeds a 12 GB card, so q > 1;
        // Θᵀ is tiny (17 770 × 100 floats), so p = 1 suffices.
        let dims = dims_of(PaperDataset::Netflix, 100);
        let plan = plan(&dims, &DeviceSpec::titan_x(), 4, 1024).unwrap();
        assert_eq!(plan.p, 1);
        assert!(
            plan.q > 1,
            "Netflix must be solved in batches, got q = {}",
            plan.q
        );
    }

    #[test]
    fn hugewiki_fits_with_four_partitions() {
        // §5.4 runs Hugewiki on four GPUs with data parallelism.
        let dims = dims_of(PaperDataset::Hugewiki, 100);
        let plan = plan(&dims, &DeviceSpec::titan_x(), 4, 4096).unwrap();
        assert!(plan.p <= 4);
        assert!(plan.q >= 1);
        assert!(feasible(
            &dims,
            plan.p,
            plan.q,
            DeviceSpec::titan_x().global_mem_f32_capacity(),
            DEFAULT_HEADROOM_WORDS
        ));
    }

    #[test]
    fn small_problem_runs_on_a_single_gpu() {
        let dims = ProblemDims::new(10_000, 2_000, 500_000, 32);
        let plan = plan(&dims, &DeviceSpec::titan_x(), 4, 1024).unwrap();
        assert_eq!(plan, PartitionPlan { p: 1, q: 1 });
        assert_eq!(plan.blocks(), 1);
    }

    #[test]
    fn facebook_scale_is_feasible_with_enough_batches() {
        // §5.5: the 112-billion-rating Facebook matrix is solved out of core
        // with many batches on 4 GPUs.
        let dims = dims_of(PaperDataset::Facebook, 16);
        let plan = plan(&dims, &DeviceSpec::gk210(), 4, 1 << 20).unwrap();
        assert!(plan.q > 10, "expected many batches, got q = {}", plan.q);
    }

    #[test]
    fn infeasible_when_theta_partition_alone_exceeds_memory() {
        // Θᵀ bigger than p_max cards can hold in total.
        let dims = ProblemDims::new(1_000, 10_000_000_000, 1_000_000, 100);
        let err = plan(&dims, &DeviceSpec::titan_x(), 4, 1024).unwrap_err();
        assert!(err.to_string().contains("no feasible"));
    }

    #[test]
    fn feasibility_is_monotone_in_q() {
        let dims = dims_of(PaperDataset::Netflix, 100);
        let cap = DeviceSpec::titan_x().global_mem_f32_capacity();
        let mut seen_feasible = false;
        for q in 1..=64 {
            let ok = feasible(&dims, 1, q, cap, DEFAULT_HEADROOM_WORDS);
            if seen_feasible {
                assert!(ok, "feasibility must not flip back at q = {q}");
            }
            seen_feasible |= ok;
        }
        assert!(seen_feasible);
    }

    #[test]
    fn footprint_decreases_with_more_partitions() {
        let dims = dims_of(PaperDataset::Hugewiki, 100);
        assert!(footprint_words(&dims, 2, 8) < footprint_words(&dims, 1, 8));
        assert!(footprint_words(&dims, 2, 16) < footprint_words(&dims, 2, 8));
    }

    #[test]
    fn plan_with_tiny_capacity_fails() {
        let dims = ProblemDims::new(1000, 1000, 10_000, 16);
        assert!(plan_with_capacity(&dims, 1000, 0, 8, 64).is_err());
    }
}

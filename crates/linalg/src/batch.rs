//! Batched Hermitian solves — the CPU stand-in for cuBLAS's batched
//! POTRF/POTRS used by the paper's `batch_solve` phase.
//!
//! Each of the `m_b` systems in a batch is independent, which is exactly the
//! property the paper exploits to fill the GPU with thread blocks; here the
//! same independence is exploited with rayon's work-stealing threads.

use crate::cholesky::{cholesky_solve, CholeskyError};
use crate::quant::EncodedSlab;
use rayon::prelude::*;

/// Result of a batched solve: per-system error positions (empty when all
/// systems succeeded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSolveReport {
    /// Indices of systems whose Hermitian matrix was not positive definite.
    pub failed: Vec<usize>,
    /// Number of systems solved.
    pub solved: usize,
}

impl BatchSolveReport {
    /// True when every system in the batch solved successfully.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Solves `batch` independent `f × f` SPD systems in parallel.
///
/// * `hermitians` — concatenated row-major `A_u` matrices, `batch · f²` long;
///   overwritten with their Cholesky factors.
/// * `rhs` — concatenated right-hand sides `B_u`, `batch · f` long;
///   overwritten with the solutions `x_u`.
///
/// Systems that fail to factor (non-SPD, which for ALS can only happen with
/// `λ = 0` and an empty row) leave their right-hand side untouched and are
/// reported in the returned [`BatchSolveReport`].
pub fn batch_solve(hermitians: &mut [f32], rhs: &mut [f32], f: usize) -> BatchSolveReport {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(
        hermitians.len() % (f * f),
        0,
        "hermitian buffer not a multiple of f*f"
    );
    assert_eq!(rhs.len() % f, 0, "rhs buffer not a multiple of f");
    let batch = hermitians.len() / (f * f);
    assert_eq!(rhs.len() / f, batch, "hermitian and rhs batch sizes differ");

    let results: Vec<Result<(), CholeskyError>> = hermitians
        .par_chunks_mut(f * f)
        .zip(rhs.par_chunks_mut(f))
        .map(|(a, b)| cholesky_solve(a, f, b))
        .collect();

    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    BatchSolveReport {
        solved: batch - failed.len(),
        failed,
    }
}

/// Scores a micro-batch of user vectors against a block of item vectors —
/// the retrieval-time counterpart of the training-time batched GEMM: the
/// same item block is reused across every user in the batch, which is the
/// cache (and, on a GPU, shared-memory) win batched serving exploits.
///
/// * `users` — `n_users` row-major user vectors, `n_users · f` long.
/// * `items` — `n_items` row-major item vectors, `n_items · f` long.
/// * `out` — `n_users · n_items` scores, written as
///   `out[i · n_items + j] = users[i] · items[j]`.
///
/// The loop order (item-major inner loop per user) streams each item block
/// once per user while the user vector stays register/L1-resident.  Scores
/// accumulate in `f32` with four independent lanes — retrieval ranks item
/// scores against each other, so the f64 accumulation [`crate::blas::dot`]
/// uses for the ill-conditioned Hermitian assembly is unnecessary here, and
/// the independent lanes let the compiler keep the FMA pipeline full.
pub fn batch_score_block(
    users: &[f32],
    n_users: usize,
    items: &[f32],
    n_items: usize,
    f: usize,
    out: &mut [f32],
) {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(users.len(), n_users * f, "user buffer size mismatch");
    assert_eq!(items.len(), n_items * f, "item buffer size mismatch");
    assert_eq!(out.len(), n_users * n_items, "score buffer size mismatch");
    for (i, x_u) in users.chunks_exact(f).enumerate() {
        let row = &mut out[i * n_items..(i + 1) * n_items];
        for (s, theta_v) in row.iter_mut().zip(items.chunks_exact(f)) {
            *s = score_dot(x_u, theta_v);
        }
    }
}

/// A borrowed, scoring-ready view of one **item-factor segment**: a
/// contiguous run of catalog items stored in their own row-major slab, in an
/// order that may differ from catalog order (norm-descending layouts), plus
/// the tables retrieval needs to prune blocks and to remap stored rows back
/// to global item ids.
///
/// A segmented catalog (base slab + appended tails) is scored by walking a
/// slice of views — each segment is block-aligned on its own, so the blocked
/// kernels never straddle a segment boundary.  The stored order never
/// changes a score (`x_u · θ_v` depends only on the two vectors) and the
/// top-k heap's tie-break is a total order on `(score, global id)`, so
/// segmentation and permutation are layout-only: results are bit-identical
/// to scoring one contiguous catalog-order slab.
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    /// Row-major item factors in *stored* order (`n_items · f` floats).
    pub items: &'a [f32],
    /// Per-stored-row L2 norms (threshold pruning, Cosine scoring).
    pub norms: &'a [f32],
    /// Per-block norm maxima over the stored order, at `item_block`
    /// granularity (`block_max_norms` over `norms`).
    pub block_max: &'a [f32],
    /// Items per block of this segment's `block_max` table.
    pub item_block: usize,
    /// Global id of stored row `i` when `ids` is `None`: `first_id + i`.
    pub first_id: u32,
    /// Stored-row → global-id remap for permuted segments (`None` =
    /// identity off `first_id`).
    pub ids: Option<&'a [u32]>,
    /// Global-offset → stored-row inverse of `ids` (`pos[id - first_id]`
    /// is the stored row of catalog item `id`; `None` = identity).  Point
    /// lookups — notably the segment-aware fold-in, which walks rating item
    /// ids — resolve through this instead of materializing a contiguous
    /// catalog-order slab.
    pub pos: Option<&'a [u32]>,
    /// Compressed copy of `items` when the segment stores a reduced
    /// precision ([`crate::quant::Precision`]).  The blocked scan streams
    /// this slab (decoding tile-by-tile) instead of `items`; `items` stays
    /// the retained **exact** f32 rows that point lookups, fold-in
    /// Hermitian assembly, and the serving rerank pass read.  `None` = the
    /// segment is full-precision and every path reads `items`.
    pub encoded: Option<&'a EncodedSlab>,
}

impl<'a> SegmentView<'a> {
    /// Number of items in this segment.
    pub fn n_items(&self) -> usize {
        self.norms.len()
    }

    /// Global item id of stored row `row`.
    #[inline]
    pub fn global_id(&self, row: usize) -> u32 {
        match self.ids {
            Some(ids) => ids[row],
            None => self.first_id + row as u32,
        }
    }

    /// Stored row holding global item id `id`, which must lie in this
    /// segment's `[first_id, first_id + n_items)` range.
    ///
    /// # Panics
    /// Panics if `id` is outside the segment, or if the segment is permuted
    /// (`ids` present) but was built without its `pos` inverse remap.
    #[inline]
    pub fn stored_row(&self, id: u32) -> usize {
        let offset = (id - self.first_id) as usize;
        assert!(offset < self.n_items(), "item {id} outside segment");
        match (self.pos, self.ids) {
            (Some(pos), _) => pos[offset] as usize,
            (None, None) => offset,
            (None, Some(_)) => panic!("permuted segment view lacks its position remap"),
        }
    }

    /// Factor vector of global item id `id` (rank `f`), resolved through
    /// the stored-order slab — the point-lookup counterpart of the blocked
    /// scoring kernels.
    #[inline]
    pub fn vector_of(&self, id: u32, f: usize) -> &'a [f32] {
        let row = self.stored_row(id);
        &self.items[row * f..(row + 1) * f]
    }

    /// Checks the view's internal consistency for rank `f`.
    ///
    /// # Panics
    /// Panics if the slab, norms, remap, or block-max table disagree.
    pub fn validate(&self, f: usize) {
        assert!(f > 0, "latent dimension must be positive");
        assert!(self.item_block > 0, "item block must be positive");
        assert_eq!(
            self.items.len(),
            self.norms.len() * f,
            "segment slab does not match its norms"
        );
        assert_eq!(
            self.block_max.len(),
            self.n_items().div_ceil(self.item_block),
            "segment block maxima do not match its blocking"
        );
        if let Some(ids) = self.ids {
            assert_eq!(ids.len(), self.n_items(), "segment id remap length");
        }
        if let Some(pos) = self.pos {
            assert_eq!(pos.len(), self.n_items(), "segment position remap length");
        }
        if let Some(encoded) = self.encoded {
            assert_eq!(encoded.rows(), self.n_items(), "encoded slab row count");
            assert_eq!(encoded.rank(), f, "encoded slab rank");
        }
    }
}

/// [`batch_score_block`] addressed through a [`SegmentView`]: scores stored
/// rows `[start, end)` of the segment for `n_users` users.  This is the
/// segment-aware entry point the serving tile scorer and the single-user
/// segmented retrieval share.
pub fn batch_score_segment(
    users: &[f32],
    n_users: usize,
    seg: &SegmentView<'_>,
    start: usize,
    end: usize,
    f: usize,
    out: &mut [f32],
) {
    assert!(start <= end && end <= seg.n_items(), "segment row range");
    batch_score_block(
        users,
        n_users,
        &seg.items[start * f..end * f],
        end - start,
        f,
        out,
    );
}

/// Four-lane `f32` dot product for retrieval scoring.  Public so the
/// serving rerank pass can rescore candidates with the *same* accumulation
/// order the blocked scan uses — an exact-f32 rescore then reproduces the
/// scan's score bit-for-bit instead of differing in the last ulp.
#[inline]
pub fn score_dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let (x4, x_tail) = x.split_at(x.len() & !3);
    let (y4, y_tail) = y.split_at(x4.len());
    for (xc, yc) in x4.chunks_exact(4).zip(y4.chunks_exact(4)) {
        acc[0] += xc[0] * yc[0];
        acc[1] += xc[1] * yc[1];
        acc[2] += xc[2] * yc[2];
        acc[3] += xc[3] * yc[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (a, b) in x_tail.iter().zip(y_tail.iter()) {
        s += a * b;
    }
    s
}

/// Sequential reference implementation of [`batch_solve`], used by tests to
/// check that parallel execution does not change results.
pub fn batch_solve_seq(hermitians: &mut [f32], rhs: &mut [f32], f: usize) -> BatchSolveReport {
    let batch = hermitians.len() / (f * f);
    let mut failed = Vec::new();
    for i in 0..batch {
        let a = &mut hermitians[i * f * f..(i + 1) * f * f];
        let b = &mut rhs[i * f..(i + 1) * f];
        if cholesky_solve(a, f, b).is_err() {
            failed.push(i);
        }
    }
    BatchSolveReport {
        solved: batch - failed.len(),
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{add_diagonal, syr_full};
    use crate::cholesky::residual_norm;
    use crate::FactorMatrix;

    use rand::prelude::*;

    fn random_batch(batch: usize, f: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hermitians = vec![0.0f32; batch * f * f];
        let mut rhs = vec![0.0f32; batch * f];
        for i in 0..batch {
            let a = &mut hermitians[i * f * f..(i + 1) * f * f];
            for _ in 0..(2 * f) {
                let x: Vec<f32> = (0..f).map(|_| rng.random::<f32>() - 0.5).collect();
                syr_full(a, &x);
            }
            add_diagonal(a, f, 0.2);
            for b in rhs[i * f..(i + 1) * f].iter_mut() {
                *b = rng.random::<f32>() - 0.5;
            }
        }
        (hermitians, rhs)
    }

    #[test]
    fn solves_a_batch_with_small_residuals() {
        let (orig_a, orig_b) = random_batch(32, 12, 3);
        let mut a = orig_a.clone();
        let mut b = orig_b.clone();
        let report = batch_solve(&mut a, &mut b, 12);
        assert!(report.all_ok());
        assert_eq!(report.solved, 32);
        for i in 0..32 {
            let res = residual_norm(
                &orig_a[i * 144..(i + 1) * 144],
                12,
                &b[i * 12..(i + 1) * 12],
                &orig_b[i * 12..(i + 1) * 12],
            );
            assert!(res < 1e-3, "system {i} residual {res}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a0, b0) = random_batch(64, 8, 11);
        let (mut a1, mut b1) = (a0.clone(), b0.clone());
        let (mut a2, mut b2) = (a0, b0);
        let r1 = batch_solve(&mut a1, &mut b1, 8);
        let r2 = batch_solve_seq(&mut a2, &mut b2, 8);
        assert_eq!(r1, r2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn reports_failed_systems_and_leaves_rhs() {
        let f = 4;
        // Two systems: first is identity (fine), second is all zeros (fails).
        let mut a = vec![0.0f32; 2 * f * f];
        add_diagonal(&mut a[..f * f], f, 1.0);
        let mut b = vec![1.0f32; 2 * f];
        let report = batch_solve(&mut a, &mut b, f);
        assert_eq!(report.failed, vec![1]);
        assert_eq!(report.solved, 1);
        assert!(!report.all_ok());
        // Failed system's rhs is untouched (still all ones).
        assert!(b[f..].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn empty_batch_is_ok() {
        let mut a: Vec<f32> = vec![];
        let mut b: Vec<f32> = vec![];
        let report = batch_solve(&mut a, &mut b, 5);
        assert!(report.all_ok());
        assert_eq!(report.solved, 0);
    }

    #[test]
    fn score_block_matches_per_pair_dots() {
        use crate::blas::dot;
        let f = 6; // not a multiple of 4: exercises the unroll tail
        let users = FactorMatrix::random(4, f, 1.0, 21);
        let items = FactorMatrix::random(9, f, 1.0, 22);
        let mut out = vec![0.0f32; 4 * 9];
        batch_score_block(users.data(), 4, items.data(), 9, f, &mut out);
        for u in 0..4 {
            for v in 0..9 {
                let expect = dot(users.vector(u), items.vector(v));
                let got = out[u * 9 + v];
                // The scoring kernel re-associates the f32 sum; equality up
                // to a few ulps of the f64-accumulated reference.
                assert!(
                    (got - expect).abs() <= 1e-5 * (1.0 + expect.abs()),
                    "score ({u}, {v}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn segment_view_scores_and_remaps_like_the_flat_kernel() {
        let f = 5;
        let items = FactorMatrix::random(12, f, 1.0, 31);
        let norms: Vec<f32> = items
            .data()
            .chunks_exact(f)
            .map(|v| crate::blas::norm_sq(v).sqrt())
            .collect();
        let block_max = crate::topk::block_max_norms(&norms, 4);
        let ids: Vec<u32> = (0..12u32).map(|i| 100 + i * 2).collect();
        let seg = SegmentView {
            items: items.data(),
            norms: &norms,
            block_max: &block_max,
            item_block: 4,
            first_id: 0,
            ids: Some(&ids),
            pos: None,
            encoded: None,
        };
        seg.validate(f);
        assert_eq!(seg.n_items(), 12);
        assert_eq!(seg.global_id(3), 106);
        let no_remap = SegmentView {
            ids: None,
            first_id: 7,
            ..seg
        };
        assert_eq!(no_remap.global_id(3), 10);

        let users = FactorMatrix::random(2, f, 1.0, 32);
        let mut seg_out = vec![0.0f32; 2 * 3];
        batch_score_segment(users.data(), 2, &seg, 4, 7, f, &mut seg_out);
        let mut flat_out = vec![0.0f32; 2 * 3];
        batch_score_block(
            users.data(),
            2,
            &items.data()[4 * f..7 * f],
            3,
            f,
            &mut flat_out,
        );
        assert_eq!(seg_out, flat_out);
    }

    #[test]
    #[should_panic(expected = "block maxima")]
    fn segment_view_rejects_mismatched_block_max() {
        let seg = SegmentView {
            items: &[0.0; 8],
            norms: &[0.0; 4],
            block_max: &[0.0; 3],
            item_block: 2,
            first_id: 0,
            ids: None,
            pos: None,
            encoded: None,
        };
        seg.validate(2);
    }

    #[test]
    fn stored_row_resolves_through_the_position_remap() {
        let f = 3;
        // Stored order [2, 0, 1] of a 3-item segment starting at id 10.
        let items = FactorMatrix::random(3, f, 1.0, 41);
        let norms = crate::topk::item_norms(items.data(), f);
        let bm = crate::topk::block_max_norms(&norms, 2);
        let ids = [12u32, 10, 11];
        let pos = [1u32, 2, 0];
        let seg = SegmentView {
            items: items.data(),
            norms: &norms,
            block_max: &bm,
            item_block: 2,
            first_id: 10,
            ids: Some(&ids),
            pos: Some(&pos),
            encoded: None,
        };
        seg.validate(f);
        for id in 10..13u32 {
            let row = seg.stored_row(id);
            assert_eq!(seg.global_id(row), id, "ids/pos must be inverses");
            assert_eq!(seg.vector_of(id, f), items.vector(row));
        }
        // Identity segment: stored row is the global offset.
        let plain = SegmentView {
            ids: None,
            pos: None,
            first_id: 5,
            ..seg
        };
        assert_eq!(plain.stored_row(6), 1);
        assert_eq!(plain.vector_of(7, f), items.vector(2));
    }

    #[test]
    #[should_panic(expected = "lacks its position remap")]
    fn permuted_view_without_pos_rejects_point_lookups() {
        let ids = [1u32, 0];
        let seg = SegmentView {
            items: &[0.0; 4],
            norms: &[0.0; 2],
            block_max: &[0.0; 1],
            item_block: 2,
            first_id: 0,
            ids: Some(&ids),
            pos: None,
            encoded: None,
        };
        let _ = seg.stored_row(0);
    }

    #[test]
    fn score_block_empty_items_is_ok() {
        let mut out = vec![];
        batch_score_block(&[1.0, 2.0], 1, &[], 0, 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "score buffer size mismatch")]
    fn score_block_rejects_bad_output_len() {
        let mut out = vec![0.0f32; 3];
        batch_score_block(&[1.0, 2.0], 1, &[1.0, 2.0], 1, 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn mismatched_buffers_panic() {
        let mut a = vec![0.0f32; 10];
        let mut b = vec![0.0f32; 3];
        batch_solve(&mut a, &mut b, 3);
    }
}

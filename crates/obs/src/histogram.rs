//! Lock-free log-bucketed latency histograms.
//!
//! The source paper's analysis lives and dies on knowing *where time goes*
//! — its wins came from profiling the memory-bound Hermitian assembly and
//! the aliasing transfer costs.  A mean and a max (what the serving tier
//! kept before this module) cannot answer that question under a skewed
//! latency distribution, and a full reservoir of samples cannot be recorded
//! from a scoring hot path without allocating.  This histogram is the
//! standard HDR compromise: **fixed storage, bounded relative error,
//! wait-free recording**.
//!
//! ## Bucket scheme
//!
//! Values are non-negative integers (nanoseconds, by convention).  The
//! value range is split into octaves (powers of two), each octave into
//! `2^SUB_BUCKET_BITS = 16` linear sub-buckets, so any recorded value lands
//! in a bucket whose width is at most `value / 16` — every reported
//! quantile is within **6.25 %** of the true value, at any magnitude from
//! 1 ns to `u64::MAX` ns.  Values below 16 get exact unit buckets.  The
//! whole table is `976` buckets (≈ 8 KiB of counters) regardless of range,
//! so a metrics struct can afford one histogram per pipeline stage.
//!
//! ## Concurrency
//!
//! [`Histogram::record_ns`] is two relaxed `fetch_add`s and two
//! `fetch_max`/`fetch_min`s — no locks, no allocation, safe from any number
//! of threads (rayon workers, scorer pools).  Counts are exact: concurrent
//! recorders never lose increments, which the crate's tests pin by summing
//! from many threads.  [`Histogram::snapshot`] takes a relaxed point-in-time
//! copy: it may tear *between* buckets under concurrent writes (a snapshot
//! is a dashboard read, not a barrier) but each counter is individually
//! consistent and monotone.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BUCKET_BITS` linear buckets, bounding relative error at
/// `2^-SUB_BUCKET_BITS` (6.25 %).
pub const SUB_BUCKET_BITS: u32 = 4;

/// Sub-buckets per octave.
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Total bucket count covering the full `u64` range: 16 exact unit buckets
/// for values `< 16`, then 16 buckets per octave for exponents `4..=63`.
pub const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index of a value — total order preserving (monotone in `v`).
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let shift = exp - SUB_BUCKET_BITS as usize;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        (exp - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS + sub
    }
}

/// Smallest value landing in bucket `i`.
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let octave = i / SUB_BUCKETS;
        let sub = i % SUB_BUCKETS;
        let shift = octave - 1;
        ((SUB_BUCKETS + sub) as u64) << shift
    }
}

/// Largest value landing in bucket `i` — what quantiles report, so the
/// estimate errs on the conservative (pessimistic-latency) side.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let shift = i / SUB_BUCKETS - 1;
        // `(1 << shift) - 1` first: adding the bucket width before
        // subtracting would overflow on the topmost bucket.
        bucket_low(i) + ((1u64 << shift) - 1)
    }
}

/// A wait-free, fixed-size, log-bucketed histogram of `u64` values
/// (nanoseconds by convention).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    /// Exact sum of every recorded value (saturating), so the mean carries
    /// no bucket error.
    sum: AtomicU64,
    /// Exact max of every recorded value.
    max: AtomicU64,
    /// Exact min of every recorded value (`u64::MAX` while empty).
    min: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed)) // relaxed-ok: Debug peek, no consistency promised
            .field("sum", &self.sum.load(Ordering::Relaxed)) // relaxed-ok: Debug peek, no consistency promised
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("BUCKETS-sized vec");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one value.  Wait-free; callable from any thread.
    pub fn record_ns(&self, v: u64) {
        self.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed); // relaxed-ok: bucket += 1 BEFORE count (snapshot reads count first, so bucket_total >= count)
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: per-field fetch_add cannot lose updates; model-checked in tests/model_check.rs
                                                    // Saturating sum: fetch_add wraps, so clamp pre-emptively.  A sum
                                                    // near u64::MAX means ~584 years of nanoseconds — the clamp exists
                                                    // for adversarial inputs, not real clocks.
        let mut cur = self.sum.load(Ordering::Relaxed); // relaxed-ok: CAS loop re-reads on failure; stale first read only costs a retry
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) // relaxed-ok: the CAS retries through contention; only sum's own value matters
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed); // relaxed-ok: fetch_max is order-insensitive (max is commutative)
        self.min.fetch_min(v, Ordering::Relaxed); // relaxed-ok: fetch_min is order-insensitive (min is commutative)
    }

    /// Records a [`Duration`] as nanoseconds (saturating at `u64::MAX`).
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds `other`'s recorded values into `self` (both keep accepting
    /// concurrent records).  Merge is associative and commutative up to the
    /// saturating sum, which the tests pin.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed); // relaxed-ok: merge reads a live source; torn reads shift values between concurrent merges, never lose them
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed); // relaxed-ok: destination fetch_add conserves totals under concurrent merges
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: count folded independently of buckets; one-sided skew is documented
        let add = other.sum.load(Ordering::Relaxed); // relaxed-ok: live source read; saturating fold tolerates staleness
        let mut cur = self.sum.load(Ordering::Relaxed); // relaxed-ok: CAS loop re-reads on failure
        loop {
            let next = cur.saturating_add(add);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) // relaxed-ok: the CAS retries through contention
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: max fold is commutative
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: min fold is commutative
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed-ok: monotonic counter read
    }

    /// A point-in-time copy for quantile queries, diffing, and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed); // relaxed-ok: count read FIRST, buckets after; any tear overcounts buckets, never undercounts
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed)) // relaxed-ok: bucket reads after count; one-sided tear is the documented invariant
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed), // relaxed-ok: saturating sum sample, report-only
            max: self.max.load(Ordering::Relaxed), // relaxed-ok: monotonic max sample
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed) // relaxed-ok: monotonic min sample
            },
        }
    }
}

/// Read-side copy of a [`Histogram`]: supports quantiles, means, merging,
/// and windowed differencing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Exact mean in nanoseconds (`0.0` when empty) — derived from the
    /// exact sum, so it carries no bucket error.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact largest recorded value in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Exact smallest recorded value in nanoseconds (`0` when empty).
    pub fn min_ns(&self) -> u64 {
        self.min
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper bound of
    /// the bucket holding the value of rank `ceil(p·count)`, clamped to the
    /// exact recorded max.  Within 6.25 % of the true order statistic, never
    /// below it, and monotone in `p`.  Returns `0` when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` (the read-side counterpart of
    /// [`Histogram::merge`]).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        let had_values = self.count > 0;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        if other.count > 0 {
            self.min = if had_values {
                self.min.min(other.min)
            } else {
                other.min
            };
        }
    }

    /// The window of values recorded since `baseline` was snapped from the
    /// same histogram: per-bucket saturating difference.
    ///
    /// Counts, sums, means and quantiles of the result are exact for the
    /// window; `max`/`min` cannot be recovered from monotone counters, so
    /// they are bounded from the differenced buckets (within the 6.25 %
    /// bucket error) and clamped to the cumulative exact max.
    pub fn since(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(baseline.counts.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let highest = counts.iter().rposition(|&n| n > 0);
        let lowest = counts.iter().position(|&n| n > 0);
        HistogramSnapshot {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            max: highest.map_or(0, |i| bucket_high(i).min(self.max)),
            min: lowest.map_or(0, bucket_low),
            counts,
        }
    }

    /// Iterator over the non-empty buckets as `(low, high, count)` — the
    /// exporter's raw view.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), bucket_high(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS as u64 * 2 {
            let i = index_of(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
        }
        // Values below 32 are exact (unit buckets through two octaves).
        for v in 0..32u64 {
            let i = index_of(v);
            assert_eq!((bucket_low(i), bucket_high(i)), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Consecutive buckets tile the u64 range with no gaps or overlaps.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap/overlap at bucket {i}"
            );
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [1u64, 17, 100, 1_000, 123_456, u32::MAX as u64, 1 << 60] {
            let i = index_of(v);
            let err = (bucket_high(i) - bucket_low(i)) as f64;
            assert!(
                err <= v as f64 / SUB_BUCKETS as f64 + 1.0,
                "bucket {i} too wide for {v}: {err}"
            );
        }
    }

    #[test]
    fn quantiles_bracket_known_distributions() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max_ns(), 1000);
        assert_eq!(s.min_ns(), 1);
        assert_eq!(s.mean_ns(), 500.5);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((500..=532).contains(&p50), "p50={p50}");
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn windowed_diff_isolates_the_new_records() {
        let h = Histogram::new();
        h.record_ns(10);
        h.record_ns(20);
        let baseline = h.snapshot();
        h.record_ns(1000);
        h.record_ns(2000);
        let window = h.snapshot().since(&baseline);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum_ns(), 3000);
        assert_eq!(window.mean_ns(), 1500.0);
        // Window max is bucket-bounded: within 6.25 % above 2000.
        assert!(window.max_ns() >= 2000 && window.max_ns() <= 2125);
        assert!(window.min_ns() <= 1000 && window.min_ns() >= 938);
        // Diffing against itself leaves nothing.
        let s = h.snapshot();
        assert_eq!(s.since(&s).count(), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.min_ns(), 0);
        assert_eq!(s.max_ns(), 0);
    }
}

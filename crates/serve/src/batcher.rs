//! Request coalescing: many concurrent clients, one blocked scorer.
//!
//! [`TopKService`] owns a worker thread fed by an MPMC channel.  The worker
//! assembles micro-batches that are **size-bounded** (`max_batch`) and
//! **deadline-bounded** (`max_delay` from the first request of the batch),
//! the standard dynamic-batching policy of inference servers: under load,
//! batches fill instantly and scoring runs at full blocked throughput; when
//! idle, a lone request waits at most `max_delay`.
//!
//! Per batch the worker captures the current snapshot `Arc` **once** —
//! every request in the batch is answered from that generation, so a
//! concurrent [`TopKService::publish`] can never produce a mixed-generation
//! response.  Results are cached per `(user, k, exclusions)` with the
//! generation stamped in; a publish invalidates lazily through the
//! generation check.

use crate::cache::{CacheKey, ResultCache};
use crate::metrics::{MetricsReport, ServeMetrics};
use crate::snapshot::{FactorSnapshot, SnapshotStore};
use crate::topk::{Query, ScoreKind, TopKIndex};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use cumf_linalg::topk::DEFAULT_ITEM_BLOCK;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`TopKService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Largest micro-batch the worker scores at once.
    pub max_batch: usize,
    /// Longest a batch waits for co-travellers after its first request.
    pub max_delay: Duration,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Items scored per block (see [`cumf_linalg::batch_score_block`]).
    pub item_block: usize,
    /// Scoring function.
    pub score: ScoreKind,
    /// Depth of the request queue; senders block (back-pressure) when the
    /// worker falls this far behind.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            cache_capacity: 4096,
            item_block: DEFAULT_ITEM_BLOCK,
            score: ScoreKind::Dot,
            queue_depth: 1024,
        }
    }
}

/// Why a request failed.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The service worker has shut down.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => f.write_str("serving worker has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

struct Request {
    query: Query,
    reply: Sender<Vec<(u32, f32)>>,
}

enum Msg {
    Request(Request),
    /// Sent by [`TopKService::drop`]; the worker finishes the batch in hand
    /// and exits even while client handles are still alive.
    Shutdown,
}

/// A batched, cached top-k retrieval service over hot-swappable snapshots.
pub struct TopKService {
    tx: Option<Sender<Msg>>,
    store: Arc<SnapshotStore>,
    metrics: Arc<ServeMetrics>,
    worker: Option<JoinHandle<()>>,
}

impl TopKService {
    /// Starts the worker serving `initial` under `config`.
    pub fn start(initial: FactorSnapshot, config: ServeConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        let store = Arc::new(SnapshotStore::new(initial));
        let metrics = Arc::new(ServeMetrics::new());
        let (tx, rx) = bounded::<Msg>(config.queue_depth.max(1));
        let worker = {
            let store = Arc::clone(&store);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut cache = ResultCache::new(config.cache_capacity);
                let mut shutdown = false;
                while !shutdown {
                    // Block for the batch's first request.
                    let first = match rx.recv() {
                        Ok(Msg::Request(r)) => r,
                        Ok(Msg::Shutdown) | Err(_) => return,
                    };
                    let mut batch = vec![first];
                    let deadline = Instant::now() + config.max_delay;
                    while batch.len() < config.max_batch {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(Msg::Request(r)) => batch.push(r),
                            Ok(Msg::Shutdown) => {
                                shutdown = true;
                                break;
                            }
                            Err(RecvTimeoutError::Timeout)
                            | Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    // Serve what was coalesced, even on the way out.
                    Self::serve_batch(&batch, &store, &metrics, &mut cache, &config);
                }
            })
        };
        Self {
            tx: Some(tx),
            store,
            metrics,
            worker: Some(worker),
        }
    }

    /// Starts with the default configuration.
    pub fn start_default(initial: FactorSnapshot) -> Self {
        Self::start(initial, ServeConfig::default())
    }

    fn serve_batch(
        batch: &[Request],
        store: &SnapshotStore,
        metrics: &ServeMetrics,
        cache: &mut ResultCache,
        config: &ServeConfig,
    ) {
        let started = Instant::now();
        // One snapshot per batch: the no-mixed-generations invariant.
        let snapshot = store.load();
        let generation = snapshot.generation();

        // Keys are built once per request and carried through to the insert
        // after scoring — hashing a heavy user's exclusion list is not free.
        let mut to_score: Vec<(usize, CacheKey)> = Vec::with_capacity(batch.len());
        for (i, req) in batch.iter().enumerate() {
            metrics.record_request();
            let key = CacheKey::new(req.query.user, req.query.k, &req.query.exclude);
            if let Some(hit) = cache.get(&key, generation) {
                metrics.record_cache_hit();
                // Counted before the send: the client may observe its reply
                // (and a test may read the metrics) immediately after.
                metrics.record_response();
                let _ = req.reply.send(hit.clone());
            } else {
                metrics.record_cache_miss();
                to_score.push((i, key));
            }
        }

        if !to_score.is_empty() {
            let queries: Vec<Query> = to_score
                .iter()
                .map(|(i, _)| batch[*i].query.clone())
                .collect();
            let index = TopKIndex::new(snapshot, config.item_block, config.score);
            let results = index.query_batch(&queries);
            for ((i, key), result) in to_score.into_iter().zip(results) {
                let req = &batch[i];
                cache.insert(key, generation, result.clone());
                metrics.record_response();
                let _ = req.reply.send(result);
            }
        }
        metrics.record_batch(batch.len(), started.elapsed());
    }

    /// A cloneable client handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self
                .tx
                .as_ref()
                .expect("service sender lives until drop")
                .clone(),
        }
    }

    /// Publishes new factors under load; returns the new generation.
    /// In-flight batches finish on the previous snapshot; cached results of
    /// older generations stop being served immediately (lazy eviction).
    pub fn publish(&self, snapshot: FactorSnapshot) -> u64 {
        let generation = self.store.publish(snapshot);
        self.metrics.record_swap();
        generation
    }

    /// The currently-published snapshot.
    pub fn snapshot(&self) -> Arc<FactorSnapshot> {
        self.store.load()
    }

    /// Point-in-time serving metrics.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }
}

impl Drop for TopKService {
    fn drop(&mut self) {
        // An explicit shutdown message (rather than sender disconnect) lets
        // the worker exit even while client handles are still alive; their
        // next send fails with [`ServeError::Shutdown`].
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Client handle: blocking request/response against the service worker.
#[derive(Clone)]
pub struct ServeClient {
    tx: Sender<Msg>,
}

impl ServeClient {
    /// Requests the top-`k` items for `user`, excluding `exclude`.
    /// Blocks until the worker replies (one micro-batch of latency).
    pub fn recommend(
        &self,
        user: u32,
        k: usize,
        exclude: &[u32],
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        let (reply_tx, reply_rx) = bounded(1);
        let request = Msg::Request(Request {
            query: Query {
                user,
                k,
                exclude: exclude.to_vec(),
            },
            reply: reply_tx,
        });
        self.tx.send(request).map_err(|_| ServeError::Shutdown)?;
        reply_rx.recv().map_err(|_| ServeError::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::FactorMatrix;

    fn snapshot(seed: u64) -> FactorSnapshot {
        FactorSnapshot::from_factors(
            FactorMatrix::random(40, 8, 1.0, seed),
            FactorMatrix::random(200, 8, 1.0, seed + 1),
        )
    }

    fn config() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(4),
            ..Default::default()
        }
    }

    #[test]
    fn replies_match_the_single_request_path() {
        let service = TopKService::start(snapshot(1), config());
        let reference = service.snapshot();
        let client = service.client();
        for user in 0..40u32 {
            let got = client.recommend(user, 7, &[user % 5]).unwrap();
            assert_eq!(got, reference.recommend_one(user, 7, &[user % 5]));
        }
    }

    #[test]
    fn concurrent_clients_coalesce_into_batches() {
        let service = TopKService::start(snapshot(2), config());
        std::thread::scope(|s| {
            for t in 0..8 {
                let client = service.client();
                s.spawn(move || {
                    for i in 0..25u32 {
                        let user = (t * 25 + i) % 40;
                        let r = client.recommend(user, 5, &[]).unwrap();
                        assert_eq!(r.len(), 5);
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.requests, 200);
        assert_eq!(m.responses, 200);
        assert!(
            m.batches < m.requests,
            "expected coalescing: {} batches for {} requests",
            m.batches,
            m.requests
        );
        assert!(m.mean_batch_size > 1.0);
    }

    #[test]
    fn identical_requests_hit_the_cache() {
        let service = TopKService::start(snapshot(3), config());
        let client = service.client();
        let a = client.recommend(7, 5, &[1, 2]).unwrap();
        let b = client.recommend(7, 5, &[1, 2]).unwrap();
        assert_eq!(a, b);
        let m = service.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
    }

    #[test]
    fn publish_invalidates_cached_results() {
        let service = TopKService::start(snapshot(4), config());
        let client = service.client();
        let old = client.recommend(3, 5, &[]).unwrap();
        service.publish(snapshot(99));
        let new = client.recommend(3, 5, &[]).unwrap();
        let expect = service.snapshot().recommend_one(3, 5, &[]);
        assert_eq!(new, expect);
        assert_ne!(old, new, "stale cached result served after publish");
        assert_eq!(service.metrics().snapshot_swaps, 1);
    }

    #[test]
    fn single_request_is_flushed_by_the_deadline() {
        let service = TopKService::start(
            snapshot(5),
            ServeConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(5),
                ..Default::default()
            },
        );
        let client = service.client();
        let start = Instant::now();
        let r = client.recommend(0, 3, &[]).unwrap();
        assert_eq!(r.len(), 3);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline flush took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn clients_error_cleanly_after_shutdown() {
        let service = TopKService::start(snapshot(6), config());
        let client = service.client();
        drop(service);
        assert_eq!(client.recommend(0, 3, &[]), Err(ServeError::Shutdown));
    }
}

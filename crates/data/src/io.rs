//! Reading and writing rating matrices.
//!
//! The paper's public data sets (Netflix, YahooMusic, Hugewiki) are
//! distributed as text triplet files; the synthetic reproductions in this
//! repository can be exported the same way so that external tools (or the
//! original cuMF) can consume them.  Two formats are supported:
//!
//! * **MatrixMarket coordinate** (`%%MatrixMarket matrix coordinate real
//!   general`), the format Hugewiki and most MF benchmarks use.  Indices are
//!   1-based on disk and converted to 0-based in memory.
//! * **CSV/TSV triplets** (`user,item,rating` per line, optional header),
//!   the common export format of recommender data sets.

use cumf_sparse::{Coo, Csr, SparseError};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced while reading a rating file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Parse { line: usize, message: String },
    /// The parsed entries were structurally invalid (out-of-range indices).
    Sparse(SparseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Sparse(e) => write!(f, "invalid matrix: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<SparseError> for IoError {
    fn from(e: SparseError) -> Self {
        IoError::Sparse(e)
    }
}

/// Reads a MatrixMarket coordinate file into a [`Coo`] matrix.
pub fn read_matrix_market(path: &Path) -> Result<Coo, IoError> {
    let reader = BufReader::new(File::open(path)?);
    read_matrix_market_from(reader)
}

/// Reads MatrixMarket coordinate data from any buffered reader.
pub fn read_matrix_market_from<R: BufRead>(reader: R) -> Result<Coo, IoError> {
    let mut lines = reader.lines().enumerate();

    // Header: skip comments, read the size line.
    let mut size_seen = false;
    let mut coo = Coo::new(0, 0);
    for (idx, line) in &mut lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if !size_seen {
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(IoError::Parse {
                    line: idx + 1,
                    message: format!("expected 'rows cols nnz', got '{trimmed}'"),
                });
            }
            let m: u32 = parse(parts[0], idx)?;
            let n: u32 = parse(parts[1], idx)?;
            let declared_nnz: usize = parse(parts[2], idx)?;
            coo = Coo::with_capacity(m, n, declared_nnz);
            size_seen = true;
            continue;
        }
        let (u, v, r) = parse_triplet(trimmed, idx)?;
        if u == 0 || v == 0 {
            return Err(IoError::Parse {
                line: idx + 1,
                message: "MatrixMarket indices are 1-based; found 0".to_string(),
            });
        }
        coo.push(u - 1, v - 1, r)?;
    }
    if !size_seen {
        return Err(IoError::Parse {
            line: 0,
            message: "missing MatrixMarket size line".into(),
        });
    }
    Ok(coo)
}

/// Writes a sparse matrix as a MatrixMarket coordinate file.
pub fn write_matrix_market(path: &Path, r: &Csr) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by cumf-rs")?;
    writeln!(w, "{} {} {}", r.n_rows(), r.n_cols(), r.nnz())?;
    for e in r.iter() {
        writeln!(w, "{} {} {}", e.row + 1, e.col + 1, e.val)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a delimiter-separated triplet file (`user,item,rating`).
///
/// * `delimiter` — typically `,` or `\t`.
/// * `has_header` — skip the first non-empty line.
///
/// Indices are taken as 0-based; the matrix shape is the maximum index + 1.
pub fn read_csv_triplets(path: &Path, delimiter: char, has_header: bool) -> Result<Coo, IoError> {
    let reader = BufReader::new(File::open(path)?);
    read_csv_triplets_from(reader, delimiter, has_header)
}

/// Reads delimiter-separated triplets from any buffered reader.
pub fn read_csv_triplets_from<R: BufRead>(
    reader: R,
    delimiter: char,
    has_header: bool,
) -> Result<Coo, IoError> {
    let mut entries: Vec<(u32, u32, f32)> = Vec::new();
    let mut max_row = 0u32;
    let mut max_col = 0u32;
    let mut header_skipped = !has_header;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !header_skipped {
            header_skipped = true;
            continue;
        }
        let parts: Vec<&str> = trimmed.split(delimiter).map(str::trim).collect();
        if parts.len() < 3 {
            return Err(IoError::Parse {
                line: idx + 1,
                message: format!("expected at least 3 fields, got {}", parts.len()),
            });
        }
        let u: u32 = parse(parts[0], idx)?;
        let v: u32 = parse(parts[1], idx)?;
        let r: f32 = parse(parts[2], idx)?;
        max_row = max_row.max(u);
        max_col = max_col.max(v);
        entries.push((u, v, r));
    }
    let mut coo = Coo::with_capacity(max_row + 1, max_col + 1, entries.len());
    for (u, v, r) in entries {
        coo.push(u, v, r)?;
    }
    Ok(coo)
}

/// Writes a sparse matrix as delimiter-separated triplets with a header.
pub fn write_csv_triplets(path: &Path, r: &Csr, delimiter: char) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "user{delimiter}item{delimiter}rating")?;
    for e in r.iter() {
        writeln!(w, "{}{delimiter}{}{delimiter}{}", e.row, e.col, e.val)?;
    }
    w.flush()?;
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str, line_idx: usize) -> Result<T, IoError>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| IoError::Parse {
        line: line_idx + 1,
        message: format!("'{s}': {e}"),
    })
}

fn parse_triplet(line: &str, line_idx: usize) -> Result<(u32, u32, f32), IoError> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    if parts.len() < 3 {
        return Err(IoError::Parse {
            line: line_idx + 1,
            message: format!("expected 'row col value', got '{line}'"),
        });
    }
    Ok((
        parse(parts[0], line_idx)?,
        parse(parts[1], line_idx)?,
        parse(parts[2], line_idx)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticConfig;
    use std::io::Cursor;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_path(ext: &str) -> std::path::PathBuf {
        let id = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("cumf_io_test_{}_{id}.{ext}", std::process::id()))
    }

    fn sample() -> Csr {
        SyntheticConfig {
            m: 40,
            n: 25,
            nnz: 300,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn matrix_market_roundtrip() {
        let r = sample();
        let path = temp_path("mtx");
        write_matrix_market(&path, &r).unwrap();
        let back = read_matrix_market(&path).unwrap().to_csr();
        assert_eq!(back, r);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_roundtrip() {
        let r = sample();
        let path = temp_path("csv");
        write_csv_triplets(&path, &r, ',').unwrap();
        let back = read_csv_triplets(&path, ',', true).unwrap().to_csr();
        // Shape may shrink if the last rows/cols are empty; compare entries.
        let a: Vec<_> = r.iter().map(|e| (e.row, e.col, e.val)).collect();
        let b: Vec<_> = back.iter().map(|e| (e.row, e.col, e.val)).collect();
        assert_eq!(a, b);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reads_matrix_market_with_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\n\
                    3 4 2\n\
                    1 1 2.5\n\
                    3 4 -1.0\n";
        let coo = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(coo.n_rows(), 3);
        assert_eq!(coo.n_cols(), 4);
        assert_eq!(coo.nnz(), 2);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), Some(2.5));
        assert_eq!(csr.get(2, 3), Some(-1.0));
    }

    #[test]
    fn rejects_zero_based_matrix_market_indices() {
        let text = "3 3 1\n0 1 1.0\n";
        let err = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "3 3\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
        let csv = "user,item,rating\n1,2\n";
        assert!(read_csv_triplets_from(Cursor::new(csv), ',', true).is_err());
        let csv_bad_num = "1,2,not_a_number\n";
        assert!(read_csv_triplets_from(Cursor::new(csv_bad_num), ',', false).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let text = "2 2 1\n5 1 1.0\n";
        let err = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Sparse(_)));
        // Column out of range as well as row.
        let text = "2 2 1\n1 9 1.0\n";
        assert!(matches!(
            read_matrix_market_from(Cursor::new(text)).unwrap_err(),
            IoError::Sparse(_)
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        // Comments only — the size line never arrives.
        let text = "%%MatrixMarket matrix coordinate real general\n% truncated here\n";
        let err = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("missing MatrixMarket size line"));
        // Completely empty input.
        let err = read_matrix_market_from(Cursor::new("")).unwrap_err();
        assert!(err.to_string().contains("missing MatrixMarket size line"));
        // Size line with too few fields.
        let err = read_matrix_market_from(Cursor::new("4 4\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_non_numeric_entries() {
        // Non-numeric value field.
        let text = "2 2 1\n1 1 four\n";
        let err = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }));
        assert!(err.to_string().contains("four"));
        // Non-numeric index field.
        let text = "2 2 1\nx 1 1.0\n";
        assert!(matches!(
            read_matrix_market_from(Cursor::new(text)).unwrap_err(),
            IoError::Parse { line: 2, .. }
        ));
        // Non-numeric size line.
        let text = "two 2 1\n";
        assert!(matches!(
            read_matrix_market_from(Cursor::new(text)).unwrap_err(),
            IoError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn rejects_truncated_data_line() {
        let text = "3 3 2\n1 1 1.0\n2 2\n";
        let err = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }));
        assert!(err.to_string().contains("expected 'row col value'"));
    }

    #[test]
    fn tsv_with_no_header() {
        let tsv = "0\t1\t4.5\n2\t0\t1.0\n";
        let coo = read_csv_triplets_from(Cursor::new(tsv), '\t', false).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.n_rows(), 3);
        assert_eq!(coo.n_cols(), 2);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_matrix_market(Path::new("/nonexistent/cumf.mtx")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}

//! The unified engine API: one trait pair every factorization engine
//! implements.
//!
//! Before this module, the three ALS engines exposed near-identical
//! inherent methods (`iterate`, `set_factors`, `fold_in_users`, ...) that
//! the trainer dispatched over with a hand-written enum, and the baseline
//! solvers lived behind a separate `MfSolver` trait with a different
//! surface.  [`Engine`] unifies them:
//!
//! | method | what it does |
//! |---|---|
//! | [`Engine::train_sweep`] | one full training pass (ALS iteration or SGD epoch); returns simulated GPU seconds (0 for host-only engines) |
//! | [`Engine::x`] / [`Engine::theta`] | the current factor matrices |
//! | [`Engine::set_factors`] | warm start / checkpoint restore |
//! | [`Engine::attach_metrics`] | share a [`TrainMetrics`] sink for per-row phase timing |
//! | [`Engine::rmse`] / [`Engine::train_rmse`] | held-out / training error |
//!
//! [`IncrementalEngine`] extends it with the online-serving half: folding
//! new-or-updated users in against the engine's frozen `Θ`, either from a
//! contiguous catalog ([`IncrementalEngine::fold_in_users`]) or directly
//! from the serving tier's segmented item store
//! ([`IncrementalEngine::fold_in_users_segmented`]) without materializing a
//! contiguous `Θ` copy.
//!
//! Both traits are object safe; [`crate::trainer::MatrixFactorizer`] holds a
//! `Box<dyn IncrementalEngine>` and the benchmark harness drives baselines
//! through `Box<dyn Engine>`.

use crate::instrument::TrainMetrics;
use crate::loss;
use cumf_linalg::batch::SegmentView;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};
use std::sync::Arc;

/// A matrix-factorization engine: something that sweeps over a fixed
/// training set improving `X`/`Θ`, can be warm-started, and reports its
/// error.
pub trait Engine {
    /// Human-readable engine name.
    fn name(&self) -> &'static str;

    /// Runs one full training sweep — an ALS iteration or an SGD/CCD epoch —
    /// and returns the *simulated* GPU seconds it cost (0.0 for engines that
    /// only run on the host).
    fn train_sweep(&mut self) -> f64;

    /// Current user factors `X`.
    fn x(&self) -> &FactorMatrix;

    /// Current item factors `Θ`.
    fn theta(&self) -> &FactorMatrix;

    /// Replaces the current factors (warm start / checkpoint restore).
    ///
    /// # Panics
    /// Panics if the shapes do not match the engine's training matrix or
    /// configured rank.
    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix);

    /// Attaches a shared [`TrainMetrics`] sink.  Engines whose training
    /// solves are priced by the GPU simulator rather than host-timed (SU-ALS)
    /// still keep the sink for fold-in instrumentation.
    fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>);

    /// The attached metrics sink, if any.
    fn metrics(&self) -> Option<&TrainMetrics> {
        None
    }

    /// Root-mean-square error on an explicit set of held-out ratings.
    fn rmse(&self, entries: &[Entry]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        loss::rmse(self.x(), self.theta(), entries)
    }

    /// Root-mean-square error over the engine's own training set.
    fn train_rmse(&self) -> f64;
}

/// An [`Engine`] that supports the online loop: solving new-or-updated
/// users against its frozen `Θ` for serving-side delta publication, without
/// retraining.
pub trait IncrementalEngine: Engine {
    /// The regularization used for fold-in solves (the training `λ`, so a
    /// folded-in user gets exactly the factors one more update-`X`
    /// half-iteration would have given them).
    fn fold_in_lambda(&self) -> f32;

    /// Solves a batch of users against the engine's frozen `Θ` — one row of
    /// `ratings` per user over the full item catalog (build it with
    /// [`crate::foldin::ratings_rows`]).  Records into the attached
    /// [`TrainMetrics`], if any.
    ///
    /// # Panics
    /// Panics if `ratings` does not span the item catalog.
    fn fold_in_users(&self, ratings: &Csr) -> FactorMatrix {
        crate::foldin::fold_in_users_instrumented(
            ratings,
            self.theta(),
            self.fold_in_lambda(),
            self.metrics(),
        )
    }

    /// [`IncrementalEngine::fold_in_users`] against a segmented catalog:
    /// the Hermitians are assembled by resolving each rating's item id
    /// through its segment view, so no contiguous catalog-order `Θ` is ever
    /// materialized.  `segments` would typically come from the serving
    /// tier's item store (`ItemStore::views()`).
    ///
    /// # Panics
    /// Panics if the segments do not tile `[0, ratings.n_cols())` or their
    /// rank differs from the engine's.
    fn fold_in_users_segmented(&self, ratings: &Csr, segments: &[SegmentView<'_>]) -> FactorMatrix {
        crate::foldin::fold_in_users_segmented_instrumented(
            ratings,
            segments,
            self.theta().rank(),
            self.fold_in_lambda(),
            self.metrics(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{BaseAls, MoAlsEngine, SuAlsConfig, SuAlsEngine};
    use crate::config::AlsConfig;
    use crate::foldin::ratings_rows;
    use crate::reduce::ReductionScheme;
    use crate::sgd::{SgdConfig, SgdEngine};
    use cumf_data::synth::SyntheticConfig;
    use cumf_gpu_sim::GpuCluster;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 120,
            n: 60,
            nnz: 3000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    fn engines(r: &Csr) -> Vec<Box<dyn IncrementalEngine>> {
        let als = AlsConfig {
            f: 8,
            lambda: 0.05,
            iterations: 2,
            ..Default::default()
        };
        vec![
            Box::new(BaseAls::new(als.clone(), r.clone())),
            Box::new(MoAlsEngine::on_titan_x(als.clone(), r.clone())),
            Box::new(SuAlsEngine::new(
                SuAlsConfig::auto(als.clone(), ReductionScheme::OnePhase),
                r.clone(),
                GpuCluster::titan_x_flat(2),
            )),
            Box::new(SgdEngine::new(
                SgdConfig {
                    f: 8,
                    ..Default::default()
                },
                r.clone(),
            )),
        ]
    }

    #[test]
    fn every_engine_trains_through_the_unified_trait() {
        let r = ratings();
        for mut engine in engines(&r) {
            let before = engine.train_rmse();
            let mut sim = 0.0;
            for _ in 0..3 {
                sim += engine.train_sweep();
            }
            let after = engine.train_rmse();
            assert!(
                after < before,
                "{}: training must reduce RMSE ({before} -> {after})",
                engine.name()
            );
            assert!(sim >= 0.0, "{}: negative simulated time", engine.name());
            assert_eq!(engine.x().len(), r.n_rows() as usize, "{}", engine.name());
            assert_eq!(
                engine.theta().len(),
                r.n_cols() as usize,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn set_factors_round_trips_through_the_trait() {
        let r = ratings();
        for mut engine in engines(&r) {
            engine.train_sweep();
            let (x, theta) = (engine.x().clone(), engine.theta().clone());
            engine.set_factors(x.clone(), theta.clone());
            assert_eq!(engine.x().max_abs_diff(&x), 0.0, "{}", engine.name());
            assert_eq!(
                engine.theta().max_abs_diff(&theta),
                0.0,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn fold_in_matches_across_engines_given_identical_factors() {
        // Fold-in depends only on Θ and λ, so every engine sharing the same
        // factors must fold identically — the trait default makes that
        // structural instead of triplicated.
        let r = ratings();
        let mut all = engines(&r);
        let mut first = all.remove(0);
        first.train_sweep();
        let (x, theta) = (first.x().clone(), first.theta().clone());
        let batch = ratings_rows(&[vec![(0, 4.0), (7, 3.0), (12, 5.0)]], r.n_cols());
        let expect = first.fold_in_users(&batch);
        for mut engine in all {
            engine.set_factors(x.clone(), theta.clone());
            let got = engine.fold_in_users(&batch);
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "{} fold-in diverged",
                engine.name()
            );
        }
    }

    #[test]
    fn attached_metrics_record_fold_ins_for_every_engine() {
        let r = ratings();
        let batch = ratings_rows(&[vec![(0, 4.0)]], r.n_cols());
        for mut engine in engines(&r) {
            let metrics = Arc::new(TrainMetrics::new());
            engine.attach_metrics(Arc::clone(&metrics));
            engine.fold_in_users(&batch);
            assert_eq!(
                metrics.report().fold_in.count(),
                1,
                "{} must record fold-ins through the attached sink",
                engine.name()
            );
        }
    }

    #[test]
    fn held_out_rmse_default_is_consistent_with_train_rmse() {
        let r = ratings();
        let mut engine = BaseAls::new(
            AlsConfig {
                f: 8,
                iterations: 2,
                ..Default::default()
            },
            r.clone(),
        );
        Engine::train_sweep(&mut engine);
        let entries: Vec<Entry> = r.iter().collect();
        let held_out = Engine::rmse(&engine, &entries);
        let train = Engine::train_rmse(&engine);
        assert!((held_out - train).abs() < 1e-9);
        assert_eq!(Engine::rmse(&engine, &[]), 0.0);
    }
}

//! The histogram contract the serving and training metrics stand on:
//!
//! 1. **Bucket soundness** — every recorded value's reported quantile
//!    bracket contains it within the documented 6.25 % relative error.
//! 2. **Quantile monotonicity** — `quantile(p)` is non-decreasing in `p`
//!    for any recorded multiset (so `p99 ≥ p50` always holds, which CI
//!    asserts on the exported JSON).
//! 3. **Merge associativity/commutativity** — splitting a record stream
//!    across histograms and merging in any grouping yields the same
//!    snapshot.
//! 4. **Concurrent exactness** — hammering `record_ns` from many threads
//!    loses no increments: counts and sums match the serial total exactly.

use cumf_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Records each value into a fresh histogram.
fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record_ns(v);
    }
    h
}

proptest! {
    #[test]
    fn quantile_brackets_every_recorded_value(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..200),
    ) {
        let s = hist_of(&values).snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.max_ns(), *sorted.last().unwrap());
        prop_assert_eq!(s.min_ns(), sorted[0]);
        // The p-quantile never under-reports the true order statistic and
        // overshoots by at most one sub-bucket (6.25 %) plus one unit.
        for (i, &true_val) in sorted.iter().enumerate() {
            // (i + 0.5)/n ceils to rank i+1 exactly — float rounding on
            // (i + 1)/n could otherwise bump the rank past a far larger
            // neighbour and void the bracket bound.
            let p = (i as f64 + 0.5) / sorted.len() as f64;
            let q = s.quantile(p);
            prop_assert!(q >= true_val, "p={p}: {q} < true {true_val}");
            let bound = true_val + true_val / 16 + 1;
            prop_assert!(q <= bound, "p={p}: {q} > bound {bound}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_p(
        values in proptest::collection::vec(0u64..1_000_000_000u64, 1..300),
        cuts in proptest::collection::vec(0u32..=1000, 2..20),
    ) {
        let s = hist_of(&values).snapshot();
        let mut ps: Vec<f64> = cuts.iter().map(|&c| c as f64 / 1000.0).collect();
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qs: Vec<u64> = ps.iter().map(|&p| s.quantile(p)).collect();
        prop_assert!(
            qs.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: {qs:?} at {ps:?}"
        );
        prop_assert!(s.quantile(0.99) >= s.quantile(0.5));
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1u64 << 48, 0..100),
        b in proptest::collection::vec(0u64..1u64 << 48, 0..100),
        c in proptest::collection::vec(0u64..1u64 << 48, 0..100),
    ) {
        // (a ∪ b) ∪ c, a ∪ (b ∪ c), and recording everything into one
        // histogram must produce identical snapshots.
        let ab_c = {
            let ab = hist_of(&a);
            ab.merge(&hist_of(&b));
            ab.merge(&hist_of(&c));
            ab.snapshot()
        };
        let a_bc = {
            let bc = hist_of(&b);
            bc.merge(&hist_of(&c));
            let h = hist_of(&a);
            h.merge(&bc);
            h.snapshot()
        };
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let flat = hist_of(&all).snapshot();
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(&ab_c, &flat);
        // Commutativity: c ∪ b ∪ a too.
        let cba = {
            let h = hist_of(&c);
            h.merge(&hist_of(&b));
            h.merge(&hist_of(&a));
            h.snapshot()
        };
        prop_assert_eq!(&cba, &flat);
    }

    #[test]
    fn windowed_diff_equals_the_tail_records(
        head in proptest::collection::vec(0u64..1u64 << 40, 0..100),
        tail in proptest::collection::vec(0u64..1u64 << 40, 1..100),
    ) {
        let h = hist_of(&head);
        let baseline = h.snapshot();
        for &v in &tail {
            h.record_ns(v);
        }
        let window = h.snapshot().since(&baseline);
        let expect = hist_of(&tail).snapshot();
        prop_assert_eq!(window.count(), expect.count());
        prop_assert_eq!(window.sum_ns(), expect.sum_ns());
        // The diffed buckets are exactly the tail's, so quantiles land in
        // the same bucket; only the max-clamp differs (the window's max is
        // bucket-bounded, the fresh histogram's is exact), so the window
        // may over-report by at most one sub-bucket.
        for p in [0.5, 0.9, 0.99] {
            let (w, e) = (window.quantile(p), expect.quantile(p));
            prop_assert!(w >= e, "p={p}: window {w} < fresh {e}");
            prop_assert!(w <= e + e / 16 + 1, "p={p}: window {w} >> fresh {e}");
        }
    }
}

#[test]
fn concurrent_records_sum_exactly() {
    // 8 threads × 20_000 records with known per-thread totals: the merged
    // counters must equal the serial sum to the nanosecond — relaxed
    // atomics may reorder, but they may not lose increments.
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct magnitudes per thread exercise many buckets.
                    h.record_ns(t * 1_000_000 + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    let expect_sum: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * 1_000_000 + i).sum::<u64>())
        .sum();
    assert_eq!(snap.sum_ns(), expect_sum);
    assert_eq!(snap.max_ns(), (THREADS - 1) * 1_000_000 + PER_THREAD - 1);
    assert_eq!(snap.min_ns(), 0);
    // Bucket totals account for every record.
    let bucket_total: u64 = snap.nonzero_buckets().map(|(_, _, n)| n).sum();
    assert_eq!(bucket_total, THREADS * PER_THREAD);
}

#[test]
fn concurrent_merge_and_record_interleave_safely() {
    // A loom-style smoke (coarse, not exhaustive): one thread records while
    // another repeatedly merges into an accumulator; nothing is lost from
    // the source histogram, and the accumulator only ever grows.
    let src = Histogram::new();
    let acc = Histogram::new();
    std::thread::scope(|s| {
        let src_ref = &src;
        let acc_ref = &acc;
        s.spawn(move || {
            for i in 0..50_000u64 {
                src_ref.record_ns(i % 4096);
            }
        });
        s.spawn(move || {
            let mut last = 0u64;
            for _ in 0..50 {
                acc_ref.merge(src_ref);
                let now = acc_ref.count();
                assert!(now >= last, "merge went backwards: {last} -> {now}");
                last = now;
            }
        });
    });
    assert_eq!(src.snapshot().count(), 50_000);
}

#[test]
fn snapshot_equality_drives_window_reuse() {
    // `since` of identical snapshots is empty — the property the windowed
    // metrics reporter relies on between idle polls.
    let h = hist_of(&[5, 10, 20]);
    let a = h.snapshot();
    let b = h.snapshot();
    assert_eq!(a, b);
    let diff = b.since(&a);
    assert_eq!(diff.count(), 0);
    assert_eq!(diff.sum_ns(), 0);
    assert_eq!(diff.quantile(0.99), 0);
}

fn hist_of_snapshot(values: &[u64]) -> HistogramSnapshot {
    hist_of(values).snapshot()
}

#[test]
fn snapshot_merge_matches_histogram_merge() {
    let a = [1u64, 50, 900, 70_000];
    let b = [3u64, 3, 1_000_000];
    let h = hist_of(&a);
    h.merge(&hist_of(&b));
    let mut s = hist_of_snapshot(&a);
    s.merge(&hist_of_snapshot(&b));
    assert_eq!(h.snapshot(), s);
}

//! Monetary cost of a run and the speed/cost comparison of Table 1.
//!
//! The paper prices every system the same way: "(price per node per hr) ×
//! (#nodes) × (execution time)".  CuMF's headline claim — 6–10× as fast and
//! 33–100× as cost-efficient as the distributed CPU systems — follows
//! directly from that formula once per-iteration times are known.

/// Cost in dollars of running `n_nodes` nodes for `seconds`.
pub fn cost_of_run(price_per_node_hour: f64, n_nodes: usize, seconds: f64) -> f64 {
    price_per_node_hour * n_nodes as f64 * (seconds / 3600.0)
}

/// One comparison row of Table 1: a baseline system versus cuMF on the same
/// workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CostComparison {
    /// Baseline name (e.g. "NOMAD", "SparkALS", "Factorbird").
    pub baseline_name: String,
    /// Baseline node type name.
    pub baseline_node: String,
    /// Number of baseline nodes.
    pub baseline_nodes: usize,
    /// Baseline price per node per hour, dollars.
    pub baseline_price_per_hour: f64,
    /// Baseline time for the workload, seconds.
    pub baseline_seconds: f64,
    /// cuMF price per hour for its single machine, dollars.
    pub cumf_price_per_hour: f64,
    /// cuMF time for the same workload, seconds.
    pub cumf_seconds: f64,
}

impl CostComparison {
    /// How many times faster cuMF is ("cuMF speed" column of Table 1).
    pub fn speedup(&self) -> f64 {
        self.baseline_seconds / self.cumf_seconds
    }

    /// Baseline cost of the workload in dollars.
    pub fn baseline_cost(&self) -> f64 {
        cost_of_run(
            self.baseline_price_per_hour,
            self.baseline_nodes,
            self.baseline_seconds,
        )
    }

    /// cuMF cost of the workload in dollars.
    pub fn cumf_cost(&self) -> f64 {
        cost_of_run(self.cumf_price_per_hour, 1, self.cumf_seconds)
    }

    /// cuMF's cost as a fraction of the baseline's ("cuMF cost" column of
    /// Table 1, e.g. 0.03 = 3 %).
    pub fn cost_fraction(&self) -> f64 {
        self.cumf_cost() / self.baseline_cost()
    }

    /// Cost-efficiency multiple (the paper's "33–100× as cost-efficient").
    pub fn cost_efficiency(&self) -> f64 {
        1.0 / self.cost_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_of_run_is_price_times_nodes_times_hours() {
        assert!((cost_of_run(0.53, 50, 3600.0) - 26.5).abs() < 1e-9);
        assert!((cost_of_run(2.44, 1, 1800.0) - 1.22).abs() < 1e-9);
        assert_eq!(cost_of_run(1.0, 0, 3600.0), 0.0);
    }

    #[test]
    fn table1_shape_cumf_vs_sparkals() {
        // Paper's Table 1 row: SparkALS on 50×m3.2xlarge, cuMF 10× as fast,
        // ~1 % of the cost.  Using the published per-iteration times
        // (240 s vs 24 s), the formula reproduces exactly that row.
        let row = CostComparison {
            baseline_name: "SparkALS".into(),
            baseline_node: "m3.2xlarge".into(),
            baseline_nodes: 50,
            baseline_price_per_hour: 0.53,
            baseline_seconds: 240.0,
            cumf_price_per_hour: 2.44,
            cumf_seconds: 24.0,
        };
        assert!((row.speedup() - 10.0).abs() < 1e-9);
        let frac = row.cost_fraction();
        assert!(frac > 0.005 && frac < 0.02, "cost fraction {frac}");
        assert!(row.cost_efficiency() > 50.0);
    }

    #[test]
    fn table1_shape_cumf_vs_factorbird() {
        // Factorbird: 563 s vs 92 s → ~6× speed, ~2 % cost.
        let row = CostComparison {
            baseline_name: "Factorbird".into(),
            baseline_node: "c3.2xlarge".into(),
            baseline_nodes: 50,
            baseline_price_per_hour: 0.42,
            baseline_seconds: 563.0,
            cumf_price_per_hour: 2.44,
            cumf_seconds: 92.0,
        };
        assert!(row.speedup() > 5.0 && row.speedup() < 7.0);
        let frac = row.cost_fraction();
        assert!(frac > 0.01 && frac < 0.04, "cost fraction {frac}");
    }

    #[test]
    fn cheaper_baseline_hardware_reduces_the_advantage() {
        let expensive = CostComparison {
            baseline_name: "X".into(),
            baseline_node: "n".into(),
            baseline_nodes: 50,
            baseline_price_per_hour: 0.53,
            baseline_seconds: 240.0,
            cumf_price_per_hour: 2.44,
            cumf_seconds: 24.0,
        };
        let cheap = CostComparison {
            baseline_price_per_hour: 0.10,
            ..expensive.clone()
        };
        assert!(cheap.cost_efficiency() < expensive.cost_efficiency());
    }
}

//! GPU device specifications.
//!
//! The presets correspond to the hardware the paper evaluates on:
//!
//! * **Titan X** (Maxwell): 24 SMs × 128 cores = 3072 CUDA cores, ~1.0 GHz,
//!   256 KB register file and 96 KB shared memory per SM, 12 GB GDDR5 at
//!   336 GB/s (§5.1 of the paper).
//! * **GK210** (one half of a Tesla K80): 13 SMX × 192 cores = 2496 cores,
//!   0.875 GHz boost, 512 KB register file and 112 KB shared memory per SMX,
//!   12 GB at 240 GB/s (§5.5 of the paper).

use crate::GIB;

/// Kinds of programmable GPU memory, mirroring Table 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Large, high-latency, application-scoped DRAM.
    Global,
    /// Medium-size read-only cache with spatial-locality benefit.
    Texture,
    /// Small, low-latency, per-thread-block scratchpad.
    Shared,
    /// Per-thread registers: lowest latency, not dynamically indexable.
    Register,
}

/// One row of the paper's Table 4 ("Programmable GPU memory").
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryTableRow {
    /// Which memory this row describes.
    pub kind: MemoryKind,
    /// Human-readable size class ("large", "medium", "small").
    pub size: &'static str,
    /// Human-readable latency class.
    pub latency: &'static str,
    /// Scope of the memory ("application", "thread block", "thread").
    pub scope: &'static str,
}

/// Specification of a single GPU device for the performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "Titan X".
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Register file per SM in KiB (the paper stresses this is larger than
    /// shared memory: 256 KB vs 96 KB on Maxwell).
    pub register_file_per_sm_kib: u32,
    /// Shared memory per SM in KiB.
    pub shared_mem_per_sm_kib: u32,
    /// Maximum shared memory a single thread block may allocate, in KiB.
    pub shared_mem_per_block_kib: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_registers_per_thread: u32,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Global memory bandwidth in GB/s.
    pub global_bw_gbs: f64,
    /// Effective bandwidth of texture-cache hits in GB/s (reads that miss
    /// fall back to global bandwidth).
    pub texture_bw_gbs: f64,
    /// Aggregate shared-memory bandwidth in GB/s.
    pub shared_bw_gbs: f64,
    /// PCIe link bandwidth to the host in GB/s (per direction).
    pub pcie_gbs: f64,
}

impl DeviceSpec {
    /// NVIDIA GeForce GTX Titan X (Maxwell), the card used in §5.2–5.4.
    pub fn titan_x() -> Self {
        Self {
            name: "Titan X".to_string(),
            num_sms: 24,
            cores_per_sm: 128,
            clock_ghz: 1.0,
            register_file_per_sm_kib: 256,
            shared_mem_per_sm_kib: 96,
            shared_mem_per_block_kib: 48,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            max_registers_per_thread: 255,
            global_mem_bytes: 12 * GIB,
            global_bw_gbs: 336.0,
            texture_bw_gbs: 650.0,
            shared_bw_gbs: 2000.0,
            pcie_gbs: 16.0,
        }
    }

    /// One GK210 die (half of a Tesla K80), the card used in §5.5.
    pub fn gk210() -> Self {
        Self {
            name: "GK210 (K80 half)".to_string(),
            num_sms: 13,
            cores_per_sm: 192,
            clock_ghz: 0.875,
            register_file_per_sm_kib: 512,
            shared_mem_per_sm_kib: 112,
            shared_mem_per_block_kib: 48,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 16,
            max_registers_per_thread: 255,
            global_mem_bytes: 12 * GIB,
            global_bw_gbs: 240.0,
            texture_bw_gbs: 480.0,
            shared_bw_gbs: 1500.0,
            pcie_gbs: 16.0,
        }
    }

    /// Peak single-precision throughput in GFLOP/s (2 FLOPs per FMA per core
    /// per cycle).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.num_sms as f64 * self.cores_per_sm as f64 * self.clock_ghz
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> u32 {
        self.num_sms * self.cores_per_sm
    }

    /// Total register file on the device in bytes.
    pub fn total_register_file_bytes(&self) -> u64 {
        self.num_sms as u64 * self.register_file_per_sm_kib as u64 * 1024
    }

    /// How many single-precision floats fit in global memory (the paper's
    /// "each device would only be able to load 3 billion single precision
    /// floats" for 12 GB).
    pub fn global_mem_f32_capacity(&self) -> u64 {
        self.global_mem_bytes / crate::F32_BYTES
    }

    /// The paper's Table 4: characteristics of the programmable memories.
    pub fn memory_table() -> Vec<MemoryTableRow> {
        vec![
            MemoryTableRow {
                kind: MemoryKind::Global,
                size: "large",
                latency: "high",
                scope: "application",
            },
            MemoryTableRow {
                kind: MemoryKind::Texture,
                size: "medium",
                latency: "medium",
                scope: "application, read-only",
            },
            MemoryTableRow {
                kind: MemoryKind::Shared,
                size: "small",
                latency: "low",
                scope: "thread block",
            },
            MemoryTableRow {
                kind: MemoryKind::Register,
                size: "small",
                latency: "lowest",
                scope: "thread; not indexable",
            },
        ]
    }

    /// Machine-balance in FLOPs per byte of global traffic — kernels below
    /// this arithmetic intensity are memory bound (the paper's premise that
    /// sparse MF is memory bound, §1).
    pub fn machine_balance(&self) -> f64 {
        self.peak_gflops() / self.global_bw_gbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_paper_headline_numbers() {
        let d = DeviceSpec::titan_x();
        assert_eq!(d.total_cores(), 3072);
        assert_eq!(d.global_mem_bytes, 12 * GIB);
        // ~6.1 TFLOP/s single precision.
        assert!((d.peak_gflops() - 6144.0).abs() < 1.0);
        // 12 GB / 4 B = 3.2e9 floats ≈ "3 billion floats" in the paper.
        assert!(d.global_mem_f32_capacity() > 3_000_000_000);
        assert!(d.global_mem_f32_capacity() < 3_500_000_000);
    }

    #[test]
    fn gk210_has_fewer_cores_than_titan_x() {
        let k = DeviceSpec::gk210();
        let t = DeviceSpec::titan_x();
        assert_eq!(k.total_cores(), 2496);
        assert!(k.total_cores() < t.total_cores());
        assert!(k.peak_gflops() < t.peak_gflops());
    }

    #[test]
    fn register_file_larger_than_shared_memory() {
        // §3.4: "the GPU register file ... is larger ... than its shared memory".
        for d in [DeviceSpec::titan_x(), DeviceSpec::gk210()] {
            assert!(d.register_file_per_sm_kib > d.shared_mem_per_sm_kib);
        }
    }

    #[test]
    fn memory_table_matches_table4_ordering() {
        let t = DeviceSpec::memory_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].kind, MemoryKind::Global);
        assert_eq!(t[3].kind, MemoryKind::Register);
        assert_eq!(t[3].latency, "lowest");
    }

    #[test]
    fn machine_balance_is_compute_rich() {
        // A modern GPU has far more FLOPs than bytes: balance >> 1.
        let d = DeviceSpec::titan_x();
        assert!(d.machine_balance() > 10.0);
    }
}

//! Serving-path benchmark: naive per-request scoring (score every item,
//! sort the whole catalog — what `recommend()` did before the serving
//! subsystem) versus the batched blocked top-k scorer of `cumf-serve`,
//! across catalog sizes up to the ≥100k-item regime the paper's deployments
//! imply.  Throughput is reported in requests/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_serve::{FactorSnapshot, Query, ScoreKind, TopKIndex};
use std::hint::black_box;
use std::sync::Arc;

const F: usize = 32;
const N_USERS: usize = 1_000;
const REQUESTS: usize = 64;
const K: usize = 10;

fn snapshot(n_items: usize) -> Arc<FactorSnapshot> {
    Arc::new(FactorSnapshot::from_factors(
        FactorMatrix::random(N_USERS, F, 0.5, 11),
        FactorMatrix::random(n_items, F, 0.5, 12),
    ))
}

fn queries() -> Vec<Query> {
    (0..REQUESTS as u32)
        .map(|i| Query::new((i * 37) % N_USERS as u32, K))
        .collect()
}

/// The pre-serving path: score the full catalog into a vector and sort it,
/// once per request.
fn naive_recommend(snap: &FactorSnapshot, user: u32, k: usize) -> Vec<(u32, f32)> {
    let theta = snap.item_factors();
    let x_u = snap.user_vector(user).expect("user in range");
    let mut scored: Vec<(u32, f32)> = (0..theta.len() as u32)
        .map(|v| (v, dot(x_u, theta.vector(v as usize))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_topk");
    group.sample_size(10);
    for &n_items in &[10_000usize, 100_000, 250_000] {
        let snap = snapshot(n_items);
        let qs = queries();
        group.throughput(Throughput::Elements(REQUESTS as u64));
        group.bench_with_input(
            BenchmarkId::new("naive_per_request", n_items),
            &n_items,
            |b, _| {
                b.iter(|| {
                    for q in &qs {
                        black_box(naive_recommend(&snap, q.user, q.k));
                    }
                });
            },
        );
        let index = TopKIndex::new(Arc::clone(&snap), 512, ScoreKind::Dot);
        group.bench_with_input(
            BenchmarkId::new("batched_blocked", n_items),
            &n_items,
            |b, _| {
                b.iter(|| black_box(index.query_batch(&qs)));
            },
        );
    }
    group.finish();
}

criterion_group!(serving, bench_serving);
criterion_main!(serving);

//! Batched, item-sharded top-k scoring against one snapshot.
//!
//! The training-time insight of the paper — batch many independent small
//! problems into one regular, blocked kernel — applied at serving time: a
//! micro-batch of user requests is scored as blocked matrix-vector products
//! ([`cumf_linalg::batch_score_block`]), so each item block is streamed from
//! memory once per *tile of users* instead of once per request.  Each user
//! folds block scores into a bounded heap ([`cumf_linalg::TopK`]), never
//! materializing the full score vector.
//!
//! Two levers scale the scorer past one core per batch:
//!
//! * **User tiles** — queries are split into `USER_TILE`-sized tiles that
//!   score independently.
//! * **Item shards** — the catalog's item blocks (spanning every
//!   [`crate::itemstore::ItemStore`] segment, base and appended tails
//!   alike) are partitioned into `shards` contiguous runs; each
//!   `(tile, shard)` pair scores independently into a per-shard bounded
//!   heap and the partial top-k lists are merged with
//!   [`cumf_linalg::merge_top_k`].  The heap tie-break is a total order, so
//!   results are **bit-identical for every shard count** — sharding is purely
//!   a parallelism knob.
//!
//! Dot-product scoring also short-circuits whole low-scoring blocks: once a
//! tile's heaps are full, a block whose Cauchy–Schwarz bound
//! (`‖x_u‖ · max‖θ_v‖ ·` [`cumf_linalg::topk::NORM_BOUND_SLACK`]) cannot
//! beat any heap threshold is skipped without touching its factors.  Blocks
//! never straddle a segment boundary (segments are block-aligned on their
//! own), each segment prunes against its own block-max table — which a
//! norm-descending layout makes fire systematically — and the
//! skipped/scored decisions are counted in a [`PruneStats`]
//! ([`TopKIndex::query_batch_stats`]).

use crate::snapshot::FactorSnapshot;
use crate::sync::Arc;
use cumf_linalg::topk::NORM_BOUND_SLACK;
use cumf_linalg::{
    batch_score_rows_quant, batch_score_segment, block_max_norms, merge_top_k, suffix_max_norms,
    ApproxPolicy, PruneStats, TopK,
};
use rayon::prelude::*;
use std::collections::HashSet;
use std::ops::Range;
use std::time::Instant;

/// Default candidate over-fetch multiplier for quantized scans: the blocked
/// scan keeps `ceil(k · rerank_factor)` candidates per query so the exact
/// rerank can repair orderings the quantization error perturbed near the
/// `k`-th score.  Full-precision scans ignore it entirely.
pub const DEFAULT_RERANK_FACTOR: f32 = 2.0;

/// One shard's partial output for a user tile: per-query top-k lists plus
/// the shard's pruning counters.
type TilePartials = (Vec<Vec<(u32, f32)>>, PruneStats);

/// How a candidate item is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKind {
    /// Raw inner product `x_u · θ_v` (predicted rating).
    #[default]
    Dot,
    /// Inner product divided by `‖θ_v‖` — uses the snapshot's precomputed
    /// item norms to stop high-norm (popular) items from dominating every
    /// list.  The user-norm factor is constant per request and cannot
    /// change the ranking, so it is skipped.  Zero-norm (cold, never
    /// trained) items score 0.0 rather than being dropped, so a request
    /// never comes back shorter than `k` just because the catalog has cold
    /// entries.
    Cosine,
}

/// One top-k retrieval request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// User to recommend for.
    pub user: u32,
    /// Number of items wanted.
    pub k: usize,
    /// Items to exclude (typically the user's already-rated items).
    pub exclude: Vec<u32>,
}

impl Query {
    /// A query with no exclusions.
    pub fn new(user: u32, k: usize) -> Self {
        Self {
            user,
            k,
            exclude: Vec::new(),
        }
    }
}

/// Number of users scored together against each item block.  Eight user
/// vectors of `f ≤ 128` floats fit comfortably in L1 next to the item block.
const USER_TILE: usize = 8;

/// Per-tile scoring state computed once and shared by every item shard the
/// tile is scored against: the gathered contiguous user operand, validity
/// flags, user norms (for block pruning), and the exclusion hash sets —
/// hashing a heavy exclusion list per shard would erode the parallelism
/// sharding buys.
struct TileCtx {
    users: Vec<f32>,
    valid: Vec<bool>,
    user_norms: Vec<f32>,
    excluded: Vec<HashSet<u32>>,
}

impl TileCtx {
    fn new(tile: &[Query], snap: &FactorSnapshot) -> Self {
        let f = snap.rank();
        // Gather the tile's user vectors into one contiguous buffer so the
        // block scorer sees a dense (tile × f) operand.  Out-of-range users
        // keep a zero vector and are marked invalid.
        let mut users = vec![0.0f32; tile.len() * f];
        let mut valid = vec![false; tile.len()];
        for (i, q) in tile.iter().enumerate() {
            if let Some(x_u) = snap.user_vector(q.user) {
                users[i * f..(i + 1) * f].copy_from_slice(x_u);
                valid[i] = true;
            }
        }
        let user_norms = users
            .chunks_exact(f)
            .map(|x| cumf_linalg::blas::norm_sq(x).sqrt())
            .collect();
        let excluded = tile
            .iter()
            .map(|q| q.exclude.iter().copied().collect())
            .collect();
        Self {
            users,
            valid,
            user_norms,
            excluded,
        }
    }
}

/// One item segment's blocking as resolved by a [`TopKIndex`]: the index's
/// `item_block` clamped to the segment, a matching block-max table (reusing
/// the segment's precomputed table when the granularity matches), and the
/// segment's position in the global block numbering the shard partition
/// runs over.
#[derive(Debug, Clone)]
struct IndexSegment {
    /// Index into the snapshot's `ItemStore::segments()`.
    seg: usize,
    /// Items per block within this segment.
    item_block: usize,
    /// Block maxima of the segment's stored-order norms at `item_block`
    /// granularity.
    block_max: Vec<f32>,
    /// Pruning bound per block: `block_max` widened by the segment's
    /// per-block quantization error bound (`block_max` itself on exact
    /// segments).  For a quantized segment `block_max` describes the
    /// **decoded** rows while the exact row may be up to the codec's error
    /// bound longer, so Cauchy–Schwarz pruning against exact scores must
    /// compare `‖x_u‖ · (max‖dec(θ_v)‖ + err_b)` — folding the error into
    /// the bound keeps every skip admissible.
    bound_max: Vec<f32>,
    /// Running maxima of `bound_max` from each block to the segment's end —
    /// the approximate stop rule compares against this so terminating a
    /// segment scan is safe for any stored order (in a norm-descending
    /// segment it equals `bound_max`).
    bound_suffix: Vec<f32>,
    /// Global index of this segment's first block.
    first_block: usize,
}

/// Batched blocked top-k scorer over one immutable snapshot.
///
/// All queries of a [`TopKIndex::query_batch`] call are answered from the
/// same snapshot generation — the index holds its own `Arc`, so a
/// concurrent hot-swap cannot tear a batch.
#[derive(Debug, Clone)]
pub struct TopKIndex {
    snapshot: Arc<FactorSnapshot>,
    score: ScoreKind,
    shards: usize,
    /// Early-termination policy; `None` keeps the scan exact.
    approx: Option<ApproxPolicy>,
    /// Candidate over-fetch multiplier for the exact rerank (≥ 1.0; only
    /// consulted when `quantized`).
    rerank_factor: f32,
    /// Whether any store segment carries an encoded slab — the switch that
    /// turns on over-fetch + exact rerank.  All-f32 stores take the exact
    /// path untouched (bit-identical to the pre-quantization scorer).
    quantized: bool,
    /// Per-segment blocking, base segment first, in global block order.
    segs: Vec<IndexSegment>,
    /// Total blocks across all segments (what shards partition).
    n_blocks: usize,
    /// Largest per-segment block size (scratch-buffer sizing).
    max_block: usize,
}

impl TopKIndex {
    /// Creates an unsharded index over `snapshot` scoring `item_block`
    /// items per block.
    pub fn new(snapshot: Arc<FactorSnapshot>, item_block: usize, score: ScoreKind) -> Self {
        Self::with_shards(snapshot, item_block, score, 1)
    }

    /// Creates an index that partitions the catalog's item blocks — across
    /// every store segment — into `shards` contiguous runs scored in
    /// parallel (clamped to at least 1 and at most one shard per block).
    /// Results are bit-identical for every shard count.
    pub fn with_shards(
        snapshot: Arc<FactorSnapshot>,
        item_block: usize,
        score: ScoreKind,
        shards: usize,
    ) -> Self {
        Self::with_approx(snapshot, item_block, score, shards, None)
    }

    /// [`TopKIndex::with_shards`] with an optional early-termination policy.
    ///
    /// With `Some(policy)` the scorer may stop scanning a segment once the
    /// discounted Cauchy–Schwarz bound says nothing left in it can improve
    /// any tile heap by more than the policy's epsilon slack, and may cap
    /// scored blocks at `policy.max_blocks` per `(tile, shard)` scan.  Both
    /// rules only engage once every heap in the tile holds its `k` items, so
    /// result lists never come back short.  A policy with `epsilon = 0` and
    /// no budget is bit-identical to the exact index.  Epsilon termination
    /// applies to [`ScoreKind::Dot`] only (a norm-divided score has no
    /// per-block bound); the block budget applies to both score kinds.
    pub fn with_approx(
        snapshot: Arc<FactorSnapshot>,
        item_block: usize,
        score: ScoreKind,
        shards: usize,
        approx: Option<ApproxPolicy>,
    ) -> Self {
        Self::with_rerank(
            snapshot,
            item_block,
            score,
            shards,
            approx,
            DEFAULT_RERANK_FACTOR,
        )
    }

    /// [`TopKIndex::with_approx`] with an explicit rerank over-fetch factor.
    ///
    /// When any store segment is quantized the scan keeps
    /// `ceil(k · rerank_factor)` candidates per query and a final pass
    /// rescores them against the retained exact f32 rows, truncating back to
    /// `k` under the same (score desc, id asc) total order.  `rerank_factor`
    /// must be ≥ 1.0; it is ignored on all-f32 stores.
    pub fn with_rerank(
        snapshot: Arc<FactorSnapshot>,
        item_block: usize,
        score: ScoreKind,
        shards: usize,
        approx: Option<ApproxPolicy>,
        rerank_factor: f32,
    ) -> Self {
        assert!(item_block > 0, "item block must be positive");
        assert!(
            rerank_factor.is_finite() && rerank_factor >= 1.0,
            "rerank factor must be a finite multiplier >= 1.0, got {rerank_factor}"
        );
        if let Some(p) = &approx {
            p.validate();
        }
        // Resolve the blocking per segment.  The default blocking (the
        // common case — `ServeConfig` builds an index per micro-batch)
        // reuses each segment's precomputed maxima instead of rescanning
        // the norms every batch.
        let mut segs = Vec::with_capacity(snapshot.items().segment_count());
        let mut n_blocks = 0usize;
        let mut max_block = 1usize;
        let mut quantized = false;
        for (i, seg) in snapshot.items().segments().iter().enumerate() {
            let block = item_block.min(seg.len().max(1));
            let block_max = if block == seg.default_block() {
                seg.block_max().to_vec()
            } else {
                block_max_norms(seg.norms(), block)
            };
            let first_block = n_blocks;
            n_blocks += block_max.len();
            max_block = max_block.max(block);
            // Widen the pruning bound by the codec's per-block error so a
            // skip stays admissible against exact scores (see `bound_max`).
            let bound_max = match seg.encoded() {
                Some(slab) => {
                    quantized = true;
                    let n = seg.len();
                    block_max
                        .iter()
                        .enumerate()
                        .map(|(b, &m)| {
                            let start = b * block;
                            let end = (start + block).min(n);
                            m + slab.err_bound(start, end, m)
                        })
                        .collect()
                }
                None => block_max.clone(),
            };
            let bound_suffix = suffix_max_norms(&bound_max);
            segs.push(IndexSegment {
                seg: i,
                item_block: block,
                block_max,
                bound_max,
                bound_suffix,
                first_block,
            });
        }
        Self {
            snapshot,
            score,
            shards: shards.max(1),
            approx,
            rerank_factor,
            quantized,
            segs,
            n_blocks,
            max_block,
        }
    }

    /// The snapshot this index serves from.
    pub fn snapshot(&self) -> &Arc<FactorSnapshot> {
        &self.snapshot
    }

    /// Number of item shards the catalog is partitioned into (≥ 1; the
    /// effective count is further capped by the number of item blocks).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The early-termination policy, if this index scans approximately.
    pub fn approx(&self) -> Option<&ApproxPolicy> {
        self.approx.as_ref()
    }

    /// Contiguous block ranges, one per non-empty shard.
    fn shard_ranges(&self) -> Vec<Range<usize>> {
        let n_blocks = self.n_blocks;
        let shards = self.shards.min(n_blocks.max(1));
        let base = n_blocks / shards;
        let rem = n_blocks % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            if len == 0 {
                continue;
            }
            ranges.push(start..start + len);
            start += len;
        }
        if ranges.is_empty() {
            ranges.push(0..0);
        }
        ranges
    }

    /// Scores a micro-batch of queries, returning one ranked
    /// `(item, score)` list per query, in query order.  `(tile, shard)`
    /// pairs are scored in parallel; within each pair every item block is
    /// scored for all tile users with one blocked kernel call, and each
    /// query's per-shard partial top-k lists are merged into the final
    /// ranking.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Vec<(u32, f32)>> {
        self.query_batch_stats(queries).0
    }

    /// [`TopKIndex::query_batch`] plus the batch's aggregated block-pruning
    /// counters — the observable half of the norm-ordered layout's value
    /// (more blocks skipped, same results).
    pub fn query_batch_stats(&self, queries: &[Query]) -> (Vec<Vec<(u32, f32)>>, PruneStats) {
        let ranges = self.shard_ranges();
        if ranges.len() == 1 {
            // lint-ok: serve-unwrap guarded by the ranges.len() == 1 branch
            let range = ranges.into_iter().next().expect("one shard");
            let tiles: Vec<TilePartials> = queries
                .par_chunks(USER_TILE)
                .map(|tile| {
                    self.score_tile(tile, &TileCtx::new(tile, &self.snapshot), range.clone())
                })
                .collect();
            let mut stats = PruneStats::default();
            let mut results = Vec::with_capacity(queries.len());
            for (tile_results, tile_stats) in tiles {
                stats.merge(&tile_stats);
                results.extend(tile_results);
            }
            let results = self.rerank_exact(queries, results, &mut stats);
            return (results, stats);
        }

        let n_shards = ranges.len();
        let n_tiles = queries.len().div_ceil(USER_TILE);
        // The per-tile setup (user gather, norms, exclusion sets) is shared
        // across that tile's shard units — heavy exclusion lists are hashed
        // once per tile, not once per shard.
        let contexts: Vec<TileCtx> = queries
            .par_chunks(USER_TILE)
            .map(|tile| TileCtx::new(tile, &self.snapshot))
            .collect();
        let units: Vec<(usize, usize)> = (0..n_tiles)
            .flat_map(|t| (0..n_shards).map(move |s| (t, s)))
            .collect();
        let mut partials: Vec<TilePartials> = units
            .par_iter()
            .map(|&(t, s)| {
                let tile = &queries[t * USER_TILE..((t + 1) * USER_TILE).min(queries.len())];
                self.score_tile(tile, &contexts[t], ranges[s].clone())
            })
            .collect();
        let mut stats = PruneStats::default();
        for (_, s) in &partials {
            stats.merge(s);
        }
        let results = queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let (t, i) = (qi / USER_TILE, qi % USER_TILE);
                let parts: Vec<Vec<(u32, f32)>> = (0..n_shards)
                    .map(|s| std::mem::take(&mut partials[t * n_shards + s].0[i]))
                    .collect();
                merge_top_k(&parts, self.k_eff(q.k))
            })
            .collect();
        let results = self.rerank_exact(queries, results, &mut stats);
        (results, stats)
    }

    /// Candidates the blocked scan keeps per query: `k` on an all-f32 store,
    /// `ceil(k · rerank_factor)` when any segment is quantized — the
    /// over-fetch margin the exact rerank draws its replacements from.
    fn k_eff(&self, k: usize) -> usize {
        if self.quantized && k > 0 {
            ((k as f64) * f64::from(self.rerank_factor)).ceil() as usize
        } else {
            k
        }
    }

    /// Exact-f32 rerank over quantized-scan candidates: rescores each
    /// query's `k_eff` survivors against the retained exact rows, re-sorts
    /// under the same (score desc, id asc) total order the heaps use, and
    /// truncates back to `k`.  A no-op (queries pass through untouched) on
    /// an all-f32 store, so the full-precision path stays bit-identical to
    /// the pre-quantization scorer.  Timing and candidate/byte counts fold
    /// into `stats`.
    fn rerank_exact(
        &self,
        queries: &[Query],
        results: Vec<Vec<(u32, f32)>>,
        stats: &mut PruneStats,
    ) -> Vec<Vec<(u32, f32)>> {
        if !self.quantized {
            return results;
        }
        let started = Instant::now();
        let f = self.snapshot.rank();
        let items = self.snapshot.items();
        let mut rerank = PruneStats::default();
        let out: Vec<Vec<(u32, f32)>> = queries
            .iter()
            .zip(results)
            .map(|(q, list)| {
                let Some(x_u) = self.snapshot.user_vector(q.user) else {
                    return list;
                };
                if list.is_empty() {
                    return list;
                }
                rerank.rerank_candidates += list.len() as u64;
                rerank.bytes_scanned += (list.len() * f * std::mem::size_of::<f32>()) as u64;
                let mut rescored: Vec<(u32, f32)> = list
                    .into_iter()
                    .map(|(v, _)| {
                        let row = items.vector(v as usize);
                        let s = cumf_linalg::score_dot(x_u, row);
                        let s = match self.score {
                            ScoreKind::Dot => s,
                            ScoreKind::Cosine => {
                                let n = cumf_linalg::blas::norm_sq(row).sqrt();
                                if n > 0.0 {
                                    s / n
                                } else {
                                    0.0
                                }
                            }
                        };
                        (v, s)
                    })
                    .collect();
                rescored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                rescored.truncate(q.k);
                rescored
            })
            .collect();
        if rerank.rerank_candidates > 0 {
            rerank.rerank_ns = started.elapsed().as_nanos() as u64;
        }
        stats.merge(&rerank);
        out
    }

    /// Scores one user tile against the global block range `blocks` (the
    /// shard-partitioned numbering spanning every store segment), returning
    /// each query's top-k **within that shard** plus the shard's pruning
    /// counters.  Blocks are resolved segment by segment; a block never
    /// straddles a segment boundary.
    fn score_tile(&self, tile: &[Query], ctx: &TileCtx, blocks: Range<usize>) -> TilePartials {
        let snap = &self.snapshot;
        let f = snap.rank();
        let segments = snap.items().segments();
        let TileCtx {
            users,
            valid,
            user_norms,
            excluded,
        } = ctx;

        let mut heaps: Vec<Option<TopK>> = tile
            .iter()
            .zip(valid.iter())
            .map(|(q, &ok)| (ok && q.k > 0).then(|| TopK::new(self.k_eff(q.k))))
            .collect();

        let mut stats = PruneStats::default();
        let mut scores = vec![0.0f32; tile.len() * self.max_block];
        let mut dequant = Vec::new();
        let mut scored_blocks = 0usize;
        let term_slack = self.approx.as_ref().map(ApproxPolicy::termination_slack);
        let block_budget = self.approx.as_ref().map_or(0, |p| p.max_blocks);
        for is in &self.segs {
            let lo = blocks.start.max(is.first_block);
            let hi = blocks.end.min(is.first_block + is.block_max.len());
            if lo >= hi {
                continue;
            }
            let seg = &segments[is.seg];
            let view = seg.view_with(is.item_block, &is.block_max);
            let n = seg.len();
            for b in (lo - is.first_block)..(hi - is.first_block) {
                let start = b * is.item_block;
                let end = (start + is.item_block).min(n);
                // Dot scoring admits a per-block Cauchy–Schwarz bound; skip
                // the whole block when no user's heap could accept anything
                // in it.  (Cosine's bound is ‖x_u‖ for every block —
                // nothing to prune.)
                if self.score == ScoreKind::Dot {
                    // Approximate mode first asks the stronger question: can
                    // anything in the *rest of the segment* beat any heap by
                    // more than the epsilon slack?  `suffix_max` bounds every
                    // remaining block, so a "no" ends the segment scan — in a
                    // norm-descending segment that fires as soon as the first
                    // prunable block appears.
                    if let Some(slack) = term_slack {
                        let done = heaps.iter().enumerate().all(|(i, h)| match h {
                            Some(h) => h
                                .threshold()
                                .is_some_and(|t| user_norms[i] * is.bound_suffix[b] * slack < t),
                            None => true,
                        });
                        if done {
                            stats.blocks_terminated += (hi - is.first_block - b) as u64;
                            break;
                        }
                    }
                    let bound = is.bound_max[b] * NORM_BOUND_SLACK;
                    let prunable = heaps.iter().enumerate().all(|(i, h)| match h {
                        Some(h) => h.threshold().is_some_and(|t| user_norms[i] * bound < t),
                        None => true,
                    });
                    if prunable {
                        stats.blocks_pruned += 1;
                        continue;
                    }
                }
                // The block budget (both score kinds) skips further blocks
                // once the tile has scored its allowance — but only after
                // every heap holds its k items, so a k ≥ catalog request is
                // never cut short.
                if block_budget > 0
                    && scored_blocks >= block_budget
                    && heaps
                        .iter()
                        .all(|h| h.as_ref().is_none_or(|h| h.threshold().is_some()))
                {
                    stats.blocks_terminated += 1;
                    continue;
                }
                stats.blocks_scored += 1;
                scored_blocks += 1;
                let nb = end - start;
                let out = &mut scores[..tile.len() * nb];
                match view.encoded {
                    Some(slab) => {
                        stats.bytes_scanned += slab.scan_bytes(start, end);
                        batch_score_rows_quant(
                            users,
                            tile.len(),
                            slab,
                            start,
                            end,
                            f,
                            &mut dequant,
                            out,
                        );
                    }
                    None => {
                        stats.bytes_scanned += (nb * f * std::mem::size_of::<f32>()) as u64;
                        batch_score_segment(users, tile.len(), &view, start, end, f, out);
                    }
                }
                for (i, heap) in heaps.iter_mut().enumerate() {
                    let Some(heap) = heap else { continue };
                    let row = &out[i * nb..(i + 1) * nb];
                    for (j, &s) in row.iter().enumerate() {
                        let item = view.global_id(start + j);
                        if excluded[i].contains(&item) {
                            continue;
                        }
                        let s = match self.score {
                            ScoreKind::Dot => s,
                            ScoreKind::Cosine => {
                                let n = view.norms[start + j];
                                if n > 0.0 {
                                    s / n
                                } else {
                                    0.0
                                }
                            }
                        };
                        heap.push(item, s);
                    }
                }
            }
        }

        let results = heaps
            .into_iter()
            .map(|h| h.map(TopK::into_sorted_vec).unwrap_or_default())
            .collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::{FactorMatrix, Precision};

    fn index(seed: u64, n_users: usize, n_items: usize, score: ScoreKind) -> TopKIndex {
        let snap = FactorSnapshot::from_factors(
            FactorMatrix::random(n_users, 8, 1.0, seed),
            FactorMatrix::random(n_items, 8, 1.0, seed + 1),
        );
        TopKIndex::new(Arc::new(snap), 64, score)
    }

    #[test]
    fn batch_matches_single_request_path() {
        let idx = index(7, 30, 500, ScoreKind::Dot);
        let queries: Vec<Query> = (0..30u32)
            .map(|u| Query {
                user: u,
                k: 5,
                exclude: vec![u % 11, u % 23],
            })
            .collect();
        let batched = idx.query_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(batched.iter()) {
            let single = idx.snapshot().recommend_one(q.user, q.k, &q.exclude);
            assert_eq!(got, &single, "user {}", q.user);
        }
    }

    #[test]
    fn exclusions_and_invalid_users_are_handled() {
        let idx = index(9, 10, 100, ScoreKind::Dot);
        let queries = vec![
            Query {
                user: 0,
                k: 3,
                exclude: (0..97).collect(),
            },
            Query::new(9999, 3), // out of range
            Query {
                user: 1,
                k: 0,
                exclude: vec![],
            },
        ];
        let out = idx.query_batch(&queries);
        assert_eq!(out[0].len(), 3);
        assert!(out[0].iter().all(|(v, _)| *v >= 97));
        assert!(out[1].is_empty());
        assert!(out[2].is_empty());
    }

    #[test]
    fn cosine_divides_by_item_norm() {
        // Item 0 has a huge norm; under Dot it wins, under Cosine it ties
        // with the identically-directed item 1.
        let x = FactorMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let theta = FactorMatrix::from_vec(3, 2, vec![10.0, 0.0, 1.0, 0.0, 0.0, 5.0]);
        let snap = Arc::new(FactorSnapshot::from_factors(x, theta));
        let dot = TopKIndex::new(Arc::clone(&snap), 64, ScoreKind::Dot);
        let cos = TopKIndex::new(snap, 64, ScoreKind::Cosine);
        let q = vec![Query::new(0, 2)];
        assert_eq!(dot.query_batch(&q)[0], vec![(0, 10.0), (1, 1.0)]);
        // Cosine: items 0 and 1 both score 1.0; ties prefer small ids.
        assert_eq!(cos.query_batch(&q)[0], vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn cosine_keeps_zero_norm_items_at_score_zero() {
        // A catalog with cold (zero-vector, hence zero-norm) items: both
        // score kinds must still return exactly k results when k ≤ catalog
        // size, and cosine scores the cold items 0.0.
        let x = FactorMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let mut theta = FactorMatrix::zeros(5, 2);
        theta.vector_mut(1).copy_from_slice(&[2.0, 0.0]);
        theta.vector_mut(3).copy_from_slice(&[0.5, 0.0]);
        // Items 0, 2, 4 stay zero vectors (never trained).
        let snap = Arc::new(FactorSnapshot::from_factors(x, theta));
        let q = vec![Query::new(0, 5)];
        let dot = TopKIndex::new(Arc::clone(&snap), 64, ScoreKind::Dot).query_batch(&q);
        let cos = TopKIndex::new(snap, 64, ScoreKind::Cosine).query_batch(&q);
        assert_eq!(
            dot[0].len(),
            cos[0].len(),
            "Dot and Cosine must return the same number of results"
        );
        assert_eq!(cos[0].len(), 5, "cold items must not shrink the result");
        assert_eq!(cos[0][0], (1, 1.0));
        assert_eq!(cos[0][1], (3, 1.0));
        // The cold items trail at exactly 0.0, smallest ids first.
        assert_eq!(&cos[0][2..], &[(0, 0.0), (2, 0.0), (4, 0.0)]);
    }

    #[test]
    fn block_size_is_result_invariant() {
        let snap = Arc::new(FactorSnapshot::from_factors(
            FactorMatrix::random(5, 4, 1.0, 3),
            FactorMatrix::random(777, 4, 1.0, 4),
        ));
        let q: Vec<Query> = (0..5u32).map(|u| Query::new(u, 9)).collect();
        let small = TopKIndex::new(Arc::clone(&snap), 3, ScoreKind::Dot).query_batch(&q);
        let large = TopKIndex::new(snap, 10_000, ScoreKind::Dot).query_batch(&q);
        assert_eq!(small, large);
    }

    #[test]
    fn shard_count_is_result_invariant() {
        for score in [ScoreKind::Dot, ScoreKind::Cosine] {
            let snap = Arc::new(FactorSnapshot::from_factors(
                FactorMatrix::random(20, 6, 1.0, 5),
                FactorMatrix::random(999, 6, 1.0, 6),
            ));
            let queries: Vec<Query> = (0..20u32)
                .map(|u| Query {
                    user: u,
                    k: 7,
                    exclude: vec![u % 13, u % 7],
                })
                .collect();
            let baseline =
                TopKIndex::with_shards(Arc::clone(&snap), 64, score, 1).query_batch(&queries);
            // 999 items in 64-blocks = 16 blocks; 7 shards split unevenly,
            // 100 shards clamp to one per block.
            for shards in [2usize, 3, 7, 16, 100] {
                let sharded = TopKIndex::with_shards(Arc::clone(&snap), 64, score, shards)
                    .query_batch(&queries);
                assert_eq!(sharded, baseline, "score {score:?} shards {shards}");
            }
        }
    }

    /// A skewed-norm catalog (a few heavy items, a long light tail) — the
    /// shape that makes early termination effective under the
    /// norm-descending default layout.
    fn skewed_snapshot(n_users: usize, n_items: usize, seed: u64) -> Arc<FactorSnapshot> {
        let f = 8;
        let base = FactorMatrix::random(n_items, f, 1.0, seed);
        let mut data = base.data().to_vec();
        for v in 0..n_items {
            let h = (v as u32).wrapping_mul(2654435761) % 64;
            let scale = if h == 0 { 4.0 } else { 0.01 + 0.001 * h as f32 };
            for d in 0..f {
                data[v * f + d] *= scale;
            }
        }
        Arc::new(FactorSnapshot::from_factors(
            FactorMatrix::random(n_users, f, 1.0, seed + 1),
            FactorMatrix::from_vec(n_items, f, data),
        ))
    }

    #[test]
    fn approx_index_with_exact_policy_is_bit_identical() {
        let snap = skewed_snapshot(20, 2000, 30);
        let queries: Vec<Query> = (0..20u32)
            .map(|u| Query {
                user: u,
                k: 10,
                exclude: vec![u % 17],
            })
            .collect();
        for shards in [1usize, 3, 8] {
            let exact = TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, shards)
                .query_batch(&queries);
            let approx = TopKIndex::with_approx(
                Arc::clone(&snap),
                64,
                ScoreKind::Dot,
                shards,
                Some(ApproxPolicy::exact()),
            )
            .query_batch(&queries);
            assert_eq!(approx, exact, "shards {shards}");
        }
    }

    #[test]
    fn approx_index_terminates_early_on_skewed_norm_descending_catalog() {
        let snap = skewed_snapshot(16, 8192, 33);
        let queries: Vec<Query> = (0..16u32).map(|u| Query::new(u, 10)).collect();
        let (exact_res, exact_stats) =
            TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 1)
                .query_batch_stats(&queries);
        let (approx_res, approx_stats) = TopKIndex::with_approx(
            Arc::clone(&snap),
            64,
            ScoreKind::Dot,
            1,
            Some(ApproxPolicy::default()),
        )
        .query_batch_stats(&queries);
        assert_eq!(exact_stats.blocks_terminated, 0, "exact never terminates");
        assert!(
            approx_stats.blocks_scored < exact_stats.blocks_scored,
            "default epsilon must scan fewer blocks: approx {} vs exact {}",
            approx_stats.blocks_scored,
            exact_stats.blocks_scored
        );
        assert!(approx_stats.blocks_terminated > 0);
        for (e, a) in exact_res.iter().zip(&approx_res) {
            assert_eq!(a.len(), e.len(), "approximate lists must not shrink");
        }
    }

    #[test]
    fn approx_block_budget_never_shortens_results() {
        let snap = skewed_snapshot(8, 500, 36);
        let budget = ApproxPolicy {
            epsilon: 0.0,
            max_blocks: 1,
            target_recall: 0.0,
        };
        // k ≥ catalog: the heap never fills, the budget never engages —
        // every item comes back, exactly.
        let q = vec![Query::new(0, 1000)];
        let exact =
            TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 1).query_batch(&q);
        let capped = TopKIndex::with_approx(Arc::clone(&snap), 64, ScoreKind::Dot, 1, Some(budget))
            .query_batch(&q);
        assert_eq!(capped, exact);
        assert_eq!(capped[0].len(), 500);
        // Small k: the budget truncates the scan but the list stays full
        // length.
        let q = vec![Query::new(0, 5)];
        let (capped, stats) =
            TopKIndex::with_approx(Arc::clone(&snap), 64, ScoreKind::Dot, 1, Some(budget))
                .query_batch_stats(&q);
        assert_eq!(capped[0].len(), 5);
        assert!(stats.blocks_terminated > 0);
        // The budget also bounds Cosine scans (no epsilon bound there).
        let (cos, cos_stats) =
            TopKIndex::with_approx(Arc::clone(&snap), 64, ScoreKind::Cosine, 1, Some(budget))
                .query_batch_stats(&q);
        assert_eq!(cos[0].len(), 5);
        assert!(cos_stats.blocks_terminated > 0);
    }

    #[test]
    fn approx_zero_norm_user_gets_full_exact_results() {
        // A user whose factor row is all zeros: every score is 0, the
        // threshold pins at 0, and no termination rule may fire — the
        // approximate path must return the same full list as the exact one.
        let f = 6;
        let mut x = FactorMatrix::random(4, f, 1.0, 44);
        x.vector_mut(2).fill(0.0);
        let snap = Arc::new(FactorSnapshot::from_factors(
            x,
            FactorMatrix::random(300, f, 1.0, 45),
        ));
        let q = vec![Query::new(2, 9)];
        let exact =
            TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 1).query_batch(&q);
        let (approx, stats) = TopKIndex::with_approx(
            Arc::clone(&snap),
            64,
            ScoreKind::Dot,
            1,
            Some(ApproxPolicy::with_epsilon(0.5)),
        )
        .query_batch_stats(&q);
        assert_eq!(approx, exact);
        assert_eq!(approx[0].len(), 9, "zero-norm user still gets k items");
        assert_eq!(stats.blocks_terminated, 0, "0 < 0 must never terminate");
    }

    #[test]
    fn reencoding_at_f32_is_bit_identical_and_rerank_free() {
        let snap = skewed_snapshot(20, 3000, 71);
        let re = Arc::new(snap.reencoded(Precision::F32));
        let queries: Vec<Query> = (0..20u32)
            .map(|u| Query {
                user: u,
                k: 10,
                exclude: vec![u % 7],
            })
            .collect();
        let (base, base_stats) = TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 3)
            .query_batch_stats(&queries);
        let (same, stats) =
            TopKIndex::with_shards(re, 64, ScoreKind::Dot, 3).query_batch_stats(&queries);
        assert_eq!(same, base, "F32 re-encode must not change results");
        assert_eq!(stats.rerank_candidates, 0, "no rerank on an all-f32 store");
        assert_eq!(stats.rerank_ns, 0);
        assert_eq!(stats.bytes_scanned, base_stats.bytes_scanned);
        assert!(stats.bytes_scanned > 0, "exact scans are priced too");
    }

    #[test]
    fn f16_scan_with_rerank_reproduces_the_exact_lists() {
        let snap = skewed_snapshot(16, 4096, 72);
        let queries: Vec<Query> = (0..16u32)
            .map(|u| Query {
                user: u,
                k: 10,
                exclude: vec![u % 5],
            })
            .collect();
        let exact =
            TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 1).query_batch(&queries);
        let f16 = Arc::new(snap.reencoded(Precision::F16));
        for shards in [1usize, 3, 8] {
            let (got, stats) = TopKIndex::with_shards(Arc::clone(&f16), 64, ScoreKind::Dot, shards)
                .query_batch_stats(&queries);
            // The rerank rescores with the same 4-lane kernel the exact scan
            // uses, so a complete candidate set reproduces the exact lists
            // bit-for-bit — items and scores.
            assert_eq!(got, exact, "shards {shards}");
            assert!(stats.rerank_candidates > 0, "quantized scans must rerank");
            // Blocked-scan bytes (excluding the rerank's exact-row reads,
            // which scale with k, not catalog size) must roughly halve
            // against an exact scan producing the same candidate count —
            // over-fetch weakens the heap threshold, so the fair baseline
            // is exact retrieval at k_eff, not at k.
            let scan = stats.bytes_scanned - stats.rerank_candidates * (snap.rank() as u64) * 4;
            let wide: Vec<Query> = queries
                .iter()
                .map(|q| Query {
                    user: q.user,
                    k: 2 * q.k,
                    exclude: q.exclude.clone(),
                })
                .collect();
            let (_, exact_wide) =
                TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, shards)
                    .query_batch_stats(&wide);
            let block_bytes = 64 * snap.rank() as u64 * 4;
            assert!(
                scan * 2 <= exact_wide.bytes_scanned + 2 * block_bytes,
                "f16 scan must halve bytes at matched candidate count: {} vs {}",
                scan,
                exact_wide.bytes_scanned
            );
        }
    }

    #[test]
    fn i8_scan_cuts_bytes_and_keeps_recall() {
        let snap = skewed_snapshot(16, 4096, 73);
        let queries: Vec<Query> = (0..16u32).map(|u| Query::new(u, 10)).collect();
        let exact =
            TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 1).query_batch(&queries);
        // Byte baseline at the quantized path's candidate count (see the
        // f16 test for why k_eff, not k, is the fair comparison).
        let wide: Vec<Query> = (0..16u32).map(|u| Query::new(u, 20)).collect();
        let (_, exact_wide) = TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Dot, 1)
            .query_batch_stats(&wide);
        let i8 = Arc::new(snap.reencoded(Precision::I8));
        let (got, stats) =
            TopKIndex::with_shards(i8, 64, ScoreKind::Dot, 1).query_batch_stats(&queries);
        let scan = stats.bytes_scanned - stats.rerank_candidates * (snap.rank() as u64) * 4;
        assert!(
            scan * 2 < exact_wide.bytes_scanned,
            "i8 scan must at least halve bytes moved: {} vs {}",
            scan,
            exact_wide.bytes_scanned
        );
        let mut hits = 0usize;
        let mut total = 0usize;
        for (e, g) in exact.iter().zip(&got) {
            assert_eq!(g.len(), e.len(), "quantized lists must stay full-length");
            let truth: HashSet<u32> = e.iter().map(|&(v, _)| v).collect();
            hits += g.iter().filter(|&&(v, _)| truth.contains(&v)).count();
            total += e.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.99, "i8 post-rerank recall {recall} < 0.99");
    }

    #[test]
    fn quantized_cosine_reranks_with_exact_norms() {
        let snap = skewed_snapshot(8, 1000, 74);
        let queries: Vec<Query> = (0..8u32).map(|u| Query::new(u, 8)).collect();
        let exact = TopKIndex::with_shards(Arc::clone(&snap), 64, ScoreKind::Cosine, 1)
            .query_batch(&queries);
        let f16 = Arc::new(snap.reencoded(Precision::F16));
        let got = TopKIndex::with_shards(f16, 64, ScoreKind::Cosine, 1).query_batch(&queries);
        assert_eq!(got.len(), exact.len());
        for (e, g) in exact.iter().zip(&got) {
            assert_eq!(g.len(), e.len());
            let truth: HashSet<u32> = e.iter().map(|&(v, _)| v).collect();
            let overlap = g.iter().filter(|&&(v, _)| truth.contains(&v)).count();
            assert!(
                overlap + 1 >= e.len(),
                "cosine recall collapsed: {overlap}/{}",
                e.len()
            );
        }
    }

    #[test]
    fn rerank_factor_one_still_returns_full_lists() {
        let snap = Arc::new(skewed_snapshot(4, 300, 75).reencoded(Precision::I8));
        let queries = vec![Query::new(0, 7), Query::new(9999, 3), Query::new(1, 0)];
        let (got, stats) = TopKIndex::with_rerank(snap, 64, ScoreKind::Dot, 1, None, 1.0)
            .query_batch_stats(&queries);
        assert_eq!(got[0].len(), 7);
        assert!(got[1].is_empty(), "invalid user skips the rerank");
        assert!(got[2].is_empty());
        assert_eq!(stats.rerank_candidates, 7, "factor 1.0 reranks exactly k");
    }

    #[test]
    fn sharding_an_empty_or_tiny_catalog_is_safe() {
        let snap = Arc::new(FactorSnapshot::from_factors(
            FactorMatrix::random(3, 4, 1.0, 8),
            FactorMatrix::random(2, 4, 1.0, 9),
        ));
        let q = vec![Query::new(0, 5), Query::new(1, 1)];
        let one = TopKIndex::with_shards(Arc::clone(&snap), 512, ScoreKind::Dot, 1).query_batch(&q);
        let many =
            TopKIndex::with_shards(Arc::clone(&snap), 512, ScoreKind::Dot, 8).query_batch(&q);
        assert_eq!(one, many);
        assert_eq!(one[0].len(), 2, "catalog smaller than k returns all");
    }
}

//! An out-of-core "run" that spills more batches than the prefetcher keeps
//! in flight: 12 vertical partitions of `R` stream through a 2-deep
//! [`Prefetcher`] while the consumer accumulates partial Hermitians, and
//! the result must equal the in-core fused solve.

use cumf_core::als::kernels::{accumulate_partials, finalize_and_solve, partial_hermitians};
use cumf_core::oocore::Prefetcher;
use cumf_data::synth::SyntheticConfig;
use cumf_linalg::FactorMatrix;
use cumf_sparse::vertical_partition;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const N_BATCHES: usize = 12;
const IN_FLIGHT: usize = 2;

#[test]
fn streamed_partials_with_bounded_prefetch_match_in_core_solve() {
    let data = SyntheticConfig {
        m: 200,
        n: 240,
        nnz: 8_000,
        ..Default::default()
    }
    .generate();
    let r = data.to_csr();
    let f = 8;
    let lambda = 0.05;
    let theta = FactorMatrix::random(240, f, 0.5, 3);

    let blocks = vertical_partition(&r, N_BATCHES).unwrap();
    assert!(
        blocks.len() > IN_FLIGHT,
        "scenario must spill: {} batches vs {IN_FLIGHT} in flight",
        blocks.len()
    );

    // Package each partition as the data an out-of-core loader would
    // materialize: the block of R plus the matching slice of Θ.
    let batches: Vec<(cumf_sparse::Csr, FactorMatrix)> = blocks
        .iter()
        .map(|b| {
            let cs = b.col_start as usize;
            let cols = b.n_cols() as usize;
            let mut part = FactorMatrix::zeros(cols, f);
            for c in 0..cols {
                part.vector_mut(c).copy_from_slice(theta.vector(cs + c));
            }
            (b.csr.clone(), part)
        })
        .collect();
    let n_batches = batches.len();

    let produced = Arc::new(AtomicUsize::new(0));
    let produced_in_loader = Arc::clone(&produced);
    let mut prefetcher = Prefetcher::start(n_batches, IN_FLIGHT, move |i| {
        produced_in_loader.fetch_add(1, Ordering::SeqCst);
        // Simulate disk latency so the consumer genuinely overlaps.
        std::thread::sleep(std::time::Duration::from_millis(1));
        batches[i].clone()
    });

    let rows = r.n_rows() as usize;
    let mut acc_a = vec![0.0f32; rows * f * f];
    let mut acc_b = vec![0.0f32; rows * f];
    let mut consumed = 0usize;
    while let Some((block, part)) = prefetcher.next_batch() {
        consumed += 1;
        // The bounded channel is the double buffer: the loader may only run
        // ahead by the channel capacity plus the batch it is producing.
        let ahead = produced.load(Ordering::SeqCst).saturating_sub(consumed);
        assert!(
            ahead <= IN_FLIGHT + 1,
            "prefetcher ran {ahead} batches ahead with in_flight={IN_FLIGHT}"
        );
        let (pa, pb) = partial_hermitians(&block, &part, f);
        accumulate_partials(&mut acc_a, &mut acc_b, &pa, &pb);
    }
    assert_eq!(consumed, n_batches, "every spilled batch must arrive");

    let degrees: Vec<usize> = (0..r.n_rows()).map(|u| r.nnz_row(u)).collect();
    let streamed = finalize_and_solve(&mut acc_a, &mut acc_b, &degrees, lambda, f);

    let in_core = cumf_core::als::kernels::solve_side(&r, &theta, lambda);
    let diff = streamed.max_abs_diff(&in_core);
    assert!(
        diff < 1e-3,
        "streamed out-of-core update diverged from in-core solve: {diff}"
    );
}

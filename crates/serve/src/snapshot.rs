//! Immutable factor snapshots and the atomically hot-swappable store.
//!
//! A [`FactorSnapshot`] freezes the trained factors at one point in time:
//! user factors `X`, item factors `Θ` (row-major, so every `θ_v` is
//! contiguous for the blocked scorer), the precomputed item L2 norms, and a
//! `generation` number.  Snapshots are immutable by construction — the
//! serving path never mutates one, so any number of in-flight batches can
//! share it behind an [`Arc`].
//!
//! [`SnapshotStore`] is the publication point: a retrain (or a checkpoint
//! restore) builds a fresh snapshot and [`SnapshotStore::publish`]es it.
//! The swap is an `Arc` pointer replacement under a briefly-held lock —
//! readers clone the `Arc` and then score against an immutable object, so a
//! publish never stalls in-flight batches and a batch can never observe two
//! generations.

use cumf_core::checkpoint::Checkpoint;
use cumf_core::trainer::MatrixFactorizer;
use cumf_linalg::{block_max_norms, retrieve_top_k_pruned, topk::DEFAULT_ITEM_BLOCK, FactorMatrix};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An immutable, generation-stamped view of trained factors.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorSnapshot {
    generation: u64,
    x: FactorMatrix,
    theta: FactorMatrix,
    item_norms: Vec<f32>,
    /// Per-block maxima of `item_norms` at [`DEFAULT_ITEM_BLOCK`]
    /// granularity (clamped to the catalog size), precomputed once so the
    /// threshold-pruned retrieval paths never rescan the norms per request
    /// or per micro-batch.
    block_max: Vec<f32>,
}

impl FactorSnapshot {
    /// Builds a snapshot from factor matrices (generation 0 until
    /// published).
    ///
    /// # Panics
    /// Panics if the two matrices disagree on the latent rank.
    pub fn from_factors(x: FactorMatrix, theta: FactorMatrix) -> Self {
        assert_eq!(x.rank(), theta.rank(), "factor rank mismatch");
        let f = theta.rank();
        let item_norms: Vec<f32> = theta
            .data()
            .chunks_exact(f.max(1))
            .map(|v| cumf_linalg::blas::norm_sq(v).sqrt())
            .collect();
        let block_max = block_max_norms(&item_norms, DEFAULT_ITEM_BLOCK.min(theta.len().max(1)));
        Self {
            generation: 0,
            x,
            theta,
            item_norms,
            block_max,
        }
    }

    /// Snapshots a live, fitted trainer.
    ///
    /// # Panics
    /// Panics if [`MatrixFactorizer::fit`] has not been called.
    pub fn from_trainer(model: &MatrixFactorizer) -> Self {
        Self::from_factors(model.x().clone(), model.theta().clone())
    }

    /// Restores a snapshot from a saved checkpoint — the serving half of the
    /// paper's §4.4 fault-tolerance story: a retrain crash loses no serving
    /// capability, the last checkpoint serves on.
    pub fn from_checkpoint(checkpoint: &Checkpoint) -> Self {
        Self::from_factors(checkpoint.x.clone(), checkpoint.theta.clone())
    }

    /// The publication generation (0 for never-published snapshots).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.x.len()
    }

    /// Number of items in the catalog.
    pub fn n_items(&self) -> usize {
        self.theta.len()
    }

    /// Latent rank `f`.
    pub fn rank(&self) -> usize {
        self.theta.rank()
    }

    /// User factor vector `x_u`, or `None` for out-of-range users.
    pub fn user_vector(&self, user: u32) -> Option<&[f32]> {
        ((user as usize) < self.x.len()).then(|| self.x.vector(user as usize))
    }

    /// The row-major item factor table.
    pub fn item_factors(&self) -> &FactorMatrix {
        &self.theta
    }

    /// Precomputed item L2 norms (`‖θ_v‖`), indexed by item id.
    pub fn item_norms(&self) -> &[f32] {
        &self.item_norms
    }

    /// The item block size the snapshot's precomputed block maxima
    /// ([`FactorSnapshot::default_block_max`]) are aligned to:
    /// [`DEFAULT_ITEM_BLOCK`] clamped to the catalog size.
    pub fn default_item_block(&self) -> usize {
        DEFAULT_ITEM_BLOCK.min(self.n_items().max(1))
    }

    /// Per-block maxima of the item norms at
    /// [`FactorSnapshot::default_item_block`] granularity, for
    /// threshold-pruned retrieval.
    pub fn default_block_max(&self) -> &[f32] {
        &self.block_max
    }

    /// Predicted rating `x_u · θ_v`; `None` for out-of-range ids.
    pub fn predict(&self, user: u32, item: u32) -> Option<f32> {
        let x_u = self.user_vector(user)?;
        ((item as usize) < self.theta.len())
            .then(|| cumf_linalg::blas::dot(x_u, self.theta.vector(item as usize)))
    }

    /// Single-request top-`k` retrieval: the blocked-scoring + bounded-heap
    /// path a batch of size one takes, with whole-block threshold pruning
    /// driven by the precomputed item norms (results are identical to the
    /// unpruned path).  Out-of-range users get an empty result (a serving
    /// layer must not panic on bad requests).
    pub fn recommend_one(&self, user: u32, k: usize, exclude: &[u32]) -> Vec<(u32, f32)> {
        let Some(x_u) = self.user_vector(user) else {
            return Vec::new();
        };
        let excluded: HashSet<u32> = exclude.iter().copied().collect();
        retrieve_top_k_pruned(
            x_u,
            self.theta.data(),
            self.rank(),
            k,
            self.default_item_block(),
            &self.block_max,
            |v| excluded.contains(&v),
        )
    }
}

/// The hot-swappable publication point for [`FactorSnapshot`]s.
///
/// `load()` is a read-lock `Arc` clone; `publish()` stamps the next
/// generation and swaps the pointer under a write lock held for the
/// duration of one pointer assignment.  In-flight batches keep serving from
/// the `Arc` they already cloned.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<FactorSnapshot>>,
    generation: AtomicU64,
}

impl SnapshotStore {
    /// Creates a store serving `initial` as generation 1.
    pub fn new(mut initial: FactorSnapshot) -> Self {
        initial.generation = 1;
        Self {
            current: RwLock::new(Arc::new(initial)),
            generation: AtomicU64::new(1),
        }
    }

    /// The snapshot to serve the next batch from.
    pub fn load(&self) -> Arc<FactorSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Generation of the currently-published snapshot.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publishes a new snapshot, returning its generation.  Queries that
    /// already captured the previous `Arc` finish on the old factors; every
    /// later `load()` observes the new ones.  The generation bump and the
    /// pointer swap happen under one write lock, so concurrent publishers
    /// serialize and generations can never be installed out of order.
    pub fn publish(&self, mut snapshot: FactorSnapshot) -> u64 {
        let mut current = self.current.write().expect("snapshot lock poisoned");
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        snapshot.generation = generation;
        *current = Arc::new(snapshot);
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::blas::dot;

    fn snapshot(seed: u64) -> FactorSnapshot {
        FactorSnapshot::from_factors(
            FactorMatrix::random(20, 6, 1.0, seed),
            FactorMatrix::random(50, 6, 1.0, seed + 1),
        )
    }

    #[test]
    fn norms_match_theta_rows() {
        let s = snapshot(1);
        assert_eq!(s.item_norms().len(), s.n_items());
        for v in 0..s.n_items() {
            let expect = dot(s.item_factors().vector(v), s.item_factors().vector(v)).sqrt();
            assert!((s.item_norms()[v] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn recommend_one_excludes_and_sorts() {
        let s = snapshot(2);
        let exclude = vec![0, 1, 2, 3];
        let recs = s.recommend_one(5, 10, &exclude);
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|(v, _)| !exclude.contains(v)));
        assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn out_of_range_requests_are_empty_not_panics() {
        let s = snapshot(3);
        assert!(s.recommend_one(10_000, 5, &[]).is_empty());
        assert_eq!(s.predict(10_000, 0), None);
        assert_eq!(s.predict(0, 10_000), None);
        assert!(s.predict(0, 0).is_some());
    }

    #[test]
    fn store_publish_bumps_generation_and_swaps() {
        let store = SnapshotStore::new(snapshot(4));
        let first = store.load();
        assert_eq!(first.generation(), 1);
        let g2 = store.publish(snapshot(5));
        assert_eq!(g2, 2);
        assert_eq!(store.generation(), 2);
        let second = store.load();
        assert_eq!(second.generation(), 2);
        // The old Arc is still intact for in-flight readers.
        assert_eq!(first.generation(), 1);
    }

    #[test]
    #[should_panic(expected = "factor rank mismatch")]
    fn mismatched_ranks_panic() {
        FactorSnapshot::from_factors(FactorMatrix::zeros(2, 3), FactorMatrix::zeros(2, 4));
    }
}

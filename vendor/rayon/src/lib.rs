//! Multi-threaded, API-compatible shim for [rayon](https://docs.rs/rayon).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *interface* of the external crates it depends
//! on.  Earlier revisions of this shim executed everything sequentially;
//! this version is a genuinely parallel implementation of the subset of
//! rayon's API that `cumf-rs` uses:
//!
//! * sources — `par_iter`, `par_iter_mut`, `into_par_iter` (ranges and
//!   vectors), `par_chunks`, `par_chunks_mut`;
//! * adapters — `map`, `zip`, `enumerate`, `filter`, `filter_map`,
//!   `flat_map`, `with_min_len`;
//! * terminals — `for_each`, `collect`, `sum`, `count`, `reduce`, `min`,
//!   `max`;
//! * plus [`join`] and [`current_num_threads`].
//!
//! # Execution model
//!
//! There is no work-stealing: every parallel iterator is an exactly
//! splittable description of work (a slice, a range, or an adapter stack
//! over one), and a terminal operation splits it into roughly
//! [`current_num_threads`] contiguous pieces and runs each piece to
//! completion on a scoped thread (`std::thread::scope`).  Closures are
//! shared across the pieces behind an [`Arc`], so the adapter structs stay
//! cheap to split.  This matches rayon's observable behaviour for the
//! coarse-grained loops in this workspace (per-row ALS solves, chunked
//! factor updates, block reductions) while remaining a few hundred lines of
//! dependency-free code.
//!
//! Determinism: splitting preserves order, every piece is contiguous, and
//! `collect` reassembles pieces in order, so order-sensitive results are
//! identical to sequential execution.  Reductions (`sum`, `reduce`) combine
//! per-piece partials in piece order; floating-point results can therefore
//! differ from a sequential fold by the usual re-association error, exactly
//! as with the real rayon.
//!
//! The thread count is `RAYON_NUM_THREADS` when set, otherwise
//! `std::thread::available_parallelism()`.  Swap the
//! `[workspace.dependencies]` entry in the root `Cargo.toml` from the
//! `vendor/rayon` path to a crates.io version and everything compiles
//! unchanged.

use std::ops::Range;
use std::sync::Arc;
use std::sync::OnceLock;

/// Number of worker threads a terminal operation fans out to.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Lock-free counting permit pool behind [`join`]'s thread-spawn decision.
///
/// Invariant (model-checked under `--cfg cumf_model_check`, see
/// `permit_model_tests`): the number of concurrently *held* permits never
/// exceeds the pool's capacity, and every acquired permit is returned
/// exactly once — so the pool can neither oversubscribe the machine nor
/// leak capacity across panics.
pub(crate) mod permits {
    #[cfg(not(cumf_model_check))]
    use std::sync::atomic::{AtomicIsize, Ordering};

    #[cfg(cumf_model_check)]
    use loom::sync::atomic::{AtomicIsize, Ordering};

    pub(crate) struct PermitPool {
        /// Permits still available.  Transiently negative inside a failed
        /// [`PermitPool::try_acquire`] (optimistic decrement, compensating
        /// increment); holders never observe the dip — only concurrent
        /// acquirers do, and they simply fail too (a spurious sequential
        /// fallback, never an oversubscription).
        available: AtomicIsize,
    }

    impl PermitPool {
        pub(crate) const fn new(capacity: isize) -> Self {
            Self {
                available: AtomicIsize::new(capacity),
            }
        }

        /// Takes one permit; `false` when none are free.
        pub(crate) fn try_acquire(&self) -> bool {
            if self.available.fetch_sub(1, Ordering::AcqRel) <= 0 {
                self.available.fetch_add(1, Ordering::AcqRel);
                false
            } else {
                true
            }
        }

        /// Returns a permit taken by [`PermitPool::try_acquire`].
        pub(crate) fn release(&self) {
            self.available.fetch_add(1, Ordering::AcqRel);
        }

        /// Currently-free permits (leak auditing in tests).
        #[cfg(test)]
        pub(crate) fn available(&self) -> isize {
            self.available.load(Ordering::SeqCst)
        }
    }
}

/// Concurrency permits for [`join`]'s spawned halves: at most
/// `current_num_threads() - 1` extra threads may be live at once across
/// every `join` in the process.  A `join` that cannot take a permit runs
/// both closures sequentially on the current thread — so deeply or widely
/// recursive joins degrade to sequential execution instead of spawning a
/// thread per recursion frame and oversubscribing the machine (the real
/// rayon gets this for free from its fixed worker pool).
fn join_permits() -> &'static permits::PermitPool {
    static PERMITS: OnceLock<permits::PermitPool> = OnceLock::new();
    PERMITS.get_or_init(|| permits::PermitPool::new(current_num_threads() as isize - 1))
}

/// Releases a [`join_permits`] permit on drop — panic-safe, so a panicking
/// closure cannot leak the permit.
struct JoinPermit;

impl Drop for JoinPermit {
    fn drop(&mut self) {
        join_permits().release();
        #[cfg(test)]
        join_audit::LIVE.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Test-only high-water-mark instrumentation of concurrent join threads.
#[cfg(test)]
mod join_audit {
    use std::sync::atomic::AtomicIsize;
    pub static LIVE: AtomicIsize = AtomicIsize::new(0);
    pub static PEAK: AtomicIsize = AtomicIsize::new(0);
}

/// Runs two closures in parallel and returns both results.
///
/// Parallelism is best-effort: the second closure runs on a scoped thread
/// only while a global permit is available (`threads − 1` permits);
/// otherwise both run sequentially on the caller's thread, which keeps
/// recursive joins from oversubscribing.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    if !join_permits().try_acquire() {
        return (a(), b());
    }
    let permit = JoinPermit;
    #[cfg(test)]
    {
        use std::sync::atomic::Ordering;
        let live = join_audit::LIVE.fetch_add(1, Ordering::SeqCst) + 1;
        join_audit::PEAK.fetch_max(live, Ordering::SeqCst);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _permit = permit; // released when the spawned half finishes
            b()
        });
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A splittable description of parallel work.
///
/// Unlike the real rayon this is a single concrete trait: implementors know
/// their (upper-bound) length, can split themselves at an element index, and
/// can lower themselves into a sequential [`Iterator`] for one worker to
/// drain.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator a worker drains one split with.
    type Seq: Iterator<Item = Self::Item>;

    /// Number of *base* elements remaining (an upper bound once `filter` /
    /// `filter_map` are involved); used only to place split points.
    fn par_len(&self) -> usize;

    /// Splits into `[0, mid)` and `[mid, len)` in base-element units.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Lowers this (piece of) work into a sequential iterator.
    fn into_seq(self) -> Self::Seq;

    /// Minimum piece length a terminal operation may split down to.
    fn min_split_len(&self) -> usize {
        1
    }

    // ---- adapters -------------------------------------------------------

    /// Applies `f` to each item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pairs items with another parallel iterator, in lockstep.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs items with their indices.
    ///
    /// As with rayon, `enumerate` assumes an exactly-sized base (do not use
    /// it after `filter`-like adapters; indices would count filtered items).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Keeps items for which `f` returns true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Filters and maps in one pass.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Maps each item to an iterator and flattens the result.
    fn flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        F: Fn(Self::Item) -> O + Send + Sync,
        O: IntoIterator,
        O::Item: Send,
    {
        FlatMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Bounds how finely terminal operations may split the work.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    // ---- terminals ------------------------------------------------------

    /// Consumes the iterator, applying `f` to each item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        execute(self, |piece| piece.into_seq().for_each(&f));
    }

    /// Collects into any [`FromIterator`] collection, preserving order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let pieces: Vec<Vec<Self::Item>> = execute(self, |piece| piece.into_seq().collect());
        pieces.into_iter().flatten().collect()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        execute(self, |piece| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        execute(self, |piece| piece.into_seq().count())
            .into_iter()
            .sum()
    }

    /// Rayon-style reduction: folds every item into `identity()` with `op`,
    /// then combines the per-thread partials with `op`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        execute(self, |piece| piece.into_seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Maximum item, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self, |piece| piece.into_seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Minimum item, if any.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self, |piece| piece.into_seq().min())
            .into_iter()
            .flatten()
            .min()
    }
}

/// Splits `p` into at most `pieces` contiguous parts of roughly equal base
/// length, appending them to `out` in order.
fn split_into<P: ParallelIterator>(p: P, pieces: usize, out: &mut Vec<P>) {
    let n = p.par_len();
    if pieces <= 1 || n <= 1 {
        out.push(p);
        return;
    }
    let left_pieces = pieces / 2;
    let mid = n * left_pieces / pieces;
    if mid == 0 || mid >= n {
        out.push(p);
        return;
    }
    let (l, r) = p.split_at(mid);
    split_into(l, left_pieces, out);
    split_into(r, pieces - left_pieces, out);
}

/// Runs `work` over ~`current_num_threads()` splits of `p` on scoped
/// threads, returning the per-piece results in piece order.  Worker panics
/// are propagated to the caller.
fn execute<P, R, F>(p: P, work: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = p.par_len();
    let min = p.min_split_len().max(1);
    // Floor division: with `pieces ≤ n / min`, an even split can never
    // produce a piece shorter than `min` (rayon's `with_min_len` contract).
    let pieces = current_num_threads().min(n / min).max(1);
    if pieces == 1 {
        return vec![work(p)];
    }
    let mut parts = Vec::with_capacity(pieces);
    split_into(p, pieces, &mut parts);
    if parts.len() == 1 {
        return parts.into_iter().map(work).collect();
    }
    std::thread::scope(|s| {
        let work = &work;
        let mut parts = parts.into_iter();
        let first = parts.next().expect("at least one piece");
        let handles: Vec<_> = parts.map(|piece| s.spawn(move || work(piece))).collect();
        let mut results = Vec::with_capacity(handles.len() + 1);
        results.push(work(first));
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    })
}

// ---- sources ------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct IterPar<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for IterPar<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(mid);
        (IterPar(l), IterPar(r))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct IterMutPar<'a, T: Send>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for IterMutPar<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(mid);
        (IterMutPar(l), IterMutPar(r))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter_mut()
    }
}

/// Parallel iterator over non-overlapping chunks of a slice.
pub struct ChunksPar<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ChunksPar {
                slice: l,
                size: self.size,
            },
            ChunksPar {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

/// Parallel iterator over non-overlapping mutable chunks of a slice.
pub struct ChunksMutPar<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMutPar<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutPar {
                slice: l,
                size: self.size,
            },
            ChunksMutPar {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecPar<T: Send>(Vec<T>);

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.0.split_off(mid);
        (self, VecPar(tail))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.into_iter()
    }
}

/// Parallel iterator over an integer range.
pub struct RangePar<T> {
    range: Range<T>,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn par_len(&self) -> usize {
                self.range.end.saturating_sub(self.range.start) as usize
            }

            fn split_at(self, mid: usize) -> (Self, Self) {
                let at = self.range.start + mid as $t;
                (
                    RangePar { range: self.range.start..at },
                    RangePar { range: at..self.range.end },
                )
            }

            fn into_seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangePar<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { range: self }
            }
        }
    )*};
}

impl_range_par!(usize, u64, u32);

// ---- adapters -----------------------------------------------------------

/// Parallel `map`.
pub struct Map<B, F> {
    base: B,
    f: Arc<F>,
}

/// Sequential side of [`Map`].
pub struct MapSeq<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S: Iterator, F, R> Iterator for MapSeq<S, F>
where
    F: Fn(S::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = MapSeq<B::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
            },
            Map { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        MapSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }
}

/// Parallel `zip`.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }

    fn min_split_len(&self) -> usize {
        self.a.min_split_len().max(self.b.min_split_len())
    }
}

/// Parallel `enumerate`.
pub struct Enumerate<B> {
    base: B,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeq<S> {
    base: S,
    idx: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let idx = self.idx;
        self.idx += 1;
        Some((idx, item))
    }
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    type Seq = EnumerateSeq<B::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + mid,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            base: self.base.into_seq(),
            idx: self.offset,
        }
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }
}

/// Parallel `filter`.
pub struct Filter<B, F> {
    base: B,
    f: Arc<F>,
}

/// Sequential side of [`Filter`].
pub struct FilterSeq<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S: Iterator, F> Iterator for FilterSeq<S, F>
where
    F: Fn(&S::Item) -> bool,
{
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        self.base.by_ref().find(|x| (self.f)(x))
    }
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Send + Sync,
{
    type Item = B::Item;
    type Seq = FilterSeq<B::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Filter {
                base: l,
                f: Arc::clone(&self.f),
            },
            Filter { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        FilterSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }
}

/// Parallel `filter_map`.
pub struct FilterMap<B, F> {
    base: B,
    f: Arc<F>,
}

/// Sequential side of [`FilterMap`].
pub struct FilterMapSeq<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S: Iterator, F, R> Iterator for FilterMapSeq<S, F>
where
    F: Fn(S::Item) -> Option<R>,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        for x in self.base.by_ref() {
            if let Some(r) = (self.f)(x) {
                return Some(r);
            }
        }
        None
    }
}

impl<B, F, R> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = FilterMapSeq<B::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FilterMap {
                base: l,
                f: Arc::clone(&self.f),
            },
            FilterMap { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        FilterMapSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }
}

/// Parallel `flat_map`.
pub struct FlatMap<B, F> {
    base: B,
    f: Arc<F>,
}

/// Sequential side of [`FlatMap`].
pub struct FlatMapSeq<S, F, O: IntoIterator> {
    base: S,
    f: Arc<F>,
    cur: Option<O::IntoIter>,
}

impl<S: Iterator, F, O> Iterator for FlatMapSeq<S, F, O>
where
    F: Fn(S::Item) -> O,
    O: IntoIterator,
{
    type Item = O::Item;

    fn next(&mut self) -> Option<O::Item> {
        loop {
            if let Some(cur) = &mut self.cur {
                if let Some(x) = cur.next() {
                    return Some(x);
                }
            }
            self.cur = Some((self.f)(self.base.next()?).into_iter());
        }
    }
}

impl<B, F, O> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> O + Send + Sync,
    O: IntoIterator,
    O::Item: Send,
    O::IntoIter: Send,
{
    type Item = O::Item;
    type Seq = FlatMapSeq<B::Seq, F, O>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FlatMap {
                base: l,
                f: Arc::clone(&self.f),
            },
            FlatMap { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        FlatMapSeq {
            base: self.base.into_seq(),
            f: self.f,
            cur: None,
        }
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }
}

/// Limits how finely the base may be split (rayon's `with_min_len`).
pub struct MinLen<B> {
    base: B,
    min: usize,
}

impl<B: ParallelIterator> ParallelIterator for MinLen<B> {
    type Item = B::Item;
    type Seq = B::Seq;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            MinLen {
                base: l,
                min: self.min,
            },
            MinLen {
                base: r,
                min: self.min,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq()
    }

    fn min_split_len(&self) -> usize {
        self.min.max(self.base.min_split_len())
    }
}

// ---- conversion traits --------------------------------------------------

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    type Item = T;

    fn into_par_iter(self) -> VecPar<T> {
        VecPar(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = IterPar<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> IterPar<'a, T> {
        IterPar(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = IterPar<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> IterPar<'a, T> {
        IterPar(self)
    }
}

/// `par_iter()` for shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: Send + 'data;
    /// Iterates `&self` in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = IterPar<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> IterPar<'data, T> {
        IterPar(self)
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = IterPar<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> IterPar<'data, T> {
        IterPar(self.as_slice())
    }
}

/// `par_iter_mut()` for mutable references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a mutable reference).
    type Item: Send + 'data;
    /// Iterates `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = IterMutPar<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> IterMutPar<'data, T> {
        IterMutPar(self)
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = IterMutPar<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> IterMutPar<'data, T> {
        IterMutPar(self.as_mut_slice())
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Non-overlapping chunks of `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksPar {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size` items.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutPar<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutPar<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMutPar {
            slice: self,
            size: chunk_size,
        }
    }
}

pub mod prelude {
    //! Rayon's prelude: the traits that add `par_iter` & friends to
    //! standard collections.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_sum_matches_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: u64 = v.par_iter().map(|&x| x * x).sum();
        let seq: u64 = v.iter().map(|&x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_uses_identity() {
        let total = (1..5u32).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
    }

    #[test]
    fn chunks_mut_zip_writes_through() {
        let mut a = vec![0f32; 6];
        let b = vec![1f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        a.par_chunks_mut(2)
            .zip(b.par_chunks(2))
            .for_each(|(ca, cb)| {
                ca.copy_from_slice(cb);
            });
        assert_eq!(a, b);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<usize> = (0..10_000).map(|x| x * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn enumerate_indices_are_global() {
        let mut data = vec![0usize; 5000];
        data.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(i, x);
        }
    }

    #[test]
    fn filter_and_filter_map_and_flat_map() {
        let evens: Vec<u32> = (0..100u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        let halves: Vec<u32> = (0..100u32)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x / 2))
            .collect();
        assert_eq!(halves, (0..50).collect::<Vec<_>>());
        let pairs: Vec<u32> = (0..10u32).into_par_iter().flat_map(|x| [x, x]).collect();
        assert_eq!(pairs.len(), 20);
        assert_eq!(&pairs[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // nothing to assert on a single-core runner
        }
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..256usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // A little work so pieces do not finish before others spawn.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected more than one worker thread"
        );
    }

    #[test]
    fn min_len_bounds_splitting() {
        // With min_len == n the work must run as a single piece (one thread).
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().with_min_len(64).for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(ids.lock().unwrap().len(), 1);

        // n slightly above min must still be one piece — splitting would
        // leave at least one half under min (rayon guarantees pieces ≥ min).
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..65usize).into_par_iter().with_min_len(64).for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(ids.lock().unwrap().len(), 1);

        // And n = 3×min may use at most 3 pieces.
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..192usize)
            .into_par_iter()
            .with_min_len(64)
            .for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        assert!(ids.lock().unwrap().len() <= 3);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn recursive_joins_stay_within_the_permit_pool() {
        // A full binary join tree over 2^12 leaves: without the permit
        // guard every internal node would hold a live scoped thread (~4096
        // concurrent at the leaf level); with it, spawned-thread
        // concurrency must never exceed the pool (threads - 1), the rest
        // degrading to sequential execution — with identical results.
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 1 {
                return range.start;
            }
            let mid = range.start + len / 2;
            let (l, r) = super::join(move || sum(range.start..mid), move || sum(mid..range.end));
            l + r
        }
        super::join_audit::PEAK.store(0, std::sync::atomic::Ordering::SeqCst);
        let n = 1u64 << 12;
        assert_eq!(sum(0..n), n * (n - 1) / 2);
        let peak = super::join_audit::PEAK.load(std::sync::atomic::Ordering::SeqCst);
        let bound = super::current_num_threads() as isize - 1;
        assert!(
            peak <= bound.max(0),
            "{peak} concurrent join threads exceeds the {bound}-permit pool"
        );
        assert_eq!(
            super::join_audit::LIVE.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "every permit must be released"
        );
    }

    #[test]
    fn join_releases_its_permit_when_a_closure_panics() {
        let permits_before = super::join_permits().available();
        for _ in 0..32 {
            let result =
                std::panic::catch_unwind(|| super::join(|| 1, || -> i32 { panic!("boom") }));
            assert!(result.is_err());
        }
        // Panic-unwound joins must not leak permits (drop-guard release).
        // Other tests' joins may hold permits transiently, so wait for the
        // pool to refill rather than snapshotting it — a leak of even one
        // permit per panic above would keep it permanently below the mark.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let now = super::join_permits().available();
            if now >= permits_before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "permits leaked: {now} < {permits_before}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let s: u32 = v.par_iter().map(|&x| x).sum::<u32>();
        assert_eq!(s, 0);
        let c: Vec<u32> = (0..0u32).into_par_iter().collect();
        assert!(c.is_empty());
    }

    #[test]
    fn max_and_min() {
        assert_eq!((0..100u32).into_par_iter().max(), Some(99));
        assert_eq!((0..100u32).into_par_iter().min(), Some(0));
        assert_eq!((0..0u32).into_par_iter().max(), None);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            (0..1000usize).into_par_iter().for_each(|i| {
                if i == 777 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }
}

/// Model-checked verification of the [`permits::PermitPool`] invariant:
/// two contenders over a capacity-1 pool never both hold a permit, and the
/// pool's capacity survives the contention intact.  Uses a *local* pool
/// (not [`join_permits`]' process-global one) so every explored
/// interleaving starts from a clean state.
#[cfg(all(test, cumf_model_check))]
mod permit_model_tests {
    use super::permits::PermitPool;
    use loom::sync::atomic::{AtomicIsize, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn permit_pool_never_oversubscribes_and_never_leaks() {
        let stats = loom::Builder::new().preemption_bound(3).check(|| {
            let pool = Arc::new(PermitPool::new(1));
            let holders = Arc::new(AtomicIsize::new(0));
            let contend = |pool: Arc<PermitPool>, holders: Arc<AtomicIsize>| {
                if pool.try_acquire() {
                    let live = holders.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(live <= 1, "{live} holders of a capacity-1 pool");
                    holders.fetch_sub(1, Ordering::SeqCst);
                    pool.release();
                    true
                } else {
                    false
                }
            };
            let (p2, h2) = (Arc::clone(&pool), Arc::clone(&holders));
            // Two rounds per contender: also covers release-then-reacquire
            // interleavings (a permit freed mid-race must be acquirable).
            let t = thread::spawn(move || {
                let first = contend(Arc::clone(&p2), Arc::clone(&h2));
                (first, contend(p2, h2))
            });
            let mine = (
                contend(Arc::clone(&pool), Arc::clone(&holders)),
                contend(Arc::clone(&pool), Arc::clone(&holders)),
            );
            let theirs = t.join().expect("model thread");
            // Both ran to completion, so the permit must be back: a third
            // acquire proves nothing leaked.  (Either contender may have
            // lost the race — even both, through the transient-negative
            // window — but the capacity itself must survive.)
            let _ = (mine, theirs);
            assert!(pool.try_acquire(), "permit leaked under contention");
            pool.release();
        });
        assert!(
            stats.interleavings >= 100,
            "scenario explored only {} interleavings",
            stats.interleavings
        );
    }
}

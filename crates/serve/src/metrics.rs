//! Lock-free serving metrics.
//!
//! Counters a production retrieval tier exports: request/response counts,
//! cache hit rate, a power-of-two micro-batch-size histogram (how well the
//! batcher coalesces), per-batch scoring latency, and snapshot swaps.  All
//! writers are relaxed atomics — the worker records on the hot path without
//! locks — and [`ServeMetrics::report`] takes a coherent-enough snapshot
//! for dashboards/tests.

use cumf_linalg::PruneStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: batch sizes `1, 2–3, 4–7, …, ≥128`.
pub const BATCH_SIZE_BUCKETS: usize = 8;

/// Shared, lock-free serving counters.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    responses: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    batch_size_hist: [AtomicU64; BATCH_SIZE_BUCKETS],
    batch_latency_ns_total: AtomicU64,
    batch_latency_ns_max: AtomicU64,
    snapshot_swaps: AtomicU64,
    delta_publishes: AtomicU64,
    item_compactions: AtomicU64,
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    blocks_scored: AtomicU64,
    blocks_pruned: AtomicU64,
    blocks_terminated: AtomicU64,
    approx_requests: AtomicU64,
}

impl ServeMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request entering the batcher.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reply sent.
    pub fn record_response(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a result served from the cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a result that had to be scored.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced micro-batch of `size` requests scored in
    /// `latency`.
    pub fn record_batch(&self, size: usize, latency: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items.fetch_add(size as u64, Ordering::Relaxed);
        let bucket = (usize::BITS - 1)
            .saturating_sub(size.max(1).leading_zeros())
            .min(BATCH_SIZE_BUCKETS as u32 - 1) as usize;
        self.batch_size_hist[bucket].fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.batch_latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.batch_latency_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a snapshot hot-swap.
    pub fn record_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a swap that went through the incremental delta path (also
    /// counted in `snapshot_swaps`).
    pub fn record_delta_publish(&self) {
        self.delta_publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an item-segment compaction republish (also counted in
    /// `snapshot_swaps`).
    pub fn record_item_compaction(&self) {
        self.item_compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a scorer worker panicking while scoring — the panicked batch
    /// was dropped; whether capacity was lost depends on the restart
    /// budget (`worker_restarts` counts the recoveries).
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a panicked worker resuming within its panic budget.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch's block-scan outcome: how many item blocks the
    /// scorer streamed, skipped exactly on the norm bound, and skipped by
    /// approximate early termination.  Keeping the three counts separate is
    /// what keeps [`MetricsReport::pruned_block_rate`] truthful when exact
    /// and approximate traffic mix.
    pub fn record_pruning(&self, stats: &PruneStats) {
        self.blocks_scored
            .fetch_add(stats.blocks_scored, Ordering::Relaxed);
        self.blocks_pruned
            .fetch_add(stats.blocks_pruned, Ordering::Relaxed);
        self.blocks_terminated
            .fetch_add(stats.blocks_terminated, Ordering::Relaxed);
    }

    /// Records `n` requests scored under an approximate policy (cache hits
    /// of approximate entries included — the caller counts what it serves).
    pub fn record_approx_requests(&self, n: u64) {
        self.approx_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters plus derived rates.
    pub fn report(&self) -> MetricsReport {
        let requests = self.requests.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_items = self.batch_items.load(Ordering::Relaxed);
        let total_ns = self.batch_latency_ns_total.load(Ordering::Relaxed);
        MetricsReport {
            requests,
            responses: self.responses.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            batches,
            batch_size_hist: std::array::from_fn(|i| {
                self.batch_size_hist[i].load(Ordering::Relaxed)
            }),
            mean_batch_size: if batches > 0 {
                batch_items as f64 / batches as f64
            } else {
                0.0
            },
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            mean_batch_latency: Duration::from_nanos(total_ns.checked_div(batches).unwrap_or(0)),
            max_batch_latency: Duration::from_nanos(
                self.batch_latency_ns_max.load(Ordering::Relaxed),
            ),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            delta_publishes: self.delta_publishes.load(Ordering::Relaxed),
            item_compactions: self.item_compactions.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            blocks_scored: self.blocks_scored.load(Ordering::Relaxed),
            blocks_pruned: self.blocks_pruned.load(Ordering::Relaxed),
            blocks_terminated: self.blocks_terminated.load(Ordering::Relaxed),
            approx_requests: self.approx_requests.load(Ordering::Relaxed),
        }
    }
}

/// Read-side copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Requests accepted by the batcher.
    pub requests: u64,
    /// Replies delivered.
    pub responses: u64,
    /// Results served from the cache.
    pub cache_hits: u64,
    /// Results scored against a snapshot.
    pub cache_misses: u64,
    /// Coalesced micro-batches scored.
    pub batches: u64,
    /// Batch-size histogram (buckets `1, 2–3, 4–7, …, ≥128`).
    pub batch_size_hist: [u64; BATCH_SIZE_BUCKETS],
    /// Mean requests per micro-batch.
    pub mean_batch_size: f64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Mean scoring latency per micro-batch.
    pub mean_batch_latency: Duration,
    /// Worst scoring latency of any micro-batch.
    pub max_batch_latency: Duration,
    /// Snapshot generations published.
    pub snapshot_swaps: u64,
    /// Publications that went through the incremental delta path (a subset
    /// of `snapshot_swaps`).
    pub delta_publishes: u64,
    /// Item-segment compaction republishes (a subset of `snapshot_swaps`).
    pub item_compactions: u64,
    /// Scoring panics caught in workers (0 in a healthy service).
    pub worker_panics: u64,
    /// Panicked workers restarted within the panic budget (`worker_panics -
    /// worker_restarts` workers died for good).
    pub worker_restarts: u64,
    /// Item blocks streamed and scored by the blocked scorer.
    pub blocks_scored: u64,
    /// Item blocks skipped whole on the Cauchy–Schwarz norm bound — the
    /// pruning-effectiveness counter a norm-descending layout drives up.
    /// An **exact** decision; never changes results.
    pub blocks_pruned: u64,
    /// Item blocks skipped by approximate early termination (epsilon slack
    /// or block budget) — a result-affecting skip, counted apart from
    /// `blocks_pruned` so the exact-pruning rate stays honest.
    pub blocks_terminated: u64,
    /// Requests scored (or served from cache) under an approximate policy.
    pub approx_requests: u64,
}

impl MetricsReport {
    /// Fraction of visited item blocks skipped by **exact** threshold
    /// pruning (`0.0` when nothing was scored).  Terminated blocks widen
    /// the denominator but never the numerator.
    pub fn pruned_block_rate(&self) -> f64 {
        let total = self.blocks_scored + self.blocks_pruned + self.blocks_terminated;
        if total == 0 {
            0.0
        } else {
            self.blocks_pruned as f64 / total as f64
        }
    }

    /// Fraction of visited item blocks skipped by **approximate** early
    /// termination (`0.0` when nothing was scored).
    pub fn terminated_block_rate(&self) -> f64 {
        let total = self.blocks_scored + self.blocks_pruned + self.blocks_terminated;
        if total == 0 {
            0.0
        } else {
            self.blocks_terminated as f64 / total as f64
        }
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {}  responses: {}  batches: {}  mean batch {:.2}",
            self.requests, self.responses, self.batches, self.mean_batch_size
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit ({} hit / {} miss)  swaps: {} ({} delta, {} compaction)  \
             worker panics: {} ({} restarted)",
            100.0 * self.cache_hit_rate,
            self.cache_hits,
            self.cache_misses,
            self.snapshot_swaps,
            self.delta_publishes,
            self.item_compactions,
            self.worker_panics,
            self.worker_restarts
        )?;
        writeln!(
            f,
            "pruning: {} blocks scored, {} pruned ({:.1}% exact skip), \
             {} terminated ({:.1}% approx skip)  approx requests: {}",
            self.blocks_scored,
            self.blocks_pruned,
            100.0 * self.pruned_block_rate(),
            self.blocks_terminated,
            100.0 * self.terminated_block_rate(),
            self.approx_requests
        )?;
        writeln!(
            f,
            "batch latency: mean {:?}  max {:?}",
            self.mean_batch_latency, self.max_batch_latency
        )?;
        write!(
            f,
            "batch sizes [1,2,4,8,16,32,64,128+]: {:?}",
            self.batch_size_hist
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sizes_land_in_power_of_two_buckets() {
        let m = ServeMetrics::new();
        for size in [1usize, 2, 3, 4, 7, 8, 127, 128, 4096] {
            m.record_batch(size, Duration::from_micros(10));
        }
        let r = m.report();
        assert_eq!(r.batches, 9);
        assert_eq!(r.batch_size_hist[0], 1); // 1
        assert_eq!(r.batch_size_hist[1], 2); // 2, 3
        assert_eq!(r.batch_size_hist[2], 2); // 4, 7
        assert_eq!(r.batch_size_hist[3], 1); // 8
        assert_eq!(r.batch_size_hist[6], 1); // 127 → bucket 64..127
        assert_eq!(r.batch_size_hist[7], 2); // 128 and 4096 clamp to last
    }

    #[test]
    fn rates_and_latencies_are_derived() {
        let m = ServeMetrics::new();
        for _ in 0..3 {
            m.record_request();
            m.record_response();
        }
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_cache_miss();
        m.record_batch(3, Duration::from_millis(2));
        m.record_batch(1, Duration::from_millis(4));
        m.record_swap();
        let r = m.report();
        assert_eq!(r.requests, 3);
        assert!((r.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.mean_batch_size, 2.0);
        assert_eq!(r.mean_batch_latency, Duration::from_millis(3));
        assert_eq!(r.max_batch_latency, Duration::from_millis(4));
        assert_eq!(r.snapshot_swaps, 1);
    }

    #[test]
    fn empty_metrics_report_is_zeroed() {
        let r = ServeMetrics::new().report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.cache_hit_rate, 0.0);
        assert_eq!(r.mean_batch_latency, Duration::ZERO);
    }

    #[test]
    fn pruning_and_supervisor_counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_pruning(&PruneStats {
            blocks_scored: 6,
            blocks_pruned: 2,
            blocks_terminated: 0,
        });
        m.record_pruning(&PruneStats {
            blocks_scored: 0,
            blocks_pruned: 8,
            blocks_terminated: 0,
        });
        m.record_worker_panic();
        m.record_worker_restart();
        m.record_item_compaction();
        let r = m.report();
        assert_eq!((r.blocks_scored, r.blocks_pruned), (6, 10));
        assert!((r.pruned_block_rate() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!((r.worker_panics, r.worker_restarts), (1, 1));
        assert_eq!(r.item_compactions, 1);
        assert_eq!(ServeMetrics::new().report().pruned_block_rate(), 0.0);
    }

    #[test]
    fn terminated_blocks_do_not_inflate_the_exact_pruning_rate() {
        // 4 scored + 4 pruned + 8 terminated: the exact skip rate must be
        // 4/16, not 12/16 — the display would otherwise credit approximate
        // truncation to the (result-preserving) norm bound.
        let m = ServeMetrics::new();
        m.record_pruning(&PruneStats {
            blocks_scored: 4,
            blocks_pruned: 4,
            blocks_terminated: 8,
        });
        m.record_approx_requests(3);
        let r = m.report();
        assert_eq!(r.blocks_terminated, 8);
        assert_eq!(r.approx_requests, 3);
        assert!((r.pruned_block_rate() - 4.0 / 16.0).abs() < 1e-12);
        assert!((r.terminated_block_rate() - 8.0 / 16.0).abs() < 1e-12);
        assert_eq!(ServeMetrics::new().report().terminated_block_rate(), 0.0);
        let text = r.to_string();
        assert!(text.contains("8 terminated"));
        assert!(text.contains("approx requests: 3"));
    }

    #[test]
    fn display_is_humane() {
        let m = ServeMetrics::new();
        m.record_batch(2, Duration::from_micros(500));
        let text = m.report().to_string();
        assert!(text.contains("batches: 1"));
        assert!(text.contains("cache"));
    }
}

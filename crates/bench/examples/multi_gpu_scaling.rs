//! Multi-GPU scaling with SU-ALS (the Figure 9 experiment in miniature).
//!
//! Runs the same factorization on 1, 2 and 4 simulated GPUs and reports the
//! per-iteration simulated time, the speedup, and the share of time spent in
//! kernels, reductions and transfers.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use cumf_core::als::su::{SuAlsConfig, SuAlsEngine};
use cumf_core::config::AlsConfig;
use cumf_core::reduce::ReductionScheme;
use cumf_data::datasets::PaperDataset;
use cumf_data::synth::SyntheticConfig;
use cumf_gpu_sim::GpuCluster;

fn main() {
    // A scaled YahooMusic-like data set (Table 5) so the item side is wide
    // enough for data parallelism to matter.
    let spec = PaperDataset::YahooMusic.spec().scaled(0.004);
    let data = SyntheticConfig {
        rank: 8,
        ..SyntheticConfig::from_spec(&spec, 99)
    }
    .generate();
    let ratings = data.to_csr();
    println!(
        "workload: m = {}, n = {}, Nz = {}, f = 32\n",
        ratings.n_rows(),
        ratings.n_cols(),
        ratings.nnz()
    );

    let als = AlsConfig {
        f: 32,
        lambda: 1.4,
        iterations: 3,
        ..Default::default()
    };
    let iterations = als.iterations;

    let mut single_gpu_time = None;
    println!("GPUs | sim time / iter | speedup | get_hermitian | reduce  | transfer");
    println!("-----+-----------------+---------+---------------+---------+---------");
    for n_gpus in [1usize, 2, 4] {
        let cluster = GpuCluster::titan_x_flat(n_gpus);
        // Force p = n_gpus so the data-parallel path is exercised even though
        // the scaled problem would fit on one card.
        let cfg = SuAlsConfig::with_plan(als.clone(), ReductionScheme::OnePhase, n_gpus, 2);
        let mut engine = SuAlsEngine::new(cfg, ratings.clone(), cluster);

        let mut gh = 0.0;
        let mut red = 0.0;
        let mut tr = 0.0;
        for _ in 0..iterations {
            let stats = engine.iterate();
            gh += stats.update_x.get_hermitian_s + stats.update_theta.get_hermitian_s;
            red += stats.update_x.reduce_s + stats.update_theta.reduce_s;
            tr += stats.update_x.transfer_s + stats.update_theta.transfer_s;
        }
        let per_iter = engine.simulated_time() / iterations as f64;
        let speedup = match single_gpu_time {
            None => {
                single_gpu_time = Some(per_iter);
                1.0
            }
            Some(t1) => t1 / per_iter,
        };
        println!(
            "{:4} |   {:>9.4} s   |  {:.2}x  |  {:>9.4} s  | {:>6.4} s| {:>6.4} s   (train RMSE {:.3})",
            n_gpus,
            per_iter,
            speedup,
            gh / iterations as f64,
            red / iterations as f64,
            tr / iterations as f64,
            engine.train_rmse()
        );
    }

    // The scaled-down workload above exercises the real data-parallel code
    // path, but its kernels are so small that fixed overheads dominate.  At
    // paper scale the picture matches Figure 9: close-to-linear speedup.
    println!("\nfull-scale Netflix (m = 480K, n = 17.8K, Nz = 99M, f = 100), analytic cost model:");
    println!("GPUs | sim time / iter | speedup");
    println!("-----+-----------------+--------");
    let netflix = PaperDataset::Netflix.spec();
    let dims = cumf_core::planner::ProblemDims::new(netflix.m, netflix.n, netflix.nz, 100);
    let mut t1 = None;
    for n_gpus in [1usize, 2, 4] {
        let cost = cumf_core::costmodel::cumf_iteration_cost(
            &dims,
            &cumf_core::costmodel::ClusterConfig::titan_x(n_gpus),
        );
        let t = cost.total_s();
        let speedup = match t1 {
            None => {
                t1 = Some(t);
                1.0
            }
            Some(base) => base / t,
        };
        println!("{n_gpus:4} |   {t:>9.3} s   |  {speedup:.2}x");
    }
    println!(
        "\nThe paper reports a ~3.8x speedup at 4 GPUs on Netflix/YahooMusic (Figure 9); \
         the residual overhead comes from PCIe contention and the cross-GPU reduction."
    );
}

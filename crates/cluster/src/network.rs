//! Cluster communication primitives.
//!
//! Distributed MF systems pay for moving factor matrices between nodes:
//! SparkALS shuffles `Θᵀ` sub-blocks to every `X` partition, parameter
//! servers push/pull gradients, and NOMAD circulates column ownership.  A
//! simple α–β (latency–bandwidth) model of the common collectives is enough
//! to capture the paper's point that this traffic is what makes 50-node
//! clusters slow compared to PCIe-connected GPUs.

use crate::node::NodeSpec;

/// A homogeneous cluster of `n` nodes on a full-bisection network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterNetwork {
    /// Per-node specification.
    pub node: NodeSpec,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Per-message latency in seconds (includes framework overhead, which
    /// for Spark-style systems is far larger than raw TCP latency).
    pub latency_s: f64,
}

impl ClusterNetwork {
    /// A cluster with the given nodes and a default per-message latency of
    /// 1 ms (MPI-class systems) — callers modelling Spark-style frameworks
    /// should raise this.
    pub fn new(node: NodeSpec, n_nodes: usize) -> Self {
        Self {
            node,
            n_nodes,
            latency_s: 1e-3,
        }
    }

    /// Per-node bandwidth in bytes/second.
    pub fn node_bandwidth_bytes(&self) -> f64 {
        self.node.net_gbits * 1e9 / 8.0
    }

    /// Time to broadcast `bytes` from one node to all others
    /// (tree broadcast: log₂(n) rounds at full node bandwidth).
    pub fn broadcast_time(&self, bytes: f64) -> f64 {
        if self.n_nodes <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let rounds = (self.n_nodes as f64).log2().ceil();
        rounds * (self.latency_s + bytes / self.node_bandwidth_bytes())
    }

    /// Time for an all-reduce of `bytes` per node (ring all-reduce:
    /// 2·(n−1)/n of the data crosses each link).
    pub fn allreduce_time(&self, bytes: f64) -> f64 {
        if self.n_nodes <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let n = self.n_nodes as f64;
        2.0 * (n - 1.0) / n * bytes / self.node_bandwidth_bytes() + 2.0 * (n - 1.0) * self.latency_s
    }

    /// Time for an all-to-all shuffle where each node sends `bytes_per_node`
    /// in total, split across all peers (each node's NIC is the bottleneck).
    pub fn shuffle_time(&self, bytes_per_node: f64) -> f64 {
        if self.n_nodes <= 1 || bytes_per_node <= 0.0 {
            return 0.0;
        }
        self.latency_s * (self.n_nodes as f64 - 1.0) + bytes_per_node / self.node_bandwidth_bytes()
    }

    /// Aggregate compute throughput of the cluster in GFLOP/s at the given
    /// per-node efficiency.
    pub fn total_gflops(&self, efficiency: f64) -> f64 {
        self.node.effective_gflops(efficiency) * self.n_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aws32() -> ClusterNetwork {
        ClusterNetwork::new(NodeSpec::m3_xlarge(), 32)
    }

    #[test]
    fn single_node_communicates_for_free() {
        let c = ClusterNetwork::new(NodeSpec::m3_xlarge(), 1);
        assert_eq!(c.broadcast_time(1e9), 0.0);
        assert_eq!(c.allreduce_time(1e9), 0.0);
        assert_eq!(c.shuffle_time(1e9), 0.0);
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let t32 = aws32().broadcast_time(1e9);
        let t4 = ClusterNetwork::new(NodeSpec::m3_xlarge(), 4).broadcast_time(1e9);
        assert!(t32 > t4);
        assert!(t32 < t4 * 4.0, "log scaling, not linear");
    }

    #[test]
    fn allreduce_approaches_2x_bandwidth_cost() {
        let c = aws32();
        let bytes = 10e9;
        let t = c.allreduce_time(bytes);
        let floor = 2.0 * bytes / c.node_bandwidth_bytes();
        assert!(
            t >= floor * 0.9 && t < floor * 1.5,
            "t = {t}, floor = {floor}"
        );
    }

    #[test]
    fn hpc_cluster_communicates_faster_than_aws() {
        let aws = aws32();
        let hpc = ClusterNetwork::new(NodeSpec::hpc_node(), 64);
        assert!(hpc.shuffle_time(1e9) < aws.shuffle_time(1e9));
    }

    #[test]
    fn total_gflops_scales_with_nodes() {
        let c = aws32();
        assert!(
            (c.total_gflops(0.5) - 32.0 * NodeSpec::m3_xlarge().effective_gflops(0.5)).abs() < 1e-6
        );
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let c = aws32();
        assert_eq!(c.broadcast_time(0.0), 0.0);
        assert_eq!(c.allreduce_time(0.0), 0.0);
        assert_eq!(c.shuffle_time(0.0), 0.0);
    }
}

//! Compressed Sparse Column (CSC) matrix.
//!
//! The update-Θ half of an ALS iteration walks `R` column by column
//! (equation (3) of the paper).  Rather than materializing `Rᵀ` we convert
//! once to CSC and reuse it every iteration.

use crate::{Csr, Entry, SparseError};

/// A sparse matrix in Compressed Sparse Column form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    n_rows: u32,
    n_cols: u32,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csc {
    /// Builds a CSC matrix from raw arrays, validating structural invariants.
    pub fn from_raw(
        n_rows: u32,
        n_cols: u32,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != n_cols as usize + 1 {
            return Err(SparseError::InconsistentLength {
                what: "col_ptr",
                expected: n_cols as usize + 1,
                got: col_ptr.len(),
            });
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::InconsistentLength {
                what: "row_idx/values",
                expected: values.len(),
                got: row_idx.len(),
            });
        }
        if *col_ptr.last().unwrap_or(&0) != values.len() {
            return Err(SparseError::InconsistentLength {
                what: "col_ptr[last]",
                expected: values.len(),
                got: *col_ptr.last().unwrap_or(&0),
            });
        }
        for (i, w) in col_ptr.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(SparseError::NonMonotonicPtr { at: i + 1 });
            }
        }
        for &r in &row_idx {
            if r >= n_rows {
                return Err(SparseError::RowOutOfBounds { row: r, n_rows });
            }
        }
        Ok(Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Builds the CSC form of a CSR matrix (a transpose of the storage layout).
    pub fn from_csr(csr: &Csr) -> Self {
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let nnz = csr.nnz();
        let mut col_counts = vec![0usize; n_cols as usize + 1];
        for &c in csr.col_idx() {
            col_counts[c as usize + 1] += 1;
        }
        for i in 1..col_counts.len() {
            col_counts[i] += col_counts[i - 1];
        }
        let col_ptr = col_counts.clone();
        let mut cursor = col_counts;
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        for u in 0..n_rows {
            let (cols, vals) = csr.row(u);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let pos = cursor[c as usize];
                row_idx[pos] = u;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows `m`.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns `n`.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored non-zeros `Nz`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (`n + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array (`Nz` entries).
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// Value array (`Nz` entries).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of non-zeros in column `v` (the paper's `n_{θ_v}`).
    pub fn nnz_col(&self, v: u32) -> usize {
        let v = v as usize;
        self.col_ptr[v + 1] - self.col_ptr[v]
    }

    /// Returns column `v` as parallel slices of row indices and values.
    pub fn col(&self, v: u32) -> (&[u32], &[f32]) {
        let v = v as usize;
        let (s, e) = (self.col_ptr[v], self.col_ptr[v + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// Iterates over `(row, col, value)` triplets in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        (0..self.n_cols).flat_map(move |v| {
            let (rows, vals) = self.col(v);
            rows.iter()
                .zip(vals.iter())
                .map(move |(&r, &x)| Entry::new(r, v, x))
        })
    }

    /// Converts back to CSR form.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for e in self.iter() {
            coo.push(e.row, e.col, e.val)
                .expect("CSC indices are validated at construction");
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample_csr() -> Csr {
        let mut c = Coo::new(3, 4);
        c.push(0, 1, 1.0).unwrap();
        c.push(2, 3, 2.0).unwrap();
        c.push(1, 0, 3.0).unwrap();
        c.push(0, 0, 4.0).unwrap();
        c.to_csr()
    }

    #[test]
    fn from_csr_builds_columns() {
        let csc = sample_csr().to_csc();
        assert_eq!(csc.nnz(), 4);
        assert_eq!(csc.col_ptr(), &[0, 2, 3, 3, 4]);
        assert_eq!(csc.col(0).0, &[0, 1]);
        assert_eq!(csc.col(0).1, &[4.0, 3.0]);
        assert_eq!(csc.nnz_col(2), 0);
        assert_eq!(csc.nnz_col(3), 1);
    }

    #[test]
    fn roundtrip_csr_csc_csr() {
        let csr = sample_csr();
        assert_eq!(csr, csr.to_csc().to_csr());
    }

    #[test]
    fn iter_is_column_major() {
        let csc = sample_csr().to_csc();
        let keys: Vec<(u32, u32)> = csc.iter().map(|e| (e.row, e.col)).collect();
        assert_eq!(keys, vec![(0, 0), (1, 0), (0, 1), (2, 3)]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Csc::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 9], vec![1.0, 2.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn csc_matches_csr_transpose_structure() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        let t = csr.transpose();
        // R in CSC has the same arrays as Rᵀ in CSR.
        assert_eq!(csc.col_ptr(), t.row_ptr());
        assert_eq!(csc.row_idx(), t.col_idx());
        assert_eq!(csc.values(), t.values());
    }
}

//! One function per table/figure of the cuMF paper.
//!
//! Every experiment follows the same recipe the DESIGN.md substitution table
//! describes: *numerics* (RMSE trajectories) come from real runs of the
//! engines/baselines on scaled-down synthetic instances of the paper's data
//! sets, while the *time axis* is priced at full paper scale with the GPU
//! cost model (`cumf_core::costmodel`) and the cluster cost model
//! (`cumf_cluster::models`).

use cumf_baselines::libmf::LibMfConfig;
use cumf_baselines::nomad::NomadConfig;
use cumf_baselines::{Engine, LibMfSgd, NomadSgd};
use cumf_cluster::models::BaselineSystem;
use cumf_cluster::pricing::CostComparison;
use cumf_core::als::mo::side_update_time;
use cumf_core::als::BaseAls;
use cumf_core::config::{AlsConfig, MemoryOptConfig};
use cumf_core::costmodel::{cumf_iteration_cost, table3, ClusterConfig, Table3Row};
use cumf_core::loss;
use cumf_core::planner::ProblemDims;
use cumf_core::reduce::{reduction_time, ReductionScheme};
use cumf_data::datasets::{DatasetSpec, PaperDataset};
use cumf_data::synth::SyntheticConfig;
use cumf_data::train_test_split;
use cumf_gpu_sim::occupancy::{mo_als_regs_per_thread, mo_als_shared_bytes};
use cumf_gpu_sim::{DeviceSpec, MemoryTableRow, Occupancy, PcieTopology, TimingModel};

/// Knobs shared by the convergence experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Scale factor applied to the Netflix descriptor for the numerics runs.
    pub netflix_scale: f64,
    /// Scale factor for YahooMusic.
    pub yahoo_scale: f64,
    /// Scale factor for Hugewiki.
    pub hugewiki_scale: f64,
    /// Latent dimension used for the *numerics* runs (the time axis always
    /// uses the paper's `f`, typically 100).
    pub f_run: usize,
    /// ALS iterations per convergence run.
    pub als_iterations: usize,
    /// SGD epochs per baseline convergence run.
    pub sgd_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            netflix_scale: 0.01,
            yahoo_scale: 0.004,
            hugewiki_scale: 0.001,
            f_run: 32,
            als_iterations: 10,
            sgd_epochs: 30,
            seed: 2016,
        }
    }
}

impl ExperimentConfig {
    /// A much smaller configuration used by unit tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            netflix_scale: 0.002,
            yahoo_scale: 0.001,
            hugewiki_scale: 0.0003,
            f_run: 16,
            als_iterations: 3,
            sgd_epochs: 4,
            seed: 2016,
        }
    }
}

/// One point of a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Cumulative (full-scale, simulated/modelled) seconds.
    pub time_s: f64,
    /// Test RMSE at that time.
    pub rmse: f64,
}

/// A labelled convergence curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSeries {
    /// Series label, e.g. `"cuMF (1 GPU)"`.
    pub label: String,
    /// Curve points in time order.
    pub points: Vec<ConvergencePoint>,
}

impl ConvergenceSeries {
    /// Final (best) RMSE of the series.
    pub fn final_rmse(&self) -> f64 {
        self.points.last().map(|p| p.rmse).unwrap_or(f64::NAN)
    }

    /// First time at which the series reaches `target` RMSE, if ever.
    pub fn time_to_rmse(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.rmse <= target)
            .map(|p| p.time_s)
    }
}

/// A figure: one or more series on one data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure identifier, e.g. `"Figure 6 (Netflix)"`.
    pub title: String,
    /// The curves.
    pub series: Vec<ConvergenceSeries>,
}

// ---------------------------------------------------------------------------
// Shared runners
// ---------------------------------------------------------------------------

/// Subtracts the training-set global mean from both halves of a split —
/// the standard offset handling for bias-free MF (cuMF, libMF and NOMAD all
/// train on mean-centered ratings in practice).  Without it, weighted-λ
/// regularization shrinks sparse rows toward a prediction of 0 while the
/// data sits around the rating-scale midpoint, and test RMSE measures that
/// offset instead of model quality.  Residual RMSE is unchanged by the
/// shift, so trajectories stay comparable across systems.
fn center_split(
    train: &cumf_sparse::Csr,
    test: &[cumf_sparse::Entry],
) -> (cumf_sparse::Csr, Vec<cumf_sparse::Entry>) {
    let nnz = train.nnz();
    let mean = if nnz == 0 {
        0.0
    } else {
        (train.values().iter().map(|&v| v as f64).sum::<f64>() / nnz as f64) as f32
    };
    let mut coo = cumf_sparse::Coo::with_capacity(train.n_rows(), train.n_cols(), nnz);
    for e in train.iter() {
        coo.push(e.row, e.col, e.val - mean)
            .expect("indices already validated");
    }
    let test = test
        .iter()
        .map(|e| cumf_sparse::Entry::new(e.row, e.col, e.val - mean))
        .collect();
    (coo.to_csr(), test)
}

/// Runs ALS on a scaled instance of `spec` and returns the per-iteration
/// test-RMSE trajectory (numerics only; no time axis).
pub fn als_rmse_trajectory(
    spec: &DatasetSpec,
    scale: f64,
    f_run: usize,
    lambda: f32,
    iterations: usize,
    seed: u64,
) -> Vec<f64> {
    let scaled = spec.scaled(scale);
    let data = SyntheticConfig {
        rank: 8,
        noise_std: 0.3,
        ..SyntheticConfig::from_spec(&scaled, seed)
    }
    .generate();
    let raw = train_test_split(&data.ratings, 0.1, seed);
    let (train, test) = center_split(&raw.train, &raw.test);
    let config = AlsConfig {
        f: f_run,
        lambda,
        iterations,
        track_rmse: false,
        ..Default::default()
    };
    let mut engine = BaseAls::new(config, train);
    let mut out = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        engine.iterate();
        out.push(loss::rmse(engine.x(), engine.theta(), &test));
    }
    out
}

/// Runs an SGD-family baseline on the same scaled instance and returns its
/// per-epoch test-RMSE trajectory.
pub fn sgd_rmse_trajectory(
    solver_kind: SgdBaselineKind,
    spec: &DatasetSpec,
    scale: f64,
    f_run: usize,
    lambda: f32,
    epochs: usize,
    seed: u64,
) -> Vec<f64> {
    let scaled = spec.scaled(scale);
    let data = SyntheticConfig {
        rank: 8,
        noise_std: 0.3,
        ..SyntheticConfig::from_spec(&scaled, seed)
    }
    .generate();
    let raw = train_test_split(&data.ratings, 0.1, seed);
    let (train, test) = center_split(&raw.train, &raw.test);
    let mut solver: Box<dyn Engine> = match solver_kind {
        SgdBaselineKind::LibMf => Box::new(LibMfSgd::new(
            LibMfConfig {
                f: f_run,
                lambda,
                threads: 4,
                seed,
                ..Default::default()
            },
            &train,
        )),
        SgdBaselineKind::Nomad => Box::new(NomadSgd::new(
            NomadConfig {
                f: f_run,
                lambda,
                workers: 4,
                seed,
                ..Default::default()
            },
            &train,
        )),
    };
    let mut out = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        solver.train_sweep();
        out.push(solver.rmse(&test));
    }
    out
}

/// Which SGD baseline to run for a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgdBaselineKind {
    /// libMF-style blocked SGD.
    LibMf,
    /// NOMAD-style asynchronous SGD.
    Nomad,
}

fn series_from_trajectory(
    label: &str,
    rmse: &[f64],
    seconds_per_iteration: f64,
) -> ConvergenceSeries {
    ConvergenceSeries {
        label: label.to_string(),
        points: rmse
            .iter()
            .enumerate()
            .map(|(i, &r)| ConvergencePoint {
                time_s: (i + 1) as f64 * seconds_per_iteration,
                rmse: r,
            })
            .collect(),
    }
}

/// Full-scale per-iteration time of cuMF on `n_gpus` Titan X cards for the
/// given data set at the paper's `f`.
pub fn cumf_full_scale_iteration_s(
    spec: &DatasetSpec,
    n_gpus: usize,
    opts: MemoryOptConfig,
) -> f64 {
    let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
    let mut cluster = ClusterConfig::titan_x(n_gpus);
    cluster.opts = opts;
    cumf_iteration_cost(&dims, &cluster).total_s()
}

// ---------------------------------------------------------------------------
// Figure 2 / Tables 4, 5
// ---------------------------------------------------------------------------

/// One point of Figure 2: the scale of MF data sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Point {
    /// Data set name.
    pub name: &'static str,
    /// Number of model parameters `(m + n) · f`.
    pub model_parameters: u64,
    /// Number of ratings `Nz`.
    pub nz: u64,
}

/// Figure 2: every Table 5 data set positioned by model size and rating count.
pub fn fig2() -> Vec<Fig2Point> {
    PaperDataset::all()
        .iter()
        .map(|d| {
            let s = d.spec();
            Fig2Point {
                name: s.name,
                model_parameters: s.model_parameters(),
                nz: s.nz,
            }
        })
        .collect()
}

/// Table 4: the programmable GPU memories.
pub fn table4() -> Vec<MemoryTableRow> {
    DeviceSpec::memory_table()
}

/// Table 5: the data set descriptors.
pub fn table5() -> Vec<DatasetSpec> {
    PaperDataset::all().iter().map(|d| d.spec()).collect()
}

/// Table 3 instantiated for a named data set at the paper's `f`.
pub fn table3_for(dataset: PaperDataset, batch: u64) -> [Table3Row; 3] {
    let s = dataset.spec();
    table3(
        s.m as f64,
        s.n as f64,
        s.nz as f64,
        s.f as f64,
        batch as f64,
    )
}

// ---------------------------------------------------------------------------
// Figure 6: cuMF vs NOMAD vs libMF on one machine
// ---------------------------------------------------------------------------

/// Figure 6: test-RMSE convergence of cuMF (1 GPU) vs NOMAD and libMF
/// (30 CPU cores) on Netflix and YahooMusic.
pub fn fig6(cfg: &ExperimentConfig) -> Vec<Figure> {
    let mut figures = Vec::new();
    for (dataset, scale) in [
        (PaperDataset::Netflix, cfg.netflix_scale),
        (PaperDataset::YahooMusic, cfg.yahoo_scale),
    ] {
        let spec = dataset.spec();
        let als_rmse = als_rmse_trajectory(
            &spec,
            scale,
            cfg.f_run,
            spec.lambda,
            cfg.als_iterations,
            cfg.seed,
        );
        let libmf_rmse = sgd_rmse_trajectory(
            SgdBaselineKind::LibMf,
            &spec,
            scale,
            cfg.f_run,
            spec.lambda,
            cfg.sgd_epochs,
            cfg.seed,
        );
        let nomad_rmse = sgd_rmse_trajectory(
            SgdBaselineKind::Nomad,
            &spec,
            scale,
            cfg.f_run,
            spec.lambda,
            cfg.sgd_epochs,
            cfg.seed,
        );

        let cumf_iter_s = cumf_full_scale_iteration_s(&spec, 1, MemoryOptConfig::optimized());
        let libmf_epoch_s = BaselineSystem::LibMfSingle30
            .iteration_time(&spec, spec.f)
            .total_s();
        let nomad_epoch_s = BaselineSystem::NomadSingle30
            .iteration_time(&spec, spec.f)
            .total_s();

        figures.push(Figure {
            title: format!("Figure 6 ({})", spec.name),
            series: vec![
                series_from_trajectory("cuMF (1 GPU)", &als_rmse, cumf_iter_s),
                series_from_trajectory("NOMAD (30 cores)", &nomad_rmse, nomad_epoch_s),
                series_from_trajectory("libMF (30 cores)", &libmf_rmse, libmf_epoch_s),
            ],
        });
    }
    figures
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: memory-optimization ablations
// ---------------------------------------------------------------------------

/// Figure 7 (register ablation) or Figure 8 (texture ablation): the same
/// RMSE trajectory replayed against the per-iteration time of the optimized
/// and the ablated configuration.
pub fn memory_opt_ablation(cfg: &ExperimentConfig, ablate_registers: bool) -> Vec<Figure> {
    let (label_off, off_opts) = if ablate_registers {
        (
            "cuMF without registers",
            MemoryOptConfig::without_registers(),
        )
    } else {
        ("cuMF without texture", MemoryOptConfig::without_texture())
    };
    let figure_name = if ablate_registers {
        "Figure 7"
    } else {
        "Figure 8"
    };

    let mut figures = Vec::new();
    for (dataset, scale) in [
        (PaperDataset::Netflix, cfg.netflix_scale),
        (PaperDataset::YahooMusic, cfg.yahoo_scale),
    ] {
        let spec = dataset.spec();
        let rmse = als_rmse_trajectory(
            &spec,
            scale,
            cfg.f_run,
            spec.lambda,
            cfg.als_iterations,
            cfg.seed,
        );
        let on_s = cumf_full_scale_iteration_s(&spec, 1, MemoryOptConfig::optimized());
        let off_s = cumf_full_scale_iteration_s(&spec, 1, off_opts);
        figures.push(Figure {
            title: format!("{figure_name} ({})", spec.name),
            series: vec![
                series_from_trajectory("cuMF (all optimizations)", &rmse, on_s),
                series_from_trajectory(label_off, &rmse, off_s),
            ],
        });
    }
    figures
}

/// Figure 7: convergence with and without register accumulation.
pub fn fig7(cfg: &ExperimentConfig) -> Vec<Figure> {
    memory_opt_ablation(cfg, true)
}

/// Figure 8: convergence with and without the texture cache.
pub fn fig8(cfg: &ExperimentConfig) -> Vec<Figure> {
    memory_opt_ablation(cfg, false)
}

// ---------------------------------------------------------------------------
// Figure 9: multi-GPU scalability
// ---------------------------------------------------------------------------

/// Figure 9: convergence on one, two and four GPUs.
pub fn fig9(cfg: &ExperimentConfig) -> Vec<Figure> {
    let mut figures = Vec::new();
    for (dataset, scale) in [
        (PaperDataset::Netflix, cfg.netflix_scale),
        (PaperDataset::YahooMusic, cfg.yahoo_scale),
    ] {
        let spec = dataset.spec();
        let rmse = als_rmse_trajectory(
            &spec,
            scale,
            cfg.f_run,
            spec.lambda,
            cfg.als_iterations,
            cfg.seed,
        );
        let series = [1usize, 2, 4]
            .iter()
            .map(|&g| {
                let t = cumf_full_scale_iteration_s(&spec, g, MemoryOptConfig::optimized());
                series_from_trajectory(
                    &format!("cuMF ({g} GPU{})", if g > 1 { "s" } else { "" }),
                    &rmse,
                    t,
                )
            })
            .collect();
        figures.push(Figure {
            title: format!("Figure 9 ({})", spec.name),
            series,
        });
    }
    figures
}

/// The speedups Figure 9 is summarized by in the text (§5.4): per-iteration
/// speedup of 2 and 4 GPUs over 1 GPU.
pub fn fig9_speedups(dataset: PaperDataset) -> Vec<(usize, f64)> {
    let spec = dataset.spec();
    let t1 = cumf_full_scale_iteration_s(&spec, 1, MemoryOptConfig::optimized());
    [1usize, 2, 4]
        .iter()
        .map(|&g| {
            (
                g,
                t1 / cumf_full_scale_iteration_s(&spec, g, MemoryOptConfig::optimized()),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10: Hugewiki vs multi-node NOMAD
// ---------------------------------------------------------------------------

/// Figure 10: cuMF on 4 GPUs vs NOMAD on a 64-node HPC cluster and a 32-node
/// AWS cluster, Hugewiki data.
pub fn fig10(cfg: &ExperimentConfig) -> Figure {
    let spec = PaperDataset::Hugewiki.spec();
    let als_rmse = als_rmse_trajectory(
        &spec,
        cfg.hugewiki_scale,
        cfg.f_run,
        spec.lambda,
        cfg.als_iterations,
        cfg.seed,
    );
    let nomad_rmse = sgd_rmse_trajectory(
        SgdBaselineKind::Nomad,
        &spec,
        cfg.hugewiki_scale,
        cfg.f_run,
        spec.lambda,
        cfg.sgd_epochs,
        cfg.seed,
    );

    let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
    let cumf_s = cumf_iteration_cost(&dims, &ClusterConfig::four_k80()).total_s();
    let hpc_s = BaselineSystem::NomadHpc64
        .iteration_time(&spec, spec.f)
        .total_s();
    let aws_s = BaselineSystem::NomadAws32
        .iteration_time(&spec, spec.f)
        .total_s();

    Figure {
        title: "Figure 10 (Hugewiki)".to_string(),
        series: vec![
            series_from_trajectory("cuMF (4 GPUs)", &als_rmse, cumf_s),
            series_from_trajectory("NOMAD (64-node HPC)", &nomad_rmse, hpc_s),
            series_from_trajectory("NOMAD (32-node AWS)", &nomad_rmse, aws_s),
        ],
    }
}

// ---------------------------------------------------------------------------
// Figure 11 and Table 1: very large problems, speed and cost
// ---------------------------------------------------------------------------

/// One bar of Figure 11 / one row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeScaleRow {
    /// Workload name.
    pub workload: &'static str,
    /// The baseline system being compared against.
    pub baseline: BaselineSystem,
    /// Baseline seconds per iteration from the cost model.
    pub baseline_model_s: f64,
    /// Baseline seconds per iteration as published (when known).
    pub baseline_published_s: Option<f64>,
    /// cuMF (4 × GK210) seconds per iteration from the cost model.
    pub cumf_s: f64,
    /// The paper's reported cuMF seconds per iteration.
    pub cumf_published_s: f64,
}

impl LargeScaleRow {
    /// Speedup of cuMF over the baseline, using the modelled numbers.
    pub fn modelled_speedup(&self) -> f64 {
        self.baseline_model_s / self.cumf_s
    }

    /// Speedup using the published numbers where available.
    pub fn published_speedup(&self) -> Option<f64> {
        self.baseline_published_s.map(|b| b / self.cumf_published_s)
    }
}

/// Figure 11: per-iteration time of cuMF on the three very large data sets
/// vs the original systems, plus the f = 100 run.
pub fn fig11() -> Vec<LargeScaleRow> {
    let cluster = ClusterConfig::four_k80();
    let entry = |dataset: PaperDataset, baseline: BaselineSystem, cumf_published: f64| {
        let spec = dataset.spec();
        let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
        LargeScaleRow {
            workload: spec.name,
            baseline,
            baseline_model_s: baseline.iteration_time(&spec, spec.f).total_s(),
            baseline_published_s: baseline.published_seconds_per_iteration(),
            cumf_s: cumf_iteration_cost(&dims, &cluster).total_s(),
            cumf_published_s: cumf_published,
        }
    };
    vec![
        entry(PaperDataset::SparkAls, BaselineSystem::SparkAls50, 24.0),
        entry(PaperDataset::Factorbird, BaselineSystem::Factorbird50, 92.0),
        entry(
            PaperDataset::Facebook,
            BaselineSystem::FacebookGiraph50,
            746.0,
        ),
        entry(
            PaperDataset::CumfLargest,
            BaselineSystem::FacebookGiraph50,
            3.8 * 3600.0,
        ),
    ]
}

/// Table 1: speed and cost of cuMF versus the three distributed baselines.
pub fn table1() -> Vec<CostComparison> {
    let cumf_price = cumf_cluster::node::NodeSpec::cumf_gpu_server().price_per_hour;

    // Hugewiki vs NOMAD on AWS: convergence-time comparison (ALS needs ~10
    // iterations, SGD ~40 epochs to reach the same RMSE — the ratio Figure 10
    // exhibits).
    let hugewiki = PaperDataset::Hugewiki.spec();
    let dims = ProblemDims::new(hugewiki.m, hugewiki.n, hugewiki.nz, hugewiki.f as u64);
    let cumf_hugewiki_total =
        cumf_iteration_cost(&dims, &ClusterConfig::four_k80()).total_s() * 10.0;
    let nomad_aws = BaselineSystem::NomadAws32;
    let nomad_total = nomad_aws.iteration_time(&hugewiki, hugewiki.f).total_s() * 40.0;

    // SparkALS and Factorbird: per-iteration comparison exactly as in the
    // paper (published numbers for both sides are also reported in
    // EXPERIMENTS.md).
    let spark = PaperDataset::SparkAls.spec();
    let spark_dims = ProblemDims::new(spark.m, spark.n, spark.nz, spark.f as u64);
    let cumf_spark = cumf_iteration_cost(&spark_dims, &ClusterConfig::four_k80()).total_s();
    let factorbird = PaperDataset::Factorbird.spec();
    let fb_dims = ProblemDims::new(
        factorbird.m,
        factorbird.n,
        factorbird.nz,
        factorbird.f as u64,
    );
    let cumf_fb = cumf_iteration_cost(&fb_dims, &ClusterConfig::four_k80()).total_s();

    vec![
        CostComparison {
            baseline_name: "NOMAD".into(),
            baseline_node: "m3.xlarge".into(),
            baseline_nodes: 32,
            baseline_price_per_hour: nomad_aws.cluster().node.price_per_hour,
            baseline_seconds: nomad_total,
            cumf_price_per_hour: cumf_price,
            cumf_seconds: cumf_hugewiki_total,
        },
        CostComparison {
            baseline_name: "SparkALS".into(),
            baseline_node: "m3.2xlarge".into(),
            baseline_nodes: 50,
            baseline_price_per_hour: BaselineSystem::SparkAls50.cluster().node.price_per_hour,
            baseline_seconds: BaselineSystem::SparkAls50
                .iteration_time(&spark, spark.f)
                .total_s(),
            cumf_price_per_hour: cumf_price,
            cumf_seconds: cumf_spark,
        },
        CostComparison {
            baseline_name: "Factorbird".into(),
            baseline_node: "c3.2xlarge".into(),
            baseline_nodes: 50,
            baseline_price_per_hour: BaselineSystem::Factorbird50.cluster().node.price_per_hour,
            baseline_seconds: BaselineSystem::Factorbird50
                .iteration_time(&factorbird, factorbird.f)
                .total_s(),
            cumf_price_per_hour: cumf_price,
            cumf_seconds: cumf_fb,
        },
    ]
}

// ---------------------------------------------------------------------------
// §4.2 reduction ablation and §3.3 bin-size ablation
// ---------------------------------------------------------------------------

/// One row of the reduction ablation: a scheme and its modelled time.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Topology name.
    pub topology: &'static str,
    /// Seconds to reduce one Hugewiki-sized batch of partials across 4 GPUs.
    pub seconds: f64,
}

/// The §4.2 ablation: reduce-on-one-GPU vs one-phase vs two-phase reduction
/// of a Hugewiki-sized batch of partial Hermitians on 4 GPUs.
pub fn reduction_ablation() -> Vec<ReductionRow> {
    let spec = PaperDataset::Hugewiki.spec();
    // One batch of X holds m/q rows; with the planner's q on a 12 GB card
    // this is roughly 250k rows; each row's partials are (f² + f) floats.
    let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
    let plan = cumf_iteration_cost(&dims, &ClusterConfig::four_k80()).plan_x;
    let rows_per_batch = (spec.m as f64 / plan.q.max(1) as f64).ceil();
    let f = spec.f as f64;
    let bytes_per_gpu = rows_per_batch * (f * f + f) * 4.0;

    let flat = PcieTopology::flat(4);
    let dual = PcieTopology::dual_socket(4);
    vec![
        ReductionRow {
            scheme: "reduce on one GPU",
            topology: "flat PCIe",
            seconds: reduction_time(ReductionScheme::SingleGpu, &flat, bytes_per_gpu),
        },
        ReductionRow {
            scheme: "one-phase parallel",
            topology: "flat PCIe",
            seconds: reduction_time(ReductionScheme::OnePhase, &flat, bytes_per_gpu),
        },
        ReductionRow {
            scheme: "one-phase parallel",
            topology: "dual socket",
            seconds: reduction_time(ReductionScheme::OnePhase, &dual, bytes_per_gpu),
        },
        ReductionRow {
            scheme: "two-phase topology-aware",
            topology: "dual socket",
            seconds: reduction_time(ReductionScheme::TwoPhase, &dual, bytes_per_gpu),
        },
    ]
}

/// One row of the bin-size ablation (§3.3 design choice).
#[derive(Debug, Clone, PartialEq)]
pub struct BinAblationRow {
    /// The shared-memory staging width `bin`.
    pub bin: u32,
    /// Occupancy of the `get_hermitian` launch.
    pub occupancy: f64,
    /// Simulated seconds of one full Netflix update-X + update-Θ.
    pub iteration_s: f64,
}

/// §3.3 ablation: how the shared-memory `bin` size affects occupancy and the
/// simulated iteration time at Netflix scale, f = 100.
pub fn bin_ablation() -> Vec<BinAblationRow> {
    let spec = DeviceSpec::titan_x();
    let timing = TimingModel::default();
    let netflix = PaperDataset::Netflix.spec();
    [5u32, 10, 20, 30, 40, 60, 80, 100]
        .iter()
        .map(|&bin| {
            let opts = MemoryOptConfig {
                bin,
                ..MemoryOptConfig::optimized()
            };
            let occ = Occupancy::compute(
                &spec,
                100,
                mo_als_regs_per_thread(100, true),
                mo_als_shared_bytes(100, bin),
            );
            let x = side_update_time(
                &spec,
                &timing,
                netflix.m as f64,
                netflix.nz as f64,
                netflix.n as f64,
                100,
                &opts,
            );
            let t = side_update_time(
                &spec,
                &timing,
                netflix.n as f64,
                netflix.nz as f64,
                netflix.m as f64,
                100,
                &opts,
            );
            BinAblationRow {
                bin,
                occupancy: occ.occupancy,
                iteration_s: x.total() + t.total(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_and_tables_have_all_datasets() {
        assert_eq!(fig2().len(), 7);
        assert_eq!(table5().len(), 7);
        assert_eq!(table4().len(), 4);
        let t3 = table3_for(PaperDataset::Netflix, 1000);
        assert_eq!(t3.len(), 3);
        assert!(t3[2].get_hermitian_a_flops > t3[0].get_hermitian_a_flops);
    }

    #[test]
    fn fig9_speedup_is_close_to_linear() {
        // §5.4: "the speedup is 3.8x when using four GPUs".
        let speedups = fig9_speedups(PaperDataset::Netflix);
        let four = speedups.iter().find(|(g, _)| *g == 4).unwrap().1;
        assert!(four > 2.5 && four <= 4.0, "4-GPU speedup {four}");
    }

    #[test]
    fn fig7_ablation_slows_netflix_more_than_yahoo() {
        // §5.3: Netflix suffers more from dropping registers than YahooMusic.
        let netflix = PaperDataset::Netflix.spec();
        let yahoo = PaperDataset::YahooMusic.spec();
        let ratio = |spec: &DatasetSpec| {
            cumf_full_scale_iteration_s(spec, 1, MemoryOptConfig::without_registers())
                / cumf_full_scale_iteration_s(spec, 1, MemoryOptConfig::optimized())
        };
        let netflix_penalty = ratio(&netflix);
        let yahoo_penalty = ratio(&yahoo);
        // The headline effect: register blocking is the single biggest win
        // (the paper reports 2.5x on Netflix, 1.7x on YahooMusic).  The
        // secondary Netflix-vs-YahooMusic asymmetry is weaker in our traffic
        // model (see EXPERIMENTS.md), so only require it not to invert badly.
        assert!(
            netflix_penalty > 1.3,
            "Netflix register penalty {netflix_penalty}"
        );
        assert!(
            yahoo_penalty > 1.3,
            "YahooMusic register penalty {yahoo_penalty}"
        );
        assert!(
            netflix_penalty > 0.8 * yahoo_penalty,
            "Netflix ({netflix_penalty}) should not be hurt much less than YahooMusic ({yahoo_penalty})"
        );
    }

    #[test]
    fn fig8_texture_ablation_costs_tens_of_percent() {
        let netflix = PaperDataset::Netflix.spec();
        let on = cumf_full_scale_iteration_s(&netflix, 1, MemoryOptConfig::optimized());
        let off = cumf_full_scale_iteration_s(&netflix, 1, MemoryOptConfig::without_texture());
        let penalty = off / on;
        assert!(penalty > 1.1 && penalty < 2.5, "texture penalty {penalty}");
    }

    #[test]
    fn fig11_cumf_beats_sparkals_and_factorbird() {
        let rows = fig11();
        let spark = rows.iter().find(|r| r.workload == "SparkALS").unwrap();
        assert!(
            spark.modelled_speedup() > 3.0,
            "SparkALS speedup {}",
            spark.modelled_speedup()
        );
        let fb = rows.iter().find(|r| r.workload == "Factorbird").unwrap();
        assert!(
            fb.modelled_speedup() > 2.0,
            "Factorbird speedup {}",
            fb.modelled_speedup()
        );
        // The f=100 run is the most expensive single workload.
        let largest = rows
            .iter()
            .find(|r| r.workload == "cuMF (largest)")
            .unwrap();
        assert!(
            largest.cumf_s
                > rows
                    .iter()
                    .find(|r| r.workload == "Facebook")
                    .unwrap()
                    .cumf_s
        );
    }

    #[test]
    fn table1_reproduces_the_cost_efficiency_claim() {
        // "33-100 times as cost-efficient": with modelled times the exact
        // multiples shift, but every row must show cuMF costing a small
        // fraction of the baseline.
        for row in table1() {
            assert!(
                row.speedup() > 2.0,
                "{}: speedup {}",
                row.baseline_name,
                row.speedup()
            );
            assert!(
                row.cost_fraction() < 0.2,
                "{}: cost fraction {}",
                row.baseline_name,
                row.cost_fraction()
            );
        }
    }

    #[test]
    fn reduction_ablation_matches_the_papers_ordering() {
        let rows = reduction_ablation();
        let get = |scheme: &str, topo: &str| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.topology == topo)
                .unwrap()
                .seconds
        };
        let single = get("reduce on one GPU", "flat PCIe");
        let one_flat = get("one-phase parallel", "flat PCIe");
        let one_dual = get("one-phase parallel", "dual socket");
        let two_dual = get("two-phase topology-aware", "dual socket");
        assert!(
            single / one_flat > 1.5,
            "parallel reduction should be >1.5x faster"
        );
        assert!(
            one_dual / two_dual > 1.2,
            "two-phase should be >1.2x faster on dual socket"
        );
    }

    #[test]
    fn bin_ablation_shows_the_occupancy_tradeoff() {
        let rows = bin_ablation();
        let bin20 = rows.iter().find(|r| r.bin == 20).unwrap();
        let bin100 = rows.iter().find(|r| r.bin == 100).unwrap();
        // Very large bins crater occupancy (and therefore speed).
        assert!(bin100.occupancy < bin20.occupancy);
        assert!(bin100.iteration_s > bin20.iteration_s);
    }

    #[test]
    fn quick_fig6_runs_and_als_converges_faster_than_sgd() {
        let cfg = ExperimentConfig::quick();
        let figures = fig6(&cfg);
        assert_eq!(figures.len(), 2);
        for fig in &figures {
            assert_eq!(fig.series.len(), 3);
            let cumf = &fig.series[0];
            assert!(
                cumf.final_rmse() < 1.5,
                "{}: cuMF rmse {}",
                fig.title,
                cumf.final_rmse()
            );
            for s in &fig.series {
                assert!(s.points.windows(2).all(|w| w[1].time_s > w[0].time_s));
            }
        }
    }

    #[test]
    fn quick_fig10_has_three_series() {
        let fig = fig10(&ExperimentConfig::quick());
        assert_eq!(fig.series.len(), 3);
        // Figure 10's shape: an ALS run (≈10 iterations) on 4 GPUs finishes
        // well before an SGD run (≈40 epochs) on the 32-node AWS cluster,
        // and in the same ballpark as the 64-node HPC cluster.
        let spec = PaperDataset::Hugewiki.spec();
        let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
        let cumf_total = cumf_iteration_cost(&dims, &ClusterConfig::four_k80()).total_s() * 10.0;
        let aws_total = BaselineSystem::NomadAws32
            .iteration_time(&spec, spec.f)
            .total_s()
            * 40.0;
        let hpc_total = BaselineSystem::NomadHpc64
            .iteration_time(&spec, spec.f)
            .total_s()
            * 40.0;
        assert!(
            aws_total > cumf_total * 2.0,
            "cuMF {cumf_total} s vs NOMAD-AWS {aws_total} s"
        );
        assert!(
            hpc_total > cumf_total * 0.2 && hpc_total < cumf_total * 5.0,
            "cuMF {cumf_total} s should be in the same ballpark as NOMAD-HPC {hpc_total} s"
        );
    }
}

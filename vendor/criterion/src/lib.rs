//! API-compatible shim for [criterion](https://docs.rs/criterion).
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of criterion's API that the `cumf-bench` benches use:
//! [`Criterion::benchmark_group`] / `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark runs a
//! small fixed number of timed iterations (after one warm-up) and prints the
//! median wall-clock time.  Good enough to spot order-of-magnitude
//! regressions; swap the real crate back in via the root `Cargo.toml` when a
//! registry is available.

use std::fmt;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Workload size of one benchmark iteration, used to derive throughput
/// (criterion's `Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements (ratings, requests,
    /// systems, …); reported as `elem/s`.
    Elements(u64),
    /// Iteration moves this many bytes; reported as `B/s` (binary units).
    Bytes(u64),
}

fn format_rate(per_second: f64, unit_elements: bool) -> String {
    if unit_elements {
        match per_second {
            r if r >= 1e9 => format!("{:.3} Gelem/s", r / 1e9),
            r if r >= 1e6 => format!("{:.3} Melem/s", r / 1e6),
            r if r >= 1e3 => format!("{:.3} Kelem/s", r / 1e3),
            r => format!("{r:.3} elem/s"),
        }
    } else {
        const KIB: f64 = 1024.0;
        match per_second {
            r if r >= KIB * KIB * KIB => format!("{:.3} GiB/s", r / (KIB * KIB * KIB)),
            r if r >= KIB * KIB => format!("{:.3} MiB/s", r / (KIB * KIB)),
            r if r >= KIB => format!("{:.3} KiB/s", r / KIB),
            r => format!("{r:.3} B/s"),
        }
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to `bench_function`; its [`Bencher::iter`]
/// runs and times the workload.
pub struct Bencher {
    samples: usize,
    median_ns: Option<u128>,
}

impl Bencher {
    /// Times `f`, storing the median of a few samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = Some(times[times.len() / 2]);
    }
}

fn format_ns(ns: u128) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        median_ns: None,
    };
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) => {
            let rate = throughput
                .filter(|_| ns > 0)
                .map(|t| {
                    let (count, elements) = match t {
                        Throughput::Elements(n) => (n, true),
                        Throughput::Bytes(n) => (n, false),
                    };
                    let per_second = count as f64 / (ns as f64 * 1e-9);
                    format!("  thrpt {}", format_rate(per_second, elements))
                })
                .unwrap_or_default();
            println!("{label:<50} median {}{rate}", format_ns(ns));
        }
        None => println!("{label:<50} (no iter() call)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion enforces >= 10; the shim intentionally runs far fewer
        // samples, capped so `cargo bench` stays fast without the real
        // crate's statistics.
        self.samples = n.clamp(1, 10);
        self
    }

    /// Declares the per-iteration workload of the benchmarks that follow;
    /// their report gains an elements/sec (or bytes/sec) rate.  As with the
    /// real criterion, call again before the next benchmark to change it.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.samples, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (printing-only in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 5,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().id, 5, None, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        run_one("smoke", 3, None, |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }

    #[test]
    fn bencher_reports_throughput() {
        run_one("smoke_thrpt", 3, Some(Throughput::Elements(1000)), |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn rates_format_with_scaled_units() {
        assert_eq!(format_rate(1.5e9, true), "1.500 Gelem/s");
        assert_eq!(format_rate(2.5e6, true), "2.500 Melem/s");
        assert_eq!(format_rate(999.0, true), "999.000 elem/s");
        assert_eq!(format_rate(3.0 * 1024.0 * 1024.0, false), "3.000 MiB/s");
        assert_eq!(format_rate(512.0, false), "512.000 B/s");
    }
}

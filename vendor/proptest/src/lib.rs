//! API-compatible shim for [proptest](https://docs.rs/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest that `cumf-rs`'s property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range strategies (`lo..hi`, `lo..=hi`) over the numeric primitives,
//! * tuple strategies up to arity 6, [`Just`], and
//!   [`collection::vec`] with exact or ranged lengths,
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`) and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's name, so failures reproduce across
//! runs) and failing cases are **not shrunk** — the failing input is simply
//! reported by the assertion message.  Swap the real crate back in via the
//! root `Cargo.toml` when a registry is available.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use ::rand as __rand;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

// Floats only support half-open ranges (matching the real proptest, where
// `lo..=hi` on floats is rarely used and our tests never use it).
impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::prelude::*;
    use std::ops::{Range, RangeInclusive};

    /// Lengths accepted by [`vec()`]: an exact `usize`, `lo..hi`, or
    /// `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// FNV-1a hash of the test name, used as the base RNG seed so every test
/// draws a distinct but reproducible input stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base_seed = $crate::seed_from_name(stringify!($name));
            for case in 0..config.cases as u64 {
                let mut rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Asserts a property holds; reported as a normal test failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two values are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when `cond` is false (no retry in the shim; the
/// case simply passes vacuously).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    //! Everything a proptest file usually imports.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.0f64..1.0, z in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(0u32..10, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_threads_dependencies((n, v) in (1usize..6)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..100, n)))) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}

//! Algorithm 2: MO-ALS, the memory-optimized single-GPU engine.
//!
//! The numerics are identical to [`crate::als::base`]; what this engine adds
//! is the *simulated GPU execution*: every `get_hermitian` / `batch_solve`
//! launch is priced by the traffic it would generate on a real card, which
//! depends on the memory-optimization toggles:
//!
//! * **texture** (Algorithm 2 line 3): `Θᵀ` gathers go through the read-only
//!   texture cache instead of scattered global loads;
//! * **shared-memory staging** (lines 5–10): a `f × bin` tile of `Θᵀ_u` is
//!   staged per thread block, trading occupancy for reuse;
//! * **registers** (line 8 and §3.4): the `f × f` accumulator `A_u` lives in
//!   the register file and touches global memory once per row instead of
//!   once per staged tile.
//!
//! Disabling each of these reproduces the ablations of Figures 7 and 8.

use crate::als::kernels::solve_side_instrumented;
use crate::config::{AlsConfig, MemoryOptConfig};
use crate::instrument::TrainMetrics;
use crate::loss;
use cumf_gpu_sim::occupancy::{mo_als_regs_per_thread, mo_als_shared_bytes};
use cumf_gpu_sim::{DeviceSpec, GpuCluster, KernelTraffic, Occupancy, TimingModel};
use cumf_linalg::FactorMatrix;
use cumf_sparse::Csr;
use std::sync::Arc;

/// Approximate on-chip read-only cache available to texture fetches
/// (per-SM texture/L1 plus the shared L2), in bytes.
const TEXTURE_CACHE_BYTES: f64 = 4.0 * 1024.0 * 1024.0;

/// Traffic of one `get_hermitian` pass solving `rows` rows with `nnz`
/// ratings against a fixed factor matrix of `cols` vectors of rank `f`.
///
/// The byte accounting follows Table 3 of the paper; the split between the
/// memory spaces follows §3.3.
pub fn get_hermitian_traffic(
    rows: f64,
    nnz: f64,
    cols: f64,
    f: f64,
    opts: &MemoryOptConfig,
) -> KernelTraffic {
    let fbytes = 4.0;
    // Arithmetic: f(f+1)/2 multiply-adds per rating for A_u, plus 2f per
    // rating for B_u, plus the final λI addition (negligible).
    let flops = nnz * f * (f + 1.0) + nnz * 2.0 * f;

    // Gathering θ_v for every rating: f floats per rating.  The CSR
    // structure itself (column index + value) streams from global memory.
    let gather_bytes = nnz * f * fbytes;
    let csr_bytes = nnz * 2.0 * fbytes;

    // Texture-cache hit rate: compulsory misses load each of the `cols`
    // vectors once; capacity misses grow as the working set (cols·f floats)
    // exceeds the on-chip cache.
    let working_set = cols * f * fbytes;
    let compulsory_miss = (cols / nnz).min(1.0);
    let capacity_hit = (TEXTURE_CACHE_BYTES / working_set).min(1.0);
    let hit_rate = ((1.0 - compulsory_miss) * (0.55 + 0.40 * capacity_hit)).clamp(0.0, 0.95);

    // Accumulator traffic: with register blocking A_u is written to global
    // memory once per row; without it every staged tile spills the f×f
    // accumulator to global memory and reads it back.
    let bin = opts.bin.max(1) as f64;
    let final_writes = rows * f * f * fbytes;
    let spill_bytes = if opts.use_registers {
        0.0
    } else {
        let tiles = (nnz / bin) + rows * 0.5;
        tiles * f * f * fbytes * 2.0
    };

    // Shared-memory staging: each rating's θ_v is written into shared once.
    // Reads benefit from warp-level broadcast (all f threads consume the
    // same θ_v[j] in one transaction), so the read traffic is ~2f per
    // rating, not f²/2.
    let shared_write = nnz * f * fbytes;
    let shared_read = nnz * 2.0 * f * fbytes;

    // Right-hand side: B_u accumulates in registers/shared and is written
    // once per row.
    let b_writes = rows * f * fbytes;

    let mut t = KernelTraffic {
        flops,
        global_write_bytes: final_writes + b_writes + spill_bytes * 0.5,
        global_read_bytes: csr_bytes + spill_bytes * 0.5,
        shared_read_bytes: shared_read,
        shared_write_bytes: shared_write,
        register_bytes: if opts.use_registers {
            nnz * f * f * fbytes
        } else {
            0.0
        },
        ..KernelTraffic::new()
    };
    if opts.use_texture {
        t.texture_read_bytes = gather_bytes;
        t.texture_hit_rate = hit_rate;
    } else {
        t.global_read_bytes += gather_bytes;
    }
    t
}

/// Traffic of the batched Cholesky solve of `rows` systems of size `f`.
pub fn batch_solve_traffic(rows: f64, f: f64) -> KernelTraffic {
    let fbytes = 4.0;
    KernelTraffic {
        // Table 3 accounts the solve as O(f³); the Cholesky factorization the
        // batched solver actually runs costs f³/3 multiply-adds plus the two
        // triangular solves (≈ f²), which is what the timing model charges.
        flops: rows * (f * f * f / 3.0 + 2.0 * f * f),
        global_read_bytes: rows * (f * f + f) * fbytes,
        global_write_bytes: rows * f * fbytes,
        ..KernelTraffic::new()
    }
}

/// Simulated time of one side update (`get_hermitian` + `batch_solve`) for
/// the given problem dimensions on one device.
pub fn side_update_time(
    spec: &DeviceSpec,
    timing: &TimingModel,
    rows: f64,
    nnz: f64,
    cols: f64,
    f: usize,
    opts: &MemoryOptConfig,
) -> SideTiming {
    let gh_traffic = get_hermitian_traffic(rows, nnz, cols, f as f64, opts);
    let gh_occ = Occupancy::compute(
        spec,
        f as u32,
        mo_als_regs_per_thread(f as u32, opts.use_registers),
        mo_als_shared_bytes(f as u32, opts.bin),
    );
    let gh = timing.kernel_time(spec, &gh_traffic, &gh_occ, !opts.use_texture);

    let bs_traffic = batch_solve_traffic(rows, f as f64);
    let bs_occ = Occupancy::compute(spec, (f as u32).max(32), 56, 0);
    let bs = timing.kernel_time(spec, &bs_traffic, &bs_occ, false);

    SideTiming {
        get_hermitian_s: gh.total_s,
        batch_solve_s: bs.total_s,
        get_hermitian_occupancy: gh_occ.occupancy,
    }
}

/// Timing breakdown of one side update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideTiming {
    /// Simulated seconds spent in `get_hermitian`.
    pub get_hermitian_s: f64,
    /// Simulated seconds spent in `batch_solve`.
    pub batch_solve_s: f64,
    /// Occupancy achieved by the `get_hermitian` launch.
    pub get_hermitian_occupancy: f64,
}

impl SideTiming {
    /// Total simulated seconds of the side update.
    pub fn total(&self) -> f64 {
        self.get_hermitian_s + self.batch_solve_s
    }
}

/// Per-iteration statistics of the MO-ALS engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoIterationStats {
    /// Simulated seconds for the update-X half.
    pub update_x_s: f64,
    /// Simulated seconds for the update-Θ half.
    pub update_theta_s: f64,
}

impl MoIterationStats {
    /// Total simulated seconds of the iteration.
    pub fn total(&self) -> f64 {
        self.update_x_s + self.update_theta_s
    }
}

/// The memory-optimized single-GPU ALS engine (Algorithm 2).
#[derive(Debug, Clone)]
pub struct MoAlsEngine {
    config: AlsConfig,
    cluster: GpuCluster,
    r: Csr,
    r_t: Csr,
    x: FactorMatrix,
    theta: FactorMatrix,
    upload_s: f64,
    total_sim_s: f64,
    metrics: Option<Arc<TrainMetrics>>,
}

impl MoAlsEngine {
    /// Creates the engine on the given (single-GPU) cluster.
    ///
    /// # Panics
    /// Panics if the cluster has more than one GPU (use
    /// [`crate::als::su::SuAlsEngine`] for that) or if `R`, `X` and `Θ` do
    /// not fit in the device's global memory (use SU-ALS and its planner).
    pub fn new(config: AlsConfig, r: Csr, mut cluster: GpuCluster) -> Self {
        config.validate();
        assert_eq!(cluster.n_gpus(), 1, "MO-ALS runs on exactly one GPU");
        let f = config.f;
        let m = r.n_rows() as u64;
        let n = r.n_cols() as u64;

        // Device-resident data: R (CSR words), X, Θᵀ.
        let alloc = cluster.allocator_mut(0);
        alloc
            .alloc_f32("R (CSR)", r.footprint_words() as u64)
            .and_then(|_| alloc.alloc_f32("X", m * f as u64))
            .and_then(|_| alloc.alloc_f32("ThetaT", n * f as u64))
            .unwrap_or_else(|e| panic!("problem does not fit on one GPU: {e}; use SU-ALS"));

        let scale = 1.0 / (f as f32).sqrt();
        let x = FactorMatrix::random(m as usize, f, scale, config.seed);
        let theta = FactorMatrix::random(n as usize, f, scale, config.seed ^ 0xDEAD_BEEF);
        let r_t = r.transpose();

        // One-time host→device upload (hidden behind the first iteration in
        // the real system; tracked separately here).
        let bytes = (r.footprint_words() as u64 + m * f as u64 + n * f as u64) * 4;
        let timing = cluster.timing().clone();
        let upload_s = timing.transfer_time(bytes as f64, cluster.spec().pcie_gbs);
        cluster.run_transfer(0, "initial upload", upload_s, 0.0);

        Self {
            config,
            cluster,
            r,
            r_t,
            x,
            theta,
            upload_s,
            total_sim_s: 0.0,
            metrics: None,
        }
    }

    /// Attaches a shared [`TrainMetrics`] sink: every subsequent iteration
    /// records its host-side per-row assembly/solve phases and whole
    /// `solve_side` latency there (simulated GPU time is tracked separately
    /// by [`MoAlsEngine::iterate`]'s [`MoIterationStats`]).
    pub fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Convenience constructor on a single Titan X.
    pub fn on_titan_x(config: AlsConfig, r: Csr) -> Self {
        Self::new(config, r, GpuCluster::single_titan_x())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AlsConfig {
        &self.config
    }

    /// Current user factors.
    pub fn x(&self) -> &FactorMatrix {
        &self.x
    }

    /// Current item factors.
    pub fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    /// Replaces the current factors (used to resume from a checkpoint).
    pub fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.r.n_rows() as usize, "X row count mismatch");
        assert_eq!(
            theta.len(),
            self.r.n_cols() as usize,
            "Θ row count mismatch"
        );
        assert_eq!(x.rank(), self.config.f, "X rank mismatch");
        assert_eq!(theta.rank(), self.config.f, "Θ rank mismatch");
        self.x = x;
        self.theta = theta;
    }

    /// Simulated seconds of the one-time initial upload.
    pub fn upload_time(&self) -> f64 {
        self.upload_s
    }

    /// Total simulated compute time accumulated so far (excluding the
    /// initial upload).
    pub fn simulated_time(&self) -> f64 {
        self.total_sim_s
    }

    /// The underlying simulated cluster (for profiling).
    pub fn cluster(&self) -> &GpuCluster {
        &self.cluster
    }

    /// Runs one full ALS iteration and returns its simulated timing.
    pub fn iterate(&mut self) -> MoIterationStats {
        let spec = self.cluster.spec().clone();
        let timing = self.cluster.timing().clone();
        let opts = self.config.memory_opt;
        let f = self.config.f;

        // --- update X (solve rows of R against Θ) ---
        self.x = solve_side_instrumented(
            &self.r,
            &self.theta,
            self.config.lambda,
            self.metrics.as_deref(),
        );
        let tx = side_update_time(
            &spec,
            &timing,
            self.r.n_rows() as f64,
            self.r.nnz() as f64,
            self.r.n_cols() as f64,
            f,
            &opts,
        );
        self.cluster
            .run_kernel(0, "get_hermitian_x", tx.get_hermitian_s);
        self.cluster
            .run_kernel(0, "batch_solve_x", tx.batch_solve_s);

        // --- update Θ (solve rows of Rᵀ against X) ---
        self.theta = solve_side_instrumented(
            &self.r_t,
            &self.x,
            self.config.lambda,
            self.metrics.as_deref(),
        );
        let tt = side_update_time(
            &spec,
            &timing,
            self.r_t.n_rows() as f64,
            self.r_t.nnz() as f64,
            self.r_t.n_cols() as f64,
            f,
            &opts,
        );
        self.cluster
            .run_kernel(0, "get_hermitian_theta", tt.get_hermitian_s);
        self.cluster
            .run_kernel(0, "batch_solve_theta", tt.batch_solve_s);

        let stats = MoIterationStats {
            update_x_s: tx.total(),
            update_theta_s: tt.total(),
        };
        self.total_sim_s += stats.total();
        stats
    }

    /// Training RMSE of the current factors.
    pub fn train_rmse(&self) -> f64 {
        loss::rmse_csr(&self.x, &self.theta, &self.r)
    }
}

impl crate::engine::Engine for MoAlsEngine {
    fn name(&self) -> &'static str {
        "mo-als"
    }

    fn train_sweep(&mut self) -> f64 {
        self.iterate().total()
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        MoAlsEngine::set_factors(self, x, theta);
    }

    fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        MoAlsEngine::attach_metrics(self, metrics);
    }

    fn metrics(&self) -> Option<&TrainMetrics> {
        self.metrics.as_deref()
    }

    fn train_rmse(&self) -> f64 {
        MoAlsEngine::train_rmse(self)
    }
}

impl crate::engine::IncrementalEngine for MoAlsEngine {
    fn fold_in_lambda(&self) -> f32 {
        self.config.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn small_ratings() -> Csr {
        SyntheticConfig {
            m: 150,
            n: 80,
            nnz: 4000,
            rank: 4,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    fn config(opts: MemoryOptConfig) -> AlsConfig {
        AlsConfig {
            f: 16,
            lambda: 0.05,
            iterations: 3,
            memory_opt: opts,
            ..Default::default()
        }
    }

    #[test]
    fn engine_converges_like_the_reference() {
        let r = small_ratings();
        let mut mo = MoAlsEngine::on_titan_x(config(MemoryOptConfig::optimized()), r.clone());
        let mut base = crate::als::BaseAls::new(config(MemoryOptConfig::optimized()), r);
        for _ in 0..3 {
            mo.iterate();
            base.iterate();
        }
        // Same seed, same numerics: the factors agree to floating-point noise.
        assert!(mo.x().max_abs_diff(base.x()) < 1e-4);
        assert!(mo.theta().max_abs_diff(base.theta()) < 1e-4);
        assert!(mo.train_rmse() < 0.5);
    }

    #[test]
    fn memory_opt_toggles_do_not_change_numerics() {
        let r = small_ratings();
        let mut opt = MoAlsEngine::on_titan_x(config(MemoryOptConfig::optimized()), r.clone());
        let mut naive = MoAlsEngine::on_titan_x(config(MemoryOptConfig::naive()), r);
        opt.iterate();
        naive.iterate();
        assert!(opt.x().max_abs_diff(naive.x()) < 1e-6);
    }

    #[test]
    fn disabling_registers_slows_the_simulated_kernel() {
        // Figure 7's ablation: on the small engine instance the effect is
        // visible, and at full Netflix scale (where launch overheads are
        // negligible) the register-blocked kernel is substantially faster.
        let r = small_ratings();
        let mut with = MoAlsEngine::on_titan_x(config(MemoryOptConfig::optimized()), r.clone());
        let mut without = MoAlsEngine::on_titan_x(config(MemoryOptConfig::without_registers()), r);
        let t_with = with.iterate().total();
        let t_without = without.iterate().total();
        assert!(
            t_without > t_with,
            "no-register iteration should be slower: {t_with} vs {t_without}"
        );

        let spec = DeviceSpec::titan_x();
        let timing = TimingModel::default();
        let netflix = |opts: &MemoryOptConfig| {
            side_update_time(&spec, &timing, 480_189.0, 99.0e6, 17_770.0, 100, opts).total()
        };
        let full_with = netflix(&MemoryOptConfig::optimized());
        let full_without = netflix(&MemoryOptConfig::without_registers());
        assert!(
            full_without > full_with * 1.3,
            "at Netflix scale the register ablation should cost >1.3x: {full_with} vs {full_without}"
        );
    }

    #[test]
    fn disabling_texture_slows_the_simulated_kernel() {
        let r = small_ratings();
        let mut with = MoAlsEngine::on_titan_x(config(MemoryOptConfig::optimized()), r.clone());
        let mut without = MoAlsEngine::on_titan_x(config(MemoryOptConfig::without_texture()), r);
        let t_with = with.iterate().total();
        let t_without = without.iterate().total();
        assert!(
            t_without > t_with,
            "no-texture iteration should be slower: {t_with} vs {t_without}"
        );
    }

    #[test]
    fn simulated_time_accumulates() {
        let r = small_ratings();
        let mut mo = MoAlsEngine::on_titan_x(config(MemoryOptConfig::optimized()), r);
        let t1 = mo.iterate().total();
        let t2 = mo.iterate().total();
        assert!((mo.simulated_time() - (t1 + t2)).abs() < 1e-12);
        assert!(mo.upload_time() > 0.0);
        assert!(
            mo.cluster().profiler().len() >= 9,
            "kernels and upload are profiled"
        );
    }

    #[test]
    #[should_panic(expected = "does not fit on one GPU")]
    fn oversized_problem_is_rejected() {
        // A fake 2-billion-rating matrix cannot be built in memory, so build
        // a small one and shrink the device instead.
        let r = small_ratings();
        let spec = cumf_gpu_sim::DeviceSpec {
            global_mem_bytes: 1024, // 1 KiB "GPU"
            ..cumf_gpu_sim::DeviceSpec::titan_x()
        };
        let cluster = GpuCluster::new(spec, cumf_gpu_sim::PcieTopology::flat(1), 1);
        MoAlsEngine::new(config(MemoryOptConfig::optimized()), r, cluster);
    }

    #[test]
    fn netflix_scale_timing_is_in_seconds_not_hours() {
        // Sanity check of the cost model at full Netflix scale: the paper's
        // cuMF converges in tens of seconds over ~10 iterations, so one side
        // update should be O(1 s).
        let spec = DeviceSpec::titan_x();
        let timing = TimingModel::default();
        let t = side_update_time(
            &spec,
            &timing,
            480_189.0,
            99.0e6,
            17_770.0,
            100,
            &MemoryOptConfig::optimized(),
        );
        assert!(t.total() > 0.05, "unrealistically fast: {}", t.total());
        assert!(t.total() < 20.0, "unrealistically slow: {}", t.total());
    }
}

//! End-to-end observability contract of the serving tier.
//!
//! The load-bearing claim: the five pipeline stages partition each
//! request's end-to-end latency, because adjacent stages share their
//! boundary timestamps inside the batcher.  The acceptance test pins that
//! the **sum of stage means equals the e2e mean** (within 10 %, though the
//! construction makes it exact up to float rounding) on a synthetic load.
//! Around it: queue-depth high-water, windowed report semantics through
//! the service handle, trace sampling, and the exported JSON keys CI
//! asserts on.

use cumf_linalg::FactorMatrix;
use cumf_serve::{FactorSnapshot, ServeConfig, Stage, TopKService};
use std::time::Duration;

fn snapshot(seed: u64) -> FactorSnapshot {
    FactorSnapshot::from_factors(
        FactorMatrix::random(64, 8, 1.0, seed),
        FactorMatrix::random(400, 8, 1.0, seed + 1),
    )
}

/// Cache off so every request takes the full score path; the stage
/// partition holds either way, but an all-miss load exercises every stage
/// with non-trivial durations.
fn observability_config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        workers: 2,
        cache_capacity: 0,
        trace_sample: 1,
        trace_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn stage_means_sum_to_the_e2e_mean() {
    let service = TopKService::start(snapshot(21), observability_config());
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let client = service.client();
            s.spawn(move || {
                for i in 0..50u32 {
                    let user = (t * 50 + i) % 64;
                    client.recommend(user, 5, &[]).unwrap();
                }
            });
        }
    });
    let r = service.metrics();
    assert_eq!(r.requests, 200);
    assert_eq!(r.request_e2e.count(), 200, "every request records an e2e");
    for stage in Stage::ALL {
        assert_eq!(
            r.stage(stage).count(),
            200,
            "every request records stage {}",
            stage.name()
        );
    }
    let stage_mean_sum: f64 = Stage::ALL.iter().map(|&s| r.stage(s).mean_ns()).sum();
    let e2e_mean = r.request_e2e.mean_ns();
    assert!(e2e_mean > 0.0);
    let rel = (stage_mean_sum - e2e_mean).abs() / e2e_mean;
    assert!(
        rel < 0.10,
        "stage means sum {stage_mean_sum:.0} ns vs e2e mean {e2e_mean:.0} ns ({rel:.4} off)"
    );
    // The construction is exact, not just within 10%: stage sums (exact
    // integers) telescope to the e2e sum per request.
    let stage_sum: u64 = Stage::ALL.iter().map(|&s| r.stage(s).sum_ns()).sum();
    assert_eq!(stage_sum, r.request_e2e.sum_ns(), "partition must be exact");
}

#[test]
fn cache_hits_keep_the_partition_exact() {
    // With the cache on and repeated identical requests, hits take the
    // zero-width score/merge path — the partition identity must survive
    // the mix.
    let service = TopKService::start(
        snapshot(22),
        ServeConfig {
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let client = service.client();
    for _ in 0..3 {
        for user in 0..10u32 {
            client.recommend(user, 5, &[]).unwrap();
        }
    }
    let r = service.metrics();
    assert!(r.cache_hits > 0, "repeats must hit the cache");
    let stage_sum: u64 = Stage::ALL.iter().map(|&s| r.stage(s).sum_ns()).sum();
    assert_eq!(stage_sum, r.request_e2e.sum_ns());
}

#[test]
fn queue_depth_high_water_reflects_concurrency() {
    let service = TopKService::start(snapshot(23), observability_config());
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let client = service.client();
            s.spawn(move || {
                for i in 0..20u32 {
                    client.recommend((t * 20 + i) % 64, 4, &[]).unwrap();
                }
            });
        }
    });
    let r = service.metrics();
    let hwm = r.queue_depth_high_water;
    assert!(hwm >= 1, "something must have queued");
    assert!(hwm <= 160, "high-water {hwm} exceeds total requests");
}

#[test]
fn window_report_through_the_service_handle() {
    let service = TopKService::start(snapshot(24), observability_config());
    let client = service.client();
    for user in 0..10u32 {
        client.recommend(user, 5, &[]).unwrap();
    }
    let first = service.window_report();
    assert_eq!(first.window.requests, 10);
    assert_eq!(first.cumulative.requests, 10);

    for user in 0..4u32 {
        client.recommend(user + 30, 5, &[]).unwrap();
    }
    let second = service.window_report();
    assert_eq!(second.window.requests, 4, "window counts only the delta");
    assert_eq!(second.cumulative.requests, 14);
    assert_eq!(second.window.request_e2e.count(), 4);

    let idle = service.window_report();
    assert_eq!(idle.window.requests, 0);
    assert_eq!(idle.window.request_e2e.count(), 0);
}

#[test]
fn sampled_traces_cover_every_stage() {
    // trace_sample = 1: every request is traced.
    let service = TopKService::start(snapshot(25), observability_config());
    let client = service.client();
    for user in 0..12u32 {
        client.recommend(user, 5, &[]).unwrap();
    }
    let traces = service.tracer().traces();
    assert_eq!(traces.len(), 12);
    for t in &traces {
        let stages: Vec<&str> = t.events.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec!["queue_wait", "coalesce", "score", "merge", "reply"],
            "trace {} missing stages",
            t.id
        );
        // Events tile the trace: each starts where the previous ended.
        for w in t.events.windows(2) {
            assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
        }
    }
    let jsonl = service.traces_jsonl();
    assert_eq!(jsonl.lines().count(), 12);
    assert!(jsonl.contains("\"queue_wait\""));
    assert!(jsonl.contains("\"total_ns\""));
}

#[test]
fn sampling_rate_bounds_the_trace_count() {
    let service = TopKService::start(
        snapshot(26),
        ServeConfig {
            trace_sample: 4,
            cache_capacity: 0,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let client = service.client();
    for user in 0..40u32 {
        client.recommend(user % 64, 4, &[]).unwrap();
    }
    let n = service.tracer().traces().len();
    assert_eq!(n, 10, "1-in-4 sampling of 40 sequential requests");

    // trace_sample = 0 disables tracing entirely.
    let off = TopKService::start(
        snapshot(27),
        ServeConfig {
            trace_sample: 0,
            ..Default::default()
        },
    );
    let client = off.client();
    for user in 0..5u32 {
        client.recommend(user, 3, &[]).unwrap();
    }
    assert!(off.tracer().traces().is_empty());
}

#[test]
fn exported_json_carries_the_ci_contract_keys() {
    let service = TopKService::start(snapshot(28), observability_config());
    let client = service.client();
    for user in 0..30u32 {
        client.recommend(user, 5, &[]).unwrap();
    }
    let json = service.metrics().exporter().to_json();
    let grab = |key: &str| -> u64 {
        let pat = format!("\"{key}\":");
        let at = json.find(&pat).unwrap_or_else(|| panic!("missing {key}")) + pat.len();
        json[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert_eq!(grab("serve_requests"), 30);
    for stage in ["queue_wait", "coalesce", "score", "merge", "reply"] {
        let p50 = grab(&format!("serve_stage_{stage}_p50_ns"));
        let p99 = grab(&format!("serve_stage_{stage}_p99_ns"));
        assert!(p99 >= p50, "{stage}: p99 {p99} < p50 {p50}");
    }
    let (p50, p99) = (
        grab("serve_request_e2e_p50_ns"),
        grab("serve_request_e2e_p99_ns"),
    );
    assert!(p99 >= p50 && p99 > 0);
    assert_eq!(grab("serve_request_e2e_count"), 30);
}

//! CPU baseline matrix-factorization algorithms.
//!
//! The cuMF paper compares against a family of CPU systems.  This crate
//! implements the *algorithms* those systems run, as real shared-memory
//! multi-threaded Rust, so that their convergence behaviour (RMSE per
//! iteration/epoch) in Figures 6 and 10 is genuine rather than copied:
//!
//! * [`libmf`] — libMF-style blocked SGD (DSGD block scheduling across
//!   threads with conflict-free rotations).
//! * [`hogwild`] — HOGWILD!-style lock-free SGD (atomic relaxed updates).
//! * [`nomad`] — NOMAD-style asynchronous SGD where item columns circulate
//!   between workers as tokens.
//! * [`ccd`] — CCD++ cyclic coordinate descent with a maintained residual.
//! * [`pals`] — PALS: model-parallel ALS with full `Θ` replication.
//! * [`spark_als`] — SparkALS-style ALS with per-partition partial
//!   replication of `Θ` (and its communication-volume accounting).
//!
//! Cluster-scale *wall-clock* for these systems comes from `cumf-cluster`'s
//! cost models; this crate is about numerics on (scaled-down) data.

#![forbid(unsafe_code)]
pub mod als_util;
pub mod ccd;
pub mod hogwild;
pub mod libmf;
pub mod nomad;
pub mod pals;
pub mod spark_als;

use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};

/// Common interface the benchmark harness drives every baseline through.
pub trait MfSolver {
    /// Human-readable solver name.
    fn name(&self) -> &'static str;

    /// Runs one iteration (ALS) or one epoch (SGD/CCD).
    fn iterate(&mut self);

    /// Current user factors.
    fn x(&self) -> &FactorMatrix;

    /// Current item factors.
    fn theta(&self) -> &FactorMatrix;

    /// Root-mean-square error on an explicit set of held-out ratings.
    fn rmse(&self, entries: &[Entry]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        let se: f64 = entries
            .iter()
            .map(|e| {
                let p = cumf_linalg::blas::dot(
                    self.x().vector(e.row as usize),
                    self.theta().vector(e.col as usize),
                );
                ((e.val - p) as f64).powi(2)
            })
            .sum();
        (se / entries.len() as f64).sqrt()
    }

    /// Root-mean-square error over the stored entries of `r`.
    fn train_rmse(&self, r: &Csr) -> f64 {
        let entries: Vec<Entry> = r.iter().collect();
        self.rmse(&entries)
    }
}

pub use ccd::CcdPlusPlus;
pub use hogwild::HogwildSgd;
pub use libmf::LibMfSgd;
pub use nomad::NomadSgd;
pub use pals::Pals;
pub use spark_als::SparkAlsStyle;

//! Coordinate-list (COO) sparse matrix.
//!
//! COO is the construction format: data generators and file readers append
//! `(row, col, value)` triplets, which are then converted to [`Csr`] /
//! [`Csc`](crate::Csc) for computation.

use crate::{Csr, Entry, SparseError};

/// A sparse matrix stored as a list of `(row, col, value)` triplets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coo {
    n_rows: u32,
    n_cols: u32,
    entries: Vec<Entry>,
}

impl Coo {
    /// Creates an empty COO matrix with the given shape.
    pub fn new(n_rows: u32, n_cols: u32) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with the given shape and reserved capacity.
    pub fn with_capacity(n_rows: u32, n_cols: u32, nnz: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Builds a COO matrix from raw triplets, validating index ranges.
    pub fn from_entries(
        n_rows: u32,
        n_cols: u32,
        entries: Vec<Entry>,
    ) -> Result<Self, SparseError> {
        for e in &entries {
            if e.row >= n_rows {
                return Err(SparseError::RowOutOfBounds { row: e.row, n_rows });
            }
            if e.col >= n_cols {
                return Err(SparseError::ColOutOfBounds { col: e.col, n_cols });
            }
        }
        Ok(Self {
            n_rows,
            n_cols,
            entries,
        })
    }

    /// Appends one entry, validating its indices.
    pub fn push(&mut self, row: u32, col: u32, val: f32) -> Result<(), SparseError> {
        if row >= self.n_rows {
            return Err(SparseError::RowOutOfBounds {
                row,
                n_rows: self.n_rows,
            });
        }
        if col >= self.n_cols {
            return Err(SparseError::ColOutOfBounds {
                col,
                n_cols: self.n_cols,
            });
        }
        self.entries.push(Entry::new(row, col, val));
        Ok(())
    }

    /// Number of rows `m`.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns `n`.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored entries `Nz` (duplicates counted until [`Coo::dedup`]).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns the stored entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Sorts entries by `(row, col)`.
    pub fn sort(&mut self) {
        self.entries.sort_unstable_by_key(|e| (e.row, e.col));
    }

    /// Sorts and merges duplicate `(row, col)` coordinates by summing values.
    pub fn dedup(&mut self) {
        self.sort();
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            match out.last_mut() {
                Some(last) if last.row == e.row && last.col == e.col => last.val += e.val,
                _ => out.push(e),
            }
        }
        self.entries = out;
    }

    /// Converts to CSR form. Entries need not be sorted.
    pub fn to_csr(&self) -> Csr {
        Csr::from_coo(self)
    }

    /// Returns the transpose as a new COO matrix (rows and columns swapped).
    pub fn transpose(&self) -> Coo {
        let entries = self
            .entries
            .iter()
            .map(|e| Entry::new(e.col, e.row, e.val))
            .collect();
        Coo {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            entries,
        }
    }

    /// Consumes the matrix and returns its triplets.
    pub fn into_entries(self) -> Vec<Entry> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        let mut c = Coo::new(3, 4);
        c.push(0, 1, 1.0).unwrap();
        c.push(2, 3, 2.0).unwrap();
        c.push(1, 0, 3.0).unwrap();
        c.push(0, 0, 4.0).unwrap();
        c
    }

    #[test]
    fn push_and_shape() {
        let c = sample();
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_cols(), 4);
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut c = Coo::new(2, 2);
        assert_eq!(
            c.push(2, 0, 1.0),
            Err(SparseError::RowOutOfBounds { row: 2, n_rows: 2 })
        );
        assert_eq!(
            c.push(0, 5, 1.0),
            Err(SparseError::ColOutOfBounds { col: 5, n_cols: 2 })
        );
    }

    #[test]
    fn from_entries_validates() {
        let bad = vec![Entry::new(0, 0, 1.0), Entry::new(9, 0, 1.0)];
        assert!(Coo::from_entries(2, 2, bad).is_err());
        let good = vec![Entry::new(0, 0, 1.0), Entry::new(1, 1, 1.0)];
        assert_eq!(Coo::from_entries(2, 2, good).unwrap().nnz(), 2);
    }

    #[test]
    fn sort_orders_by_row_then_col() {
        let mut c = sample();
        c.sort();
        let keys: Vec<(u32, u32)> = c.entries().iter().map(|e| (e.row, e.col)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (2, 3)]);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(0, 0, 2.5).unwrap();
        c.push(1, 1, 1.0).unwrap();
        c.dedup();
        assert_eq!(c.nnz(), 2);
        assert!((c.entries()[0].val - 3.5).abs() < 1e-6);
    }

    #[test]
    fn transpose_swaps_shape_and_indices() {
        let t = sample().transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert!(t.entries().iter().any(|e| e.row == 3 && e.col == 2));
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let c = Coo::new(5, 7);
        let csr = c.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 5);
        assert_eq!(csr.n_cols(), 7);
    }
}

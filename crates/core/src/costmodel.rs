//! Analytic cost model (Table 3) and full-scale iteration pricing.
//!
//! Convergence experiments run on scaled-down data, but the paper's
//! large-scale results (Figure 11, Table 1) are about *per-iteration time at
//! full scale* — 3.5 to 112 billion ratings that cannot be materialized
//! here.  Because the ALS work per iteration is a closed-form function of
//! `(m, n, Nz, f)` (Table 3 of the paper), the simulated time can be
//! computed analytically with the very same traffic and interconnect models
//! the engines use.

use crate::als::mo::{batch_solve_traffic, get_hermitian_traffic};
use crate::config::MemoryOptConfig;
use crate::planner::{self, PartitionPlan, ProblemDims};
use crate::reduce::{reduction_time, ReductionScheme};
use cumf_gpu_sim::occupancy::{mo_als_regs_per_thread, mo_als_shared_bytes};
use cumf_gpu_sim::{DeviceSpec, Occupancy, PcieTopology, TimingModel};

/// One row of the paper's Table 3 (compute cost and memory footprint of the
/// update-X step), in floating-point operations and 4-byte words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Which scope the row describes ("one item", "m_b items", "all m items").
    pub scope: &'static str,
    /// FLOPs to form the Hermitians `A_u`.
    pub get_hermitian_a_flops: f64,
    /// FLOPs to form the right-hand sides `B_u`.
    pub get_hermitian_b_flops: f64,
    /// Memory footprint of the `A_u` matrices in words.
    pub a_words: f64,
    /// Memory footprint of `Θᵀ`, `B_u` and the CSR slice in words.
    pub b_words: f64,
    /// FLOPs of the batched solve.
    pub batch_solve_flops: f64,
}

/// Computes the three rows of Table 3 for a problem with the given
/// dimensions and batch size `m_b`.
pub fn table3(m: f64, n: f64, nz: f64, f: f64, mb: f64) -> [Table3Row; 3] {
    let one = Table3Row {
        scope: "one item",
        get_hermitian_a_flops: nz * f * (f + 1.0) / (2.0 * m),
        get_hermitian_b_flops: (nz + nz * f) / m + 2.0 * f,
        a_words: f * f,
        b_words: n * f + f + (2.0 * nz + m + 1.0) / m,
        batch_solve_flops: f * f * f,
    };
    let batch = Table3Row {
        scope: "m_b items",
        get_hermitian_a_flops: mb * nz * f * (f + 1.0) / (2.0 * m),
        get_hermitian_b_flops: mb * (nz + nz * f) / m + 2.0 * mb * f,
        a_words: mb * f * f,
        b_words: n * f + mb * f + mb * (2.0 * nz + m + 1.0) / m,
        batch_solve_flops: mb * f * f * f,
    };
    let all = Table3Row {
        scope: "all m items",
        get_hermitian_a_flops: nz * f * (f + 1.0) / 2.0,
        get_hermitian_b_flops: nz + nz * f + 2.0 * m * f,
        a_words: m * f * f,
        b_words: n * f + m * f + 2.0 * nz + m + 1.0,
        batch_solve_flops: m * f * f * f,
    };
    [one, batch, all]
}

/// Hardware configuration used when pricing a full-scale iteration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Device model (all GPUs identical).
    pub device: DeviceSpec,
    /// Interconnect topology.
    pub topology: PcieTopology,
    /// Number of GPUs actually installed.
    pub n_gpus: usize,
    /// Memory-optimization toggles.
    pub opts: MemoryOptConfig,
    /// Cross-GPU reduction scheme.
    pub reduction: ReductionScheme,
}

impl ClusterConfig {
    /// The paper's §5.5 machine: four GK210 dies on a dual-socket host.
    pub fn four_k80() -> Self {
        Self {
            device: DeviceSpec::gk210(),
            topology: PcieTopology::dual_socket(4),
            n_gpus: 4,
            opts: MemoryOptConfig::optimized(),
            reduction: ReductionScheme::TwoPhase,
        }
    }

    /// `n` Titan X cards on a flat PCIe root (§5.2–5.4).
    pub fn titan_x(n: usize) -> Self {
        Self {
            device: DeviceSpec::titan_x(),
            topology: PcieTopology::flat(n),
            n_gpus: n,
            opts: MemoryOptConfig::optimized(),
            reduction: ReductionScheme::OnePhase,
        }
    }
}

/// Simulated cost of one full ALS iteration at full scale.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationCost {
    /// Seconds in `get_hermitian` kernels (both halves).
    pub get_hermitian_s: f64,
    /// Seconds in batch solves (both halves).
    pub batch_solve_s: f64,
    /// Seconds of exposed (non-overlapped) host↔device streaming.
    pub transfer_s: f64,
    /// Seconds of cross-GPU reductions.
    pub reduce_s: f64,
    /// The partition plan chosen for the update-X half.
    pub plan_x: PartitionPlan,
    /// The partition plan chosen for the update-Θ half.
    pub plan_theta: PartitionPlan,
}

impl IterationCost {
    /// Total simulated seconds per iteration.
    pub fn total_s(&self) -> f64 {
        self.get_hermitian_s + self.batch_solve_s + self.transfer_s + self.reduce_s
    }
}

/// Prices one full ALS iteration (update X + update Θ) at full scale.
///
/// `dims` uses the *paper-scale* `(m, n, Nz, f)`; the partitioning is chosen
/// by the planner exactly as SU-ALS would.
pub fn cumf_iteration_cost(dims: &ProblemDims, cluster: &ClusterConfig) -> IterationCost {
    let timing = TimingModel::default();
    let mut cost = IterationCost::default();

    let plan_for = |rows: u64, cols: u64| {
        let d = ProblemDims::new(rows, cols, dims.nz, dims.f);
        let mut plan = planner::plan(&d, &cluster.device, cluster.n_gpus * 64, 1 << 24).unwrap_or(
            PartitionPlan {
                p: cluster.n_gpus,
                q: cluster.n_gpus * 16,
            },
        );
        // Elasticity (§4.4): with idle GPUs, split X into at least enough
        // batches for every GPU to work, and round q to a multiple of the
        // concurrent batch count so waves are balanced.
        let concurrent_batches = (cluster.n_gpus / plan.p.max(1)).max(1);
        plan.q = plan.q.max(concurrent_batches).div_ceil(concurrent_batches) * concurrent_batches;
        plan
    };
    let plan_x = plan_for(dims.m, dims.n);
    let plan_theta = plan_for(dims.n, dims.m);
    cost.plan_x = plan_x;
    cost.plan_theta = plan_theta;

    let mut side = |rows: f64, cols: f64, plan: PartitionPlan| {
        let f = dims.f as f64;
        let nz = dims.nz as f64;
        let p = plan.p as f64;
        let q = plan.q as f64;
        let n_gpus = cluster.n_gpus as f64;

        let gh_occ = Occupancy::compute(
            &cluster.device,
            dims.f as u32,
            mo_als_regs_per_thread(dims.f as u32, cluster.opts.use_registers),
            mo_als_shared_bytes(dims.f as u32, cluster.opts.bin),
        );
        let bs_occ = Occupancy::compute(&cluster.device, (dims.f as u32).max(32), 56, 0);

        // Per grid block: rows/q rows, nz/(p·q) ratings, cols/p columns.
        // All p·q blocks are independent, so they spread over the installed
        // GPUs (data parallelism when p > 1, model parallelism over batches
        // when p = 1 — the §5.4 Netflix/YahooMusic setting).
        let block_traffic =
            get_hermitian_traffic(rows / q, nz / (p * q), cols / p, f, &cluster.opts);
        let gh_block = timing
            .kernel_time(
                &cluster.device,
                &block_traffic,
                &gh_occ,
                !cluster.opts.use_texture,
            )
            .total_s;
        let gh_total = gh_block * ((p * q) / n_gpus).ceil();
        cost.get_hermitian_s += gh_total;

        // Batch solve: each batch's rows/q systems are split over the p GPUs
        // holding its reduced partials; with p = 1 the q batches themselves
        // spread over the GPUs.
        let bs_traffic = batch_solve_traffic(rows / (q * p), f);
        let bs_total = timing
            .kernel_time(&cluster.device, &bs_traffic, &bs_occ, false)
            .total_s
            * ((p * q) / n_gpus).ceil();
        cost.batch_solve_s += bs_total;

        // Reduction: per batch, each GPU holds (rows/q)·(f²+f) partial words.
        if plan.p > 1 {
            let bytes_per_gpu = rows / q * (f * f + f) * 4.0;
            cost.reduce_s +=
                reduction_time(cluster.reduction, &cluster.topology, bytes_per_gpu) * q;
        }

        // Out-of-core streaming of R and Θ partitions: exposed time beyond
        // what prefetch hides behind compute.
        let r_bytes = 2.0 * nz * 4.0;
        let theta_bytes = cols * f * 4.0;
        let stream_s = timing.transfer_time(r_bytes + theta_bytes, cluster.topology.host_link_gbs);
        cost.transfer_s += (stream_s - gh_total).max(0.0) + gh_block.min(stream_s);
    };

    side(dims.m as f64, dims.n as f64, plan_x);
    side(dims.n as f64, dims.m as f64, plan_theta);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::datasets::PaperDataset;

    fn dims(d: PaperDataset, f: u64) -> ProblemDims {
        let s = d.spec();
        ProblemDims::new(s.m, s.n, s.nz, f)
    }

    #[test]
    fn table3_totals_are_consistent() {
        let m = 1000.0;
        let n = 500.0;
        let nz = 20_000.0;
        let f = 10.0;
        let rows = table3(m, n, nz, f, 100.0);
        // "all m items" equals m × "one item" for the per-item quantities.
        assert!((rows[2].get_hermitian_a_flops - rows[0].get_hermitian_a_flops * m).abs() < 1.0);
        assert!((rows[2].batch_solve_flops - rows[0].batch_solve_flops * m).abs() < 1.0);
        assert!((rows[2].a_words - rows[0].a_words * m).abs() < 1.0);
        // The batch row interpolates between them.
        assert!(rows[1].a_words > rows[0].a_words && rows[1].a_words < rows[2].a_words);
    }

    #[test]
    fn netflix_hermitian_flops_dominate_batch_solve() {
        // §2.2: Nz·f² > m·f³ whenever Nz/m > f; Netflix has Nz/m ≈ 206 > 100.
        let s = PaperDataset::Netflix.spec();
        let rows = table3(s.m as f64, s.n as f64, s.nz as f64, 100.0, 1.0);
        assert!(rows[2].get_hermitian_a_flops > rows[2].batch_solve_flops);
    }

    #[test]
    fn sparkals_iteration_is_tens_of_seconds_on_four_gpus() {
        // Figure 11: cuMF does one SparkALS-data iteration in ~24 s (vs 240 s
        // for 50-node Spark).  The model should land in the same decade.
        let cost = cumf_iteration_cost(
            &dims(PaperDataset::SparkAls, 10),
            &ClusterConfig::four_k80(),
        );
        let t = cost.total_s();
        assert!(t > 3.0 && t < 300.0, "SparkALS iteration estimate {t} s");
    }

    #[test]
    fn facebook_f16_is_minutes_and_f100_much_slower() {
        let c16 = cumf_iteration_cost(
            &dims(PaperDataset::Facebook, 16),
            &ClusterConfig::four_k80(),
        );
        let c100 = cumf_iteration_cost(
            &dims(PaperDataset::CumfLargest, 100),
            &ClusterConfig::four_k80(),
        );
        assert!(
            c16.total_s() > 60.0,
            "Facebook f=16 too fast: {}",
            c16.total_s()
        );
        assert!(
            c16.total_s() < 3600.0,
            "Facebook f=16 too slow: {}",
            c16.total_s()
        );
        assert!(
            c100.total_s() > 4.0 * c16.total_s(),
            "f=100 should be much slower than f=16: {} vs {}",
            c100.total_s(),
            c16.total_s()
        );
    }

    #[test]
    fn more_gpus_reduce_iteration_time_on_hugewiki() {
        let d = dims(PaperDataset::Hugewiki, 100);
        let t1 = cumf_iteration_cost(&d, &ClusterConfig::titan_x(1)).total_s();
        let t4 = cumf_iteration_cost(&d, &ClusterConfig::titan_x(4)).total_s();
        assert!(t4 < t1, "4 GPUs should beat 1: {t1} vs {t4}");
    }

    #[test]
    fn netflix_plan_needs_batches() {
        let cost = cumf_iteration_cost(
            &dims(PaperDataset::Netflix, 100),
            &ClusterConfig::titan_x(1),
        );
        assert!(cost.plan_x.q > 1);
        assert!(
            cost.total_s() > 0.5 && cost.total_s() < 60.0,
            "Netflix iteration {}",
            cost.total_s()
        );
    }
}

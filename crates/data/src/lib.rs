//! Data sets for `cumf-rs`.
//!
//! The paper evaluates on three public data sets (Netflix, YahooMusic,
//! Hugewiki) and three synthetic data sets matching the published sizes of
//! SparkALS, Factorbird and Facebook workloads (Table 5).  None of the
//! public data can be redistributed here, and the largest synthetic sets
//! (112 billion ratings) cannot be materialized on a laptop, so this crate
//! provides:
//!
//! * [`datasets`] — descriptors carrying each data set's *full-scale*
//!   dimensions `(m, n, Nz, f, λ)` exactly as reported in Table 5.  The
//!   analytic cost model prices iterations at this scale.
//! * [`synth`] — a synthetic rating generator: a ground-truth low-rank model
//!   plus noise, with Zipf-distributed item popularity and user activity, so
//!   that ALS/SGD convergence behaviour (what Figures 6–10 measure) is
//!   realistic.  Convergence experiments run on a *scaled-down* instance of
//!   each descriptor; timing is extrapolated analytically.
//! * [`split`] — train/test splitting used for test-RMSE curves.
//! * [`stream`] — streaming rating ingestion for the online loop: the
//!   [`stream::RatingStream`] sources (synthetic mutation stream, replay)
//!   and the bounded [`stream::StreamBatcher`] that stamps ingest instants
//!   and hands the trainer time-ordered mini-batches.

#![forbid(unsafe_code)]
pub mod datasets;
pub mod io;
pub mod split;
pub mod stream;
pub mod synth;

pub use datasets::{DatasetSpec, PaperDataset};
pub use io::{read_csv_triplets, read_matrix_market, write_csv_triplets, write_matrix_market};
pub use split::{train_test_split, TrainTest};
pub use stream::{
    BackpressurePolicy, MiniBatch, MutationStreamConfig, RatingEvent, RatingStream, ReplayStream,
    StreamBatcher, SyntheticMutationStream,
};
pub use synth::{SyntheticConfig, SyntheticDataset};

//! The closed online loop: streaming ingestion → incremental training →
//! delta publication under serving traffic.
//!
//! This module is where the PR-long arc of incremental machinery finally
//! meets: a [`cumf_data::stream::StreamBatcher`] hands the loop time-ordered
//! rating mini-batches, an incremental engine (any
//! [`cumf_core::IncrementalEngine`] fold-in, or a streaming
//! [`cumf_core::sgd::SgdEngine`]) turns each batch into updated user
//! factors, and a [`SnapshotDelta`] publishes exactly the touched rows
//! through [`SnapshotStore::publish_delta`] — `O(u·f)` bytes for `u`
//! touched users, never a full-catalog Θ copy.
//!
//! ## Freshness
//!
//! Every published batch records, per rating, the wall time from the
//! instant the [`StreamBatcher`] producer stamped it
//! ([`cumf_data::stream::RatingEvent::ingested_at`]) to the instant the
//! first snapshot generation reflecting it was published.  That histogram —
//! exported as `serve_freshness_*` — is the loop's end-to-end staleness
//! bound: serving traffic admitted after the publish sees the rating.
//!
//! ## Fold-in versus streaming SGD
//!
//! * [`OnlineLoop::fold_in`] re-solves each touched user's normal equations
//!   against the **serving snapshot's own item segments**
//!   ([`cumf_core::IncrementalEngine::fold_in_users_segmented`] over
//!   [`crate::itemstore::ItemStore::views`]) — the item factors are read in
//!   place, so the loop moves `O(nnz_u·f²)` flops and `O(u·f)` bytes and
//!   the published [`DeltaStats::item_factor_bytes_copied`] is asserted to
//!   stay **zero**.  Fold-in needs each user's full rating history (a
//!   re-solve from scratch), so the loop keeps one, seeded from the
//!   training matrix and updated per event with last-write-wins semantics.
//! * [`OnlineLoop::sgd`] feeds each batch to
//!   [`cumf_core::sgd::SgdEngine::absorb`] — a few gradient steps per
//!   rating, no history needed — and publishes the touched rows of the
//!   engine's user snapshot.  Item factors drift inside the engine and
//!   reach serving only at the next full republish; the user-side effect of
//!   every rating is live immediately.
//!
//! Both modes append brand-new users (ids at or past the snapshot's user
//! count) through [`SnapshotDelta::append_users`]; id gaps between the
//! snapshot edge and the highest streamed user are filled with zero vectors
//! (fold-in: a user with no ratings solves to the zero vector) or the SGD
//! engine's initialization rows, so ids stay dense and stable.

use crate::batcher::TopKService;
use crate::metrics::ServeMetrics;
use crate::snapshot::{DeltaError, DeltaStats, FactorSnapshot, SnapshotDelta, SnapshotStore};
use crate::sync::Arc;
use cumf_core::sgd::SgdEngine;
use cumf_core::{Engine, IncrementalEngine};
use cumf_data::stream::StreamBatcher;
use cumf_linalg::FactorMatrix;
use cumf_sparse::Csr;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Anything the loop can publish deltas through: the raw [`SnapshotStore`]
/// (tests, benches) or a live [`TopKService`] (which also invalidates its
/// result cache targetedly and records publish metrics).
pub trait DeltaPublisher {
    /// The currently-published snapshot (what the next delta chains from).
    fn current(&self) -> Arc<FactorSnapshot>;

    /// Applies and publishes `delta`; see [`SnapshotStore::publish_delta`].
    fn publish_delta(&self, delta: &SnapshotDelta) -> Result<(u64, DeltaStats), DeltaError>;
}

impl DeltaPublisher for SnapshotStore {
    fn current(&self) -> Arc<FactorSnapshot> {
        self.load()
    }

    fn publish_delta(&self, delta: &SnapshotDelta) -> Result<(u64, DeltaStats), DeltaError> {
        SnapshotStore::publish_delta(self, delta)
    }
}

impl DeltaPublisher for TopKService {
    fn current(&self) -> Arc<FactorSnapshot> {
        self.snapshot()
    }

    fn publish_delta(&self, delta: &SnapshotDelta) -> Result<(u64, DeltaStats), DeltaError> {
        TopKService::publish_delta(self, delta)
    }
}

/// Knobs of the online loop.
#[derive(Debug, Clone)]
pub struct OnlineLoopConfig {
    /// Most rating events drained into one mini-batch (and therefore one
    /// solve + one delta publish).
    pub max_batch_events: usize,
    /// Longest a step waits for the first event before yielding an empty
    /// batch (the stream is live but quiet).
    pub max_batch_wait: Duration,
    /// How many times a step rebuilds its delta when a concurrent publisher
    /// wins the generation race ([`DeltaError::StaleBase`]).
    pub max_publish_retries: usize,
}

impl Default for OnlineLoopConfig {
    fn default() -> Self {
        Self {
            max_batch_events: 256,
            max_batch_wait: Duration::from_millis(50),
            max_publish_retries: 3,
        }
    }
}

/// Cumulative accounting of one loop's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineReport {
    /// Mini-batches drained (empty ones included).
    pub batches: u64,
    /// Batches that timed out with no events (stream quiet).
    pub empty_batches: u64,
    /// Rating events ingested and reflected in a publish.
    pub events: u64,
    /// Delta generations published.
    pub publishes: u64,
    /// Existing-user rows republished across all deltas.
    pub users_updated: u64,
    /// Brand-new users appended across all deltas (gap fillers included).
    pub users_appended: u64,
    /// The last generation this loop published (0 before the first).
    pub last_generation: u64,
}

/// What one [`OnlineLoop::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Rating events in the drained mini-batch (0: quiet stream).
    pub events: usize,
    /// Generation published for this batch (`None` for an empty batch).
    pub generation: Option<u64>,
    /// Byte accounting of the publish (`None` for an empty batch).
    pub stats: Option<DeltaStats>,
}

/// How a batch of ratings becomes updated user factors.
enum Updater {
    /// Re-solve each touched user against the serving snapshot's item
    /// segments, from the user's full accumulated rating history.
    FoldIn {
        engine: Box<dyn IncrementalEngine>,
        /// Per user: item → latest rating (last write wins on re-rates;
        /// `BTreeMap` keeps CSR columns sorted for free).
        history: BTreeMap<u32, BTreeMap<u32, f32>>,
    },
    /// Absorb each batch as Hogwild gradient steps; publish the touched
    /// rows of the engine's user snapshot.  Boxed to keep the two
    /// variants' sizes comparable.
    Sgd { engine: Box<SgdEngine> },
}

/// The driver that closes the loop: drain a mini-batch, update factors
/// incrementally, publish the delta, record freshness — repeat until the
/// stream is exhausted.
pub struct OnlineLoop<'a> {
    publisher: &'a dyn DeltaPublisher,
    metrics: Arc<ServeMetrics>,
    batcher: StreamBatcher,
    updater: Updater,
    config: OnlineLoopConfig,
    report: OnlineReport,
}

impl<'a> OnlineLoop<'a> {
    /// A fold-in loop: each touched user is re-solved against the published
    /// snapshot's item segments through
    /// [`IncrementalEngine::fold_in_users_segmented`], so the item factors
    /// are never materialized or copied.  `training` seeds the per-user
    /// rating history (fold-in re-solves from *all* of a user's known
    /// ratings, not just the streamed ones).
    ///
    /// # Panics
    /// Panics if the engine's latent rank disagrees with the published
    /// snapshot's.
    pub fn fold_in(
        engine: Box<dyn IncrementalEngine>,
        training: &Csr,
        batcher: StreamBatcher,
        publisher: &'a dyn DeltaPublisher,
        metrics: Arc<ServeMetrics>,
        config: OnlineLoopConfig,
    ) -> Self {
        assert_eq!(
            engine.theta().rank(),
            publisher.current().rank(),
            "fold-in engine rank must match the published snapshot"
        );
        let mut history: BTreeMap<u32, BTreeMap<u32, f32>> = BTreeMap::new();
        for u in 0..training.n_rows() {
            let (cols, vals) = training.row(u);
            if !cols.is_empty() {
                history.insert(u, cols.iter().copied().zip(vals.iter().copied()).collect());
            }
        }
        Self {
            publisher,
            metrics,
            batcher,
            updater: Updater::FoldIn { engine, history },
            config,
            report: OnlineReport::default(),
        }
    }

    /// A streaming-SGD loop: batches are absorbed as gradient steps by
    /// `engine` ([`SgdEngine::absorb`]) and the touched user rows of its
    /// snapshot are published.
    ///
    /// # Panics
    /// Panics if the engine's latent rank disagrees with the published
    /// snapshot's.
    pub fn sgd(
        engine: SgdEngine,
        batcher: StreamBatcher,
        publisher: &'a dyn DeltaPublisher,
        metrics: Arc<ServeMetrics>,
        config: OnlineLoopConfig,
    ) -> Self {
        assert_eq!(
            engine.theta().rank(),
            publisher.current().rank(),
            "SGD engine rank must match the published snapshot"
        );
        Self {
            publisher,
            metrics,
            batcher,
            updater: Updater::Sgd {
                engine: Box::new(engine),
            },
            config,
            report: OnlineReport::default(),
        }
    }

    /// Cumulative accounting so far.
    pub fn report(&self) -> OnlineReport {
        self.report
    }

    /// The streaming-SGD engine, when this is an SGD loop (for convergence
    /// checks against its live factors).
    pub fn sgd_engine(&self) -> Option<&SgdEngine> {
        match &self.updater {
            Updater::Sgd { engine } => Some(engine.as_ref()),
            Updater::FoldIn { .. } => None,
        }
    }

    /// Drains one mini-batch, updates factors, publishes the delta and
    /// records each rating's freshness.  Returns `Ok(None)` when the stream
    /// is exhausted, `Ok(Some(..))` otherwise (an empty outcome for a quiet
    /// stream).  A [`DeltaError`] other than a retried-away stale base is
    /// propagated — the loop never publishes over a newer generation.
    pub fn step(&mut self) -> Result<Option<StepOutcome>, DeltaError> {
        let Some(batch) = self
            .batcher
            .next_batch(self.config.max_batch_events, self.config.max_batch_wait)
        else {
            return Ok(None);
        };
        self.report.batches += 1;
        if batch.is_empty() {
            self.report.empty_batches += 1;
            return Ok(Some(StepOutcome {
                events: 0,
                generation: None,
                stats: None,
            }));
        }

        // Fold the batch into the updater's state exactly once (retries
        // below rebuild the delta, not the update).
        let entries = batch.entries();
        let touched: Vec<u32> = match &mut self.updater {
            Updater::FoldIn { history, .. } => {
                let mut touched = BTreeSet::new();
                for e in &entries {
                    history.entry(e.row).or_default().insert(e.col, e.val);
                    touched.insert(e.row);
                }
                touched.into_iter().collect()
            }
            Updater::Sgd { engine } => engine.absorb(&entries),
        };

        let mut attempt = 0;
        let (generation, stats) = loop {
            let snap = self.publisher.current();
            let delta = self.build_delta(&snap, &touched);
            match self.publisher.publish_delta(&delta) {
                Ok(ok) => break ok,
                Err(DeltaError::StaleBase { .. }) if attempt < self.config.max_publish_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        // The loop never appends items, so the acceptance invariant of the
        // incremental path — zero full-catalog Θ bytes moved — must hold on
        // every publish.
        assert_eq!(
            stats.item_factor_bytes_copied, 0,
            "online delta publish copied item factors"
        );

        let published_at = Instant::now();
        for event in &batch.events {
            let age = published_at.saturating_duration_since(event.ingested_at);
            self.metrics.record_freshness_ns(age.as_nanos() as u64);
        }

        self.report.events += entries.len() as u64;
        self.report.publishes += 1;
        self.report.users_updated += stats.changed_users as u64;
        self.report.users_appended += stats.appended_users as u64;
        self.report.last_generation = generation;
        Ok(Some(StepOutcome {
            events: entries.len(),
            generation: Some(generation),
            stats: Some(stats),
        }))
    }

    /// Drives [`OnlineLoop::step`] until the stream is exhausted; returns
    /// the lifetime report.
    pub fn run(&mut self) -> Result<OnlineReport, DeltaError> {
        while self.step()?.is_some() {}
        Ok(self.report)
    }

    /// Builds the delta for `touched` users against `snap`: existing users
    /// become row updates, users past the snapshot edge become appends
    /// (with id gaps filled so ids stay dense).
    fn build_delta(&self, snap: &FactorSnapshot, touched: &[u32]) -> SnapshotDelta {
        let n_base = snap.n_users() as u32;
        let f = snap.rank();
        let mut delta = snap.delta();
        match &self.updater {
            Updater::FoldIn { engine, history } => {
                // One CSR row per touched user, over the full history.
                let mut row_ptr = vec![0usize];
                let mut col_idx = Vec::new();
                let mut values = Vec::new();
                for u in touched {
                    if let Some(ratings) = history.get(u) {
                        for (&v, &val) in ratings {
                            col_idx.push(v);
                            values.push(val);
                        }
                    }
                    row_ptr.push(col_idx.len());
                }
                let ratings = Csr::from_raw(
                    touched.len() as u32,
                    snap.n_items() as u32,
                    row_ptr,
                    col_idx,
                    values,
                )
                // lint-ok: serve-unwrap row_ptr/col_idx/values are built consistently just above
                .expect("per-user history CSR is consistent by construction");
                // The solve reads the serving snapshot's segments in place:
                // no Θ materialization, no catalog copy.
                let folded = engine.fold_in_users_segmented(&ratings, &snap.items().views());
                let mut appended = Vec::new();
                let mut next_append = n_base;
                for (i, &u) in touched.iter().enumerate() {
                    if u < n_base {
                        delta.update_user(u, folded.vector(i));
                    } else {
                        // Fill the id gap with zero rows: a user with no
                        // ratings folds in to the zero vector anyway.
                        while next_append < u {
                            appended.extend(std::iter::repeat_n(0.0, f));
                            next_append += 1;
                        }
                        appended.extend_from_slice(folded.vector(i));
                        next_append += 1;
                    }
                }
                if !appended.is_empty() {
                    delta.append_users(&FactorMatrix::from_vec(appended.len() / f, f, appended));
                }
            }
            Updater::Sgd { engine } => {
                // `absorb` grew the engine's user set to cover every
                // touched id, so gap rows exist too (their initialization
                // vectors keep ids dense).
                let x = engine.x();
                for &u in touched.iter().filter(|&&u| u < n_base) {
                    delta.update_user(u, x.vector(u as usize));
                }
                let max_touched = touched.iter().copied().max().unwrap_or(0);
                if max_touched >= n_base {
                    let mut appended = Vec::new();
                    for u in n_base..=max_touched {
                        appended.extend_from_slice(x.vector(u as usize));
                    }
                    delta.append_users(&FactorMatrix::from_vec(appended.len() / f, f, appended));
                }
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_core::als::BaseAls;
    use cumf_core::config::AlsConfig;
    use cumf_core::sgd::SgdConfig;
    use cumf_data::stream::{MutationStreamConfig, ReplayStream, SyntheticMutationStream};
    use cumf_data::synth::SyntheticConfig;
    use cumf_sparse::Entry;

    const F: usize = 8;

    fn trained() -> (Csr, BaseAls) {
        let data = SyntheticConfig {
            m: 60,
            n: 40,
            nnz: 1500,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate();
        let r = data.to_csr();
        let config = AlsConfig {
            f: F,
            lambda: 0.05,
            ..Default::default()
        };
        let mut engine = BaseAls::new(config, r.clone());
        for _ in 0..4 {
            engine.iterate();
        }
        (r, engine)
    }

    fn replay_batcher(entries: Vec<Entry>, n_items: u32) -> StreamBatcher {
        StreamBatcher::spawn(ReplayStream::from_entries(entries, n_items), 64)
    }

    #[test]
    fn fold_in_loop_publishes_deltas_and_matches_the_direct_solve() {
        let (r, engine) = trained();
        let store = SnapshotStore::new(FactorSnapshot::from_factors(
            engine.x().clone(),
            engine.theta().clone(),
        ));
        let metrics = Arc::new(ServeMetrics::new());

        // Re-rate two existing users' items and rate one unseen pair.
        let events = vec![
            Entry {
                row: 3,
                col: 7,
                val: 5.0,
            },
            Entry {
                row: 11,
                col: 2,
                val: 1.0,
            },
            Entry {
                row: 3,
                col: 9,
                val: 4.0,
            },
        ];
        let before = store.load();
        let mut driver = OnlineLoop::fold_in(
            Box::new(engine),
            &r,
            replay_batcher(events.clone(), r.n_cols()),
            &store,
            Arc::clone(&metrics),
            OnlineLoopConfig::default(),
        );
        let report = driver.run().unwrap();
        assert!(report.publishes >= 1);
        assert_eq!(report.events, 3);
        assert_eq!(report.users_appended, 0);

        let after = store.load();
        assert!(after.generation() > before.generation());
        // Touched users moved; untouched users are bit-identical (their COW
        // blocks are shared, not recomputed).
        assert_ne!(after.user_vector(3), before.user_vector(3));
        assert_ne!(after.user_vector(11), before.user_vector(11));
        assert_eq!(after.user_vector(40), before.user_vector(40));
        // Every rating's freshness was recorded once.
        assert_eq!(metrics.report().freshness.count(), 3);

        // The published row equals a direct fold-in over the merged history
        // (training ratings + streamed updates, last write wins).
        let mut merged: BTreeMap<u32, f32> = {
            let (cols, vals) = r.row(3);
            cols.iter().copied().zip(vals.iter().copied()).collect()
        };
        merged.insert(7, 5.0);
        merged.insert(9, 4.0);
        let cols: Vec<u32> = merged.keys().copied().collect();
        let vals: Vec<f32> = merged.values().copied().collect();
        let one = Csr::from_raw(1, r.n_cols(), vec![0, cols.len()], cols, vals).unwrap();
        let expect = cumf_core::foldin::fold_in_users(&one, &after.item_factors_matrix(), 0.05);
        assert_eq!(after.user_vector(3).unwrap(), expect.vector(0));
    }

    #[test]
    fn fold_in_loop_appends_new_users_past_the_snapshot_edge() {
        let (r, engine) = trained();
        let n_base = r.n_rows();
        let store = SnapshotStore::new(FactorSnapshot::from_factors(
            engine.x().clone(),
            engine.theta().clone(),
        ));
        let metrics = Arc::new(ServeMetrics::new());
        // User n_base+2 arrives first: the gap users get zero vectors.
        let events = vec![
            Entry {
                row: n_base + 2,
                col: 1,
                val: 4.5,
            },
            Entry {
                row: n_base,
                col: 3,
                val: 2.0,
            },
        ];
        let mut driver = OnlineLoop::fold_in(
            Box::new(engine),
            &r,
            replay_batcher(events, r.n_cols()),
            &store,
            Arc::clone(&metrics),
            OnlineLoopConfig::default(),
        );
        let report = driver.run().unwrap();
        assert_eq!(report.users_appended, 3);

        let snap = store.load();
        assert_eq!(snap.n_users() as u32, n_base + 3);
        // The rated new users have non-zero vectors; the gap user is zero.
        assert!(snap
            .user_vector(n_base + 2)
            .unwrap()
            .iter()
            .any(|&x| x != 0.0));
        assert!(snap
            .user_vector(n_base + 1)
            .unwrap()
            .iter()
            .all(|&x| x == 0.0));
        // New users are servable immediately.
        assert_eq!(snap.recommend_one(n_base + 2, 5, &[]).len(), 5);
    }

    #[test]
    fn sgd_loop_publishes_absorbed_updates() {
        let (r, als) = trained();
        let store = SnapshotStore::new(FactorSnapshot::from_factors(
            als.x().clone(),
            als.theta().clone(),
        ));
        let metrics = Arc::new(ServeMetrics::new());
        let sgd = SgdEngine::new(
            SgdConfig {
                f: F,
                ..Default::default()
            },
            r.clone(),
        );
        let events = vec![
            Entry {
                row: 5,
                col: 1,
                val: 5.0,
            },
            Entry {
                row: r.n_rows() + 1,
                col: 2,
                val: 3.0,
            },
        ];
        let before = store.load();
        let mut driver = OnlineLoop::sgd(
            sgd,
            replay_batcher(events, r.n_cols()),
            &store,
            Arc::clone(&metrics),
            OnlineLoopConfig::default(),
        );
        let report = driver.run().unwrap();
        assert!(report.publishes >= 1);

        let after = store.load();
        assert_ne!(after.user_vector(5), before.user_vector(5));
        assert_eq!(after.n_users(), before.n_users() + 2);
        // The published row is exactly the engine's current snapshot row.
        let engine = driver.sgd_engine().unwrap();
        assert_eq!(after.user_vector(5).unwrap(), engine.x().vector(5));
        assert_eq!(metrics.report().freshness.count(), 2);
    }

    #[test]
    fn quiet_streams_yield_empty_steps_then_exhaustion() {
        let (r, engine) = trained();
        let store = SnapshotStore::new(FactorSnapshot::from_factors(
            engine.x().clone(),
            engine.theta().clone(),
        ));
        let metrics = Arc::new(ServeMetrics::new());
        let mut driver = OnlineLoop::fold_in(
            Box::new(engine),
            &r,
            replay_batcher(Vec::new(), r.n_cols()),
            &store,
            Arc::clone(&metrics),
            OnlineLoopConfig {
                max_batch_wait: Duration::from_millis(5),
                ..Default::default()
            },
        );
        // An exhausted replay stream disconnects; the loop may observe a
        // quiet window first but must terminate with no publishes.
        let report = driver.run().unwrap();
        assert_eq!(report.publishes, 0);
        assert_eq!(report.events, 0);
        assert_eq!(store.load().generation(), 1);
        assert_eq!(metrics.report().freshness.count(), 0);
    }

    #[test]
    fn mutation_stream_drives_the_loop_end_to_end() {
        let data = SyntheticConfig {
            m: 50,
            n: 30,
            nnz: 1200,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate();
        let r = data.to_csr();
        let mut engine = BaseAls::new(
            AlsConfig {
                f: F,
                lambda: 0.05,
                ..Default::default()
            },
            r.clone(),
        );
        for _ in 0..3 {
            engine.iterate();
        }
        let store = SnapshotStore::new(FactorSnapshot::from_factors(
            engine.x().clone(),
            engine.theta().clone(),
        ));
        let metrics = Arc::new(ServeMetrics::new());
        let stream = SyntheticMutationStream::new(
            &data,
            MutationStreamConfig {
                events: 120,
                new_users: 4,
                new_user_fraction: 0.2,
                ..Default::default()
            },
        );
        let mut driver = OnlineLoop::fold_in(
            Box::new(engine),
            &r,
            StreamBatcher::spawn(stream, 32),
            &store,
            Arc::clone(&metrics),
            OnlineLoopConfig {
                max_batch_events: 32,
                ..Default::default()
            },
        );
        let report = driver.run().unwrap();
        assert_eq!(report.events, 120);
        assert!(report.publishes >= 120 / 32);
        let freshness = metrics.report().freshness;
        assert_eq!(freshness.count(), 120);
        assert!(freshness.quantile(0.99) >= freshness.quantile(0.5));
        // New-pool users were appended and are servable.
        let snap = store.load();
        assert!(snap.n_users() > 50);
        assert!(!snap.recommend_one(50, 3, &[]).is_empty());
    }
}

//! The segmented, norm-ordered ItemStore's contract:
//!
//! 1. **Bit-identity** — retrieval over {one segment, base + appended
//!    tails, post-compaction} × {catalog-order, norm-descending} × shard
//!    counts returns byte-for-byte the same rankings as a contiguous
//!    catalog-order rebuild.
//! 2. **Id remap round trip** — a permuted store resolves every catalog id
//!    back to the original factor row, and rankings carry catalog ids.
//! 3. **O(a·f) item appends** — an item-appending delta copies exactly the
//!    appended rows' bytes (`DeltaStats`), never the whole Θ slab.
//! 4. **Systematic pruning** — on a skewed-norm catalog the
//!    norm-descending layout skips strictly more blocks than catalog order
//!    (the new pruning counters), with identical results.

use cumf_linalg::FactorMatrix;
use cumf_serve::{
    ApproxPolicy, FactorSnapshot, ItemLayout, Query, ScoreKind, ServeConfig, TopKIndex, TopKService,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic factors.
fn factors(seed: u64, m: usize, n: usize, f: usize) -> (FactorMatrix, FactorMatrix) {
    (
        FactorMatrix::random(m, f, 1.0, seed),
        FactorMatrix::random(n, f, 1.0, seed + 1),
    )
}

/// A catalog whose item norms are heavily skewed (a few heavy items, a long
/// near-zero tail) with the heavy items **scattered** across the id space —
/// the case where catalog-order pruning is data-dependent and a
/// norm-descending layout pays off.
fn skewed_norm_theta(n: usize, f: usize, seed: u64) -> FactorMatrix {
    let mut theta = FactorMatrix::random(n, f, 1.0, seed);
    for v in 0..n {
        // Pseudo-random scatter of the norm mass: ~1/64 of items keep a
        // large norm, everyone else shrinks toward zero.
        let h = (v.wrapping_mul(2654435761)) % 64;
        let scale = if h == 0 { 4.0 } else { 0.01 + 0.001 * h as f32 };
        for x in theta.vector_mut(v) {
            *x *= scale;
        }
    }
    theta
}

/// Builds the same catalog three ways per layout: monolithic, grown via
/// item-appending deltas (tail segments), and compacted back down.
fn variants(
    x: &FactorMatrix,
    theta: &FactorMatrix,
    cuts: &[usize],
    layout: ItemLayout,
) -> Vec<(&'static str, FactorSnapshot)> {
    let f = x.rank();
    let monolithic = FactorSnapshot::from_factors_with_layout(x.clone(), theta.clone(), layout);

    let n0 = cuts[0];
    let base_theta = FactorMatrix::from_vec(n0, f, theta.data()[..n0 * f].to_vec());
    let mut grown = FactorSnapshot::from_factors_with_layout(x.clone(), base_theta, layout);
    for w in cuts.windows(2) {
        let rows =
            FactorMatrix::from_vec(w[1] - w[0], f, theta.data()[w[0] * f..w[1] * f].to_vec());
        let mut delta = grown.delta();
        delta.append_items(&rows);
        let (next, stats) = grown.apply_delta(&delta).expect("append applies");
        assert_eq!(
            stats.item_factor_bytes_copied,
            (w[1] - w[0]) * f * 4,
            "append must copy exactly the appended rows"
        );
        grown = next;
    }
    assert_eq!(grown.n_items(), theta.len());
    assert_eq!(grown.items().segment_count(), cuts.len());

    let compacted = grown.compacted();
    assert_eq!(compacted.items().segment_count(), 1);

    vec![
        ("monolithic", monolithic),
        ("grown", grown),
        ("compacted", compacted),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Acceptance invariant: every (variant, layout, shard count, score
    /// kind) combination is bit-identical to the contiguous catalog-order
    /// baseline — and approximate retrieval with `epsilon = 0` and no
    /// block budget is bit-identical to all of them.
    #[test]
    fn segmented_and_permuted_retrieval_is_bit_identical(
        (m, n, f, seed) in (20usize..60, 200usize..600, 4usize..10, 0u64..500),
        cut_a in 1usize..100,
        cut_b in 0usize..100,
        k in 1usize..10,
        cosine in 0u8..2,
    ) {
        let (x, theta) = factors(seed, m, n, f);
        let score = if cosine == 1 { ScoreKind::Cosine } else { ScoreKind::Dot };
        // Segment boundaries strictly inside the catalog, unsorted input.
        let mut cuts = vec![cut_a.min(n - 1).max(1), (cut_a + cut_b).min(n - 1).max(1), n];
        cuts.dedup();
        let queries: Vec<Query> = (0..m as u32)
            .map(|u| Query { user: u, k, exclude: vec![u % 19, u % 7] })
            .collect();
        // The baseline is the contiguous catalog-order store — explicit,
        // since the construction default is norm-descending now.
        let baseline_snap =
            FactorSnapshot::from_factors_with_layout(x.clone(), theta.clone(), ItemLayout::CatalogOrder);
        let baseline = TopKIndex::new(Arc::new(baseline_snap), 64, score).query_batch(&queries);

        for layout in [ItemLayout::CatalogOrder, ItemLayout::NormDescending] {
            for (name, snap) in variants(&x, &theta, &cuts, layout) {
                let snap = Arc::new(snap);
                for shards in [1usize, 3, 7] {
                    let got = TopKIndex::with_shards(Arc::clone(&snap), 64, score, shards)
                        .query_batch(&queries);
                    prop_assert_eq!(
                        &got, &baseline,
                        "{} {:?} shards {} score {:?}", name, layout, shards, score
                    );
                    // Epsilon-zero approximate mode must not change a bit
                    // either, for any segmentation × layout × shard count ×
                    // score kind.
                    let approx = TopKIndex::with_approx(
                        Arc::clone(&snap), 64, score, shards, Some(ApproxPolicy::exact()),
                    )
                    .query_batch(&queries);
                    prop_assert_eq!(
                        &approx, &baseline,
                        "approx eps=0 {} {:?} shards {} score {:?}", name, layout, shards, score
                    );
                }
                // The single-request path agrees too.
                let one = snap.recommend_one(0, k, &[0, 19]);
                prop_assert_eq!(
                    one,
                    variants(&x, &theta, &cuts, ItemLayout::CatalogOrder)
                        .remove(0).1.recommend_one(0, k, &[0, 19]),
                    "recommend_one {} {:?}", name, layout
                );
            }
        }
    }

    /// Recall degrades monotonically in epsilon on a fixed seeded catalog:
    /// a larger epsilon never scans more blocks and never recalls more of
    /// the exact top-k (single compacted segment — the scanned item set
    /// shrinks as epsilon grows, so recall is monotone non-increasing).
    #[test]
    fn recall_is_monotone_non_increasing_in_epsilon(
        seed in 0u64..200,
        k in 1usize..12,
    ) {
        let x = FactorMatrix::random(12, 8, 1.0, seed);
        let theta = skewed_norm_theta(3000, 8, seed + 1);
        let snap = Arc::new(FactorSnapshot::from_factors_with_layout(
            x, theta, ItemLayout::NormDescending,
        ));
        let queries: Vec<Query> = (0..12u32).map(|u| Query::new(u, k)).collect();
        let mut prev_recall = f64::INFINITY;
        let mut prev_scored = u64::MAX;
        for eps in [0.0f32, 0.05, 0.1, 0.2, 0.4, 0.8] {
            let report = cumf_serve::measure_recall(
                &snap, &queries, 64, ScoreKind::Dot, 1, &ApproxPolicy::with_epsilon(eps),
            );
            prop_assert!(
                report.mean_recall <= prev_recall + 1e-12,
                "recall rose from {} to {} at eps {}", prev_recall, report.mean_recall, eps
            );
            prop_assert!(
                report.approx_stats.blocks_scored <= prev_scored,
                "scan grew from {} to {} blocks at eps {}",
                prev_scored, report.approx_stats.blocks_scored, eps
            );
            // Full-length lists at every epsilon (never short, never empty).
            prop_assert!(report.queries == 12);
            prev_recall = report.mean_recall;
            prev_scored = report.approx_stats.blocks_scored;
        }
    }
}

/// Id-remap round trip: a norm-permuted, segmented store must resolve every
/// catalog id to the original row (point lookups, predictions, and the
/// materialized matrix), and its rankings must carry catalog ids.
#[test]
fn id_remap_round_trips_through_permuted_segments() {
    let (x, theta) = factors(33, 25, 300, 6);
    let cuts = [120usize, 200, 300];
    for (name, snap) in variants(&x, &theta, &cuts, ItemLayout::NormDescending) {
        for v in 0..300u32 {
            assert_eq!(
                snap.item_vector(v).unwrap(),
                theta.vector(v as usize),
                "{name} item {v}"
            );
        }
        assert_eq!(snap.item_factors_matrix(), theta, "{name}");
        for u in [0u32, 7, 24] {
            for v in [0u32, 119, 120, 299] {
                let expect = cumf_linalg::blas::dot(x.vector(u as usize), theta.vector(v as usize));
                assert_eq!(snap.predict(u, v), Some(expect), "{name} ({u}, {v})");
            }
        }
        assert_eq!(snap.item_vector(300), None, "{name}");
    }
}

/// Acceptance criterion: an item-appending delta copies `O(a·f)` item
/// bytes — asserted via `DeltaStats` against a catalog three orders of
/// magnitude larger than the append.
#[test]
fn item_append_copies_o_of_a_f_bytes_not_theta() {
    let (m, n, f, a) = (50usize, 50_000usize, 16usize, 64usize);
    for layout in [ItemLayout::CatalogOrder, ItemLayout::NormDescending] {
        let (x, theta) = factors(91, m, n, f);
        let base = FactorSnapshot::from_factors_with_layout(x, theta, layout);
        let mut delta = base.delta();
        delta.append_items(&FactorMatrix::random(a, f, 1.0, 92));
        let (next, stats) = base.apply_delta(&delta).unwrap();
        // Exactly the appended rows, nothing proportional to n.
        assert_eq!(stats.item_factor_bytes_copied, a * f * 4, "{layout:?}");
        assert!(
            stats.item_factor_bytes_copied * 100 < n * f * 4,
            "{layout:?}: an append must not approach a full Θ copy"
        );
        assert_eq!(stats.norms_recomputed, a, "{layout:?}");
        assert_eq!(next.items().segment_count(), 2, "{layout:?}");
        assert_eq!(next.n_items(), n + a);
    }
}

/// Acceptance criterion: on a skewed-norm catalog the norm-descending
/// layout prunes **strictly more** blocks than catalog order, while the
/// results stay bit-identical.
#[test]
fn norm_ordered_layout_prunes_strictly_more_blocks() {
    let f = 16;
    let n = 20_000;
    let x = FactorMatrix::random(40, f, 1.0, 5);
    let theta = skewed_norm_theta(n, f, 6);
    let queries: Vec<Query> = (0..40u32).map(|u| Query::new(u, 10)).collect();

    let plain = Arc::new(FactorSnapshot::from_factors_with_layout(
        x.clone(),
        theta.clone(),
        ItemLayout::CatalogOrder,
    ));
    let permuted = Arc::new(FactorSnapshot::from_factors_with_layout(
        x,
        theta,
        ItemLayout::NormDescending,
    ));
    let (plain_results, plain_stats) =
        TopKIndex::new(Arc::clone(&plain), 512, ScoreKind::Dot).query_batch_stats(&queries);
    let (permuted_results, permuted_stats) =
        TopKIndex::new(Arc::clone(&permuted), 512, ScoreKind::Dot).query_batch_stats(&queries);

    assert_eq!(
        permuted_results, plain_results,
        "layout must not change results"
    );
    assert!(
        permuted_stats.blocks_pruned > plain_stats.blocks_pruned,
        "norm-descending must skip strictly more blocks: permuted {} vs catalog {}",
        permuted_stats.blocks_pruned,
        plain_stats.blocks_pruned
    );
    // Same total block-visit decisions either way.
    assert_eq!(
        permuted_stats.blocks_scored + permuted_stats.blocks_pruned,
        plain_stats.blocks_scored + plain_stats.blocks_pruned
    );
    // And the permuted layout skips the overwhelming majority of the
    // catalog here — the "systematic" half of the claim.
    assert!(
        permuted_stats.pruned_fraction() > 0.5,
        "expected most blocks pruned, got {:.1}%",
        100.0 * permuted_stats.pruned_fraction()
    );
}

/// Service-level: sustained item-appending deltas auto-compact once past
/// `max_item_segments`, replies keep matching a contiguous rebuild, and
/// unchanged users' cache entries survive the compaction (it changes
/// nothing observable).
#[test]
fn service_auto_compacts_under_sustained_appends() {
    let (x, theta) = factors(71, 30, 200, 6);
    let f = 6;
    let service = TopKService::start(
        FactorSnapshot::from_factors_with_layout(
            x.clone(),
            theta.clone(),
            ItemLayout::NormDescending,
        ),
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            max_item_segments: 3,
            ..Default::default()
        },
    );
    let client = service.client();

    let mut full_theta = theta;
    for round in 0..6u64 {
        let rows = FactorMatrix::random(10, f, 1.0, 100 + round);
        full_theta.append_rows(&rows);
        let mut delta = service.snapshot().delta();
        delta.append_items(&rows);
        service.publish_delta(&delta).unwrap();

        let reference = FactorSnapshot::from_factors(x.clone(), full_theta.clone());
        for u in [0u32, 13, 29] {
            assert_eq!(
                client.recommend(u, 8, &[u]).unwrap(),
                reference.recommend_one(u, 8, &[u]),
                "round {round} user {u}"
            );
        }
        assert!(
            service.snapshot().items().segment_count() <= 4,
            "segment count must stay bounded, round {round}: {}",
            service.snapshot().items().segment_count()
        );
    }
    let m = service.metrics();
    assert!(m.item_compactions >= 1, "auto-compaction must have fired");
    assert_eq!(service.poisoned(), None);

    // An explicit compaction retains cached entries: same user, same reply,
    // no extra cache miss.
    let before = client.recommend(5, 6, &[]).unwrap();
    let misses = service.metrics().cache_misses;
    let mut delta = service.snapshot().delta();
    delta.append_items(&FactorMatrix::random(1, f, 1.0, 999));
    service.publish_delta(&delta).unwrap(); // appends invalidate lazily...
    let _ = client.recommend(5, 6, &[]).unwrap(); // ...rescore once
    assert!(service.metrics().cache_misses > misses);
    // The worker inserts the rescored entry *after* replying; wait for the
    // entry to actually land (a later identical request hits) so the
    // compaction below restamps it rather than racing the insert.
    let hits_goal = service.metrics().cache_hits + 1;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.metrics().cache_hits < hits_goal {
        assert!(std::time::Instant::now() < deadline, "entry never cached");
        let _ = client.recommend(5, 6, &[]).unwrap();
    }
    let misses_before_compaction = service.metrics().cache_misses;
    service.compact_items();
    let after = client.recommend(5, 6, &[]).unwrap();
    assert_eq!(
        service.metrics().cache_misses,
        misses_before_compaction,
        "compaction must retain the cache (no rescoring)"
    );
    assert_eq!(after.len(), before.len());
}

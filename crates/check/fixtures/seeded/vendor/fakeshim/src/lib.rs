//! Seeded-fixture shim: grew `sneaky()` without updating SURFACE.txt,
//! while the recorded `removed()` no longer exists.
pub fn stable() {}

pub fn sneaky() {}

pub(crate) fn hidden_helper() {}

#[cfg(test)]
mod tests {
    pub fn hidden_test_only() {}
}

//! API-compatible shim for [crossbeam](https://docs.rs/crossbeam)'s
//! `channel` module.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset `cumf-rs` uses: multi-producer **multi-consumer** channels
//! ([`channel::bounded`] / [`channel::unbounded`]) with clonable
//! [`channel::Sender`] / [`channel::Receiver`] endpoints and disconnect
//! semantics matching crossbeam's (`recv` fails once all senders are gone
//! and the queue is drained; `send` fails once all receivers are gone).
//!
//! Implemented as a `Mutex<VecDeque>` + two `Condvar`s — adequate for the
//! pipeline depths used here (out-of-core prefetch, NOMAD token rings); the
//! real crate's lock-free implementation can be swapped back in via the root
//! `Cargo.toml` when a registry is available.

pub mod channel {
    //! MPMC channels with crossbeam's API.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped;
    /// carries the unsent message back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`], mirroring crossbeam's API:
    /// the rejected message rides back inside the error.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity (receivers still connected).
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout (senders still connected).
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.  Clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.  Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (bounded channels block on a
        /// full queue); fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: enqueues if the channel has room, otherwise
        /// returns the message inside [`TrySendError::Full`].
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// when full.  `cap = 0` is rounded up to 1 (the shim has no
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, RecvTimeoutError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut local = Vec::new();
                    while let Ok(v) = rx.recv() {
                        local.push(v);
                    }
                    local
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}

//! SparkALS-style ALS with partial `Θ` replication.
//!
//! Spark MLlib's ALS improves on PALS by sending each `X` partition only the
//! `θ_v` columns its rows actually reference (§2.2 of the cuMF paper).  The
//! cuMF paper criticizes exactly this step: building the per-partition
//! column sets is a graph-partitioning-like task, the transfers are large
//! when `Nz ≫ m`, and a partition's working set may still not fit on one
//! device.  This solver reproduces the algorithm and *measures* that
//! communication volume so the claims can be checked quantitatively.

use crate::als_util;
use cumf_core::{Engine, TrainMetrics};
use cumf_linalg::FactorMatrix;
use cumf_sparse::{horizontal_partition, Csr, Entry, SparseBlock};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Hyper-parameters of the SparkALS-style solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkAlsConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Weighted-λ regularization.
    pub lambda: f32,
    /// Number of partitions ("executors").
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparkAlsConfig {
    fn default() -> Self {
        Self {
            f: 32,
            lambda: 0.05,
            partitions: 4,
            seed: 42,
        }
    }
}

/// Communication statistics of one side update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShuffleStats {
    /// Total factor vectors shipped to partitions (with duplicates across
    /// partitions — the partial-replication overhead).
    pub vectors_shipped: u64,
    /// The same quantity in bytes.
    pub bytes_shipped: u64,
    /// Number of distinct vectors that would have sufficed with no
    /// replication (i.e. the size of the fixed factor matrix).
    pub distinct_vectors: u64,
}

impl ShuffleStats {
    /// Replication factor: how many times the average needed vector is
    /// shipped.
    pub fn replication_factor(&self) -> f64 {
        if self.distinct_vectors == 0 {
            0.0
        } else {
            self.vectors_shipped as f64 / self.distinct_vectors as f64
        }
    }
}

/// SparkALS-style solver with partial replication.
pub struct SparkAlsStyle {
    config: SparkAlsConfig,
    train_entries: Vec<Entry>,
    row_blocks: Vec<SparseBlock>,
    col_blocks: Vec<SparseBlock>,
    x: FactorMatrix,
    theta: FactorMatrix,
    last_shuffle: ShuffleStats,
}

impl SparkAlsStyle {
    /// Builds the solver.
    pub fn new(config: SparkAlsConfig, r: &Csr) -> Self {
        let parts_rows = config.partitions.min(r.n_rows().max(1) as usize);
        let parts_cols = config.partitions.min(r.n_cols().max(1) as usize);
        let row_blocks = horizontal_partition(r, parts_rows).expect("row partition");
        let col_blocks =
            horizontal_partition(&r.transpose(), parts_cols).expect("column partition");
        let x = als_util::init_factors(r.n_rows() as usize, config.f, config.seed);
        let theta = als_util::init_factors(r.n_cols() as usize, config.f, config.seed ^ 0x7e7a);
        Self {
            config,
            train_entries: r.iter().collect(),
            row_blocks,
            col_blocks,
            x,
            theta,
            last_shuffle: ShuffleStats::default(),
        }
    }

    /// Communication statistics of the most recent side update.
    pub fn last_shuffle(&self) -> ShuffleStats {
        self.last_shuffle
    }

    fn update_side(
        blocks: &[SparseBlock],
        fixed: &FactorMatrix,
        lambda: f32,
        out_len: usize,
        f: usize,
    ) -> (FactorMatrix, ShuffleStats) {
        let mut out = FactorMatrix::zeros(out_len, f);
        let mut stats = ShuffleStats {
            distinct_vectors: fixed.len() as u64,
            ..Default::default()
        };

        let results: Vec<(u32, FactorMatrix, u64)> = blocks
            .par_iter()
            .map(|block| {
                // Step 1 (the "graph partitioning" step the paper criticizes):
                // find the distinct columns this partition needs.
                let mut needed: Vec<u32> = block.csr.col_idx().to_vec();
                needed.sort_unstable();
                needed.dedup();

                // Step 2: "ship" exactly those vectors to the partition.
                let mut local_index: HashMap<u32, usize> = HashMap::with_capacity(needed.len());
                let mut local_fixed = FactorMatrix::zeros(needed.len(), f);
                for (i, &v) in needed.iter().enumerate() {
                    local_index.insert(v, i);
                    local_fixed
                        .vector_mut(i)
                        .copy_from_slice(fixed.vector(v as usize));
                }

                // Step 3: solve the partition's rows against the shipped subset.
                // Re-index the block's columns into the local subset first.
                let mut local = FactorMatrix::zeros(block.n_rows() as usize, f);
                for u in 0..block.n_rows() {
                    let (cols, vals) = block.csr.row(u);
                    if cols.is_empty() {
                        continue;
                    }
                    // Build a tiny one-row CSR in local column space.
                    let mut coo = cumf_sparse::Coo::new(1, needed.len() as u32);
                    for (&c, &val) in cols.iter().zip(vals.iter()) {
                        coo.push(0, local_index[&c] as u32, val)
                            .expect("local index in range");
                    }
                    let local_row = coo.to_csr();
                    let mut row = vec![0.0f32; f];
                    als_util::solve_row(&local_row, 0, &local_fixed, lambda, &mut row);
                    local.vector_mut(u as usize).copy_from_slice(&row);
                }
                (block.row_start, local, needed.len() as u64)
            })
            .collect();

        for (row_start, local, shipped) in results {
            stats.vectors_shipped += shipped;
            for u in 0..local.len() {
                out.vector_mut(row_start as usize + u)
                    .copy_from_slice(local.vector(u));
            }
        }
        stats.bytes_shipped = stats.vectors_shipped * f as u64 * 4;
        (out, stats)
    }

    /// One full ALS iteration with partial replication in both halves.
    pub fn als_iteration(&mut self) {
        let f = self.config.f;
        let (x, sx) = Self::update_side(
            &self.row_blocks,
            &self.theta,
            self.config.lambda,
            self.x.len(),
            f,
        );
        self.x = x;
        let (theta, st) = Self::update_side(
            &self.col_blocks,
            &self.x,
            self.config.lambda,
            self.theta.len(),
            f,
        );
        self.theta = theta;
        self.last_shuffle = ShuffleStats {
            vectors_shipped: sx.vectors_shipped + st.vectors_shipped,
            bytes_shipped: sx.bytes_shipped + st.bytes_shipped,
            distinct_vectors: sx.distinct_vectors + st.distinct_vectors,
        };
    }
}

impl Engine for SparkAlsStyle {
    fn name(&self) -> &'static str {
        "SparkALS (partial replication)"
    }

    fn train_sweep(&mut self) -> f64 {
        self.als_iteration();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.x.len(), "X has the wrong number of rows");
        assert_eq!(
            theta.len(),
            self.theta.len(),
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x = x;
        self.theta = theta;
    }

    fn attach_metrics(&mut self, _metrics: Arc<TrainMetrics>) {}

    fn train_rmse(&self) -> f64 {
        self.rmse(&self.train_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pals::{Pals, PalsConfig};
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 150,
            n: 90,
            nnz: 5000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn spark_als_converges_and_matches_pals() {
        let r = ratings();
        let mut spark = SparkAlsStyle::new(
            SparkAlsConfig {
                f: 8,
                partitions: 4,
                ..Default::default()
            },
            &r,
        );
        let mut pals = Pals::new(
            PalsConfig {
                f: 8,
                workers: 4,
                ..Default::default()
            },
            &r,
        );
        for _ in 0..2 {
            spark.train_sweep();
            pals.train_sweep();
        }
        // Partial replication must not change the ALS result.
        assert!(spark.x().max_abs_diff(pals.x()) < 1e-3);
        assert!(spark.train_rmse() < 0.5);
    }

    #[test]
    fn shuffle_statistics_are_recorded() {
        let r = ratings();
        let mut spark = SparkAlsStyle::new(
            SparkAlsConfig {
                f: 8,
                partitions: 4,
                ..Default::default()
            },
            &r,
        );
        spark.train_sweep();
        let s = spark.last_shuffle();
        assert!(s.vectors_shipped > 0);
        assert_eq!(s.bytes_shipped, s.vectors_shipped * 8 * 4);
        assert!(s.replication_factor() >= 1.0);
    }

    #[test]
    fn more_partitions_means_more_replication() {
        // The cuMF paper's point: partial replication still duplicates
        // popular columns, and it gets worse with more partitions.
        let r = ratings();
        let mut p2 = SparkAlsStyle::new(
            SparkAlsConfig {
                partitions: 2,
                ..Default::default()
            },
            &r,
        );
        let mut p8 = SparkAlsStyle::new(
            SparkAlsConfig {
                partitions: 8,
                ..Default::default()
            },
            &r,
        );
        p2.train_sweep();
        p8.train_sweep();
        assert!(p8.last_shuffle().vectors_shipped > p2.last_shuffle().vectors_shipped);
    }

    #[test]
    fn single_partition_ships_each_vector_once() {
        let r = ratings();
        let mut p1 = SparkAlsStyle::new(
            SparkAlsConfig {
                partitions: 1,
                ..Default::default()
            },
            &r,
        );
        p1.train_sweep();
        // With one partition the replication factor collapses to ≤ 1
        // (every referenced vector shipped exactly once).
        assert!(p1.last_shuffle().replication_factor() <= 1.0 + 1e-9);
    }
}

//! Bounded top-k selection over scored items.
//!
//! Retrieval ranks every candidate item for a user but only ever returns the
//! `k` best.  Sorting all `n` scores costs `O(n log n)` and materializes the
//! whole score vector; the bounded min-heap here costs `O(n log k)` with
//! `O(k)` state, which is what makes blocked scoring over 100k+ item
//! catalogs cheap.  [`retrieve_top_k`] drives the heap over item blocks via
//! [`crate::batch::batch_score_block`] — this is the single-request serving
//! path that both `MatrixFactorizer::recommend` and the `cumf-serve` batch
//! scorer share.

use crate::batch::batch_score_block;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of items scored per block in [`retrieve_top_k`].  512 vectors of
/// `f ≤ 128` floats keep the block within L2 while amortizing heap checks.
pub const DEFAULT_ITEM_BLOCK: usize = 512;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    item: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score = "greater" so BinaryHeap (a max-heap) keeps the
        // *worst* kept item at the top, ready for eviction.  Ties break
        // toward evicting the larger item id, so results prefer small ids —
        // deterministic regardless of scoring order.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded min-heap keeping the `k` highest-scored items seen so far.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Scored>,
}

impl TopK {
    /// Creates an accumulator for the best `k` items.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one scored item; keeps it only if it beats the current k-th
    /// best.  NaN scores are rejected.
    #[inline]
    pub fn push(&mut self, item: u32, score: f32) {
        if score.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Scored { score, item });
            return;
        }
        let worst = self.heap.peek().expect("heap is non-empty when full");
        let candidate = Scored { score, item };
        // `worst` sorts "greater" when its score is lower (see `Ord`).
        if *worst > candidate {
            self.heap.pop();
            self.heap.push(candidate);
        }
    }

    /// Lowest score currently kept, if the heap is full (useful for
    /// short-circuiting whole blocks of low-scoring candidates).
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|s| s.score)
        }
    }

    /// Number of items currently held (`≤ k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no item has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the heap, returning `(item, score)` sorted by score
    /// descending (ties by item id ascending).
    pub fn into_sorted_vec(self) -> Vec<(u32, f32)> {
        let mut v: Vec<Scored> = self.heap.into_vec();
        v.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
        v.into_iter().map(|s| (s.item, s.score)).collect()
    }
}

/// Blocked top-k retrieval of a single user vector against a row-major item
/// factor table: scores `items` in blocks of `item_block` vectors through
/// [`batch_score_block`] and keeps the best `k` in a [`TopK`] heap.
///
/// `skip(item)` excludes items from the result (typically the user's
/// already-rated items).  Returns `(item, score)` sorted by score descending.
pub fn retrieve_top_k<F: FnMut(u32) -> bool>(
    user: &[f32],
    items: &[f32],
    f: usize,
    k: usize,
    item_block: usize,
    mut skip: F,
) -> Vec<(u32, f32)> {
    assert!(f > 0, "latent dimension must be positive");
    assert!(item_block > 0, "item block must be positive");
    assert_eq!(user.len(), f, "user vector length mismatch");
    if k == 0 {
        return Vec::new();
    }
    assert_eq!(items.len() % f, 0, "item buffer not a multiple of f");
    let n_items = items.len() / f;
    let mut topk = TopK::new(k);
    let mut scores = vec![0.0f32; item_block.min(n_items.max(1))];
    for start in (0..n_items).step_by(item_block) {
        let end = (start + item_block).min(n_items);
        let block = &items[start * f..end * f];
        let out = &mut scores[..end - start];
        batch_score_block(user, 1, block, end - start, f, out);
        for (j, &s) in out.iter().enumerate() {
            let item = (start + j) as u32;
            if !skip(item) {
                topk.push(item, s);
            }
        }
    }
    topk.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FactorMatrix;

    #[test]
    fn keeps_the_k_best_sorted() {
        let mut t = TopK::new(3);
        for (i, s) in [1.0f32, 5.0, 3.0, 4.0, 2.0].iter().enumerate() {
            t.push(i as u32, *s);
        }
        assert_eq!(t.into_sorted_vec(), vec![(1, 5.0), (3, 4.0), (2, 3.0)]);
    }

    #[test]
    fn fewer_items_than_k_returns_all() {
        let mut t = TopK::new(10);
        t.push(7, 0.5);
        t.push(3, 1.5);
        assert_eq!(t.into_sorted_vec(), vec![(3, 1.5), (7, 0.5)]);
    }

    #[test]
    fn ties_prefer_small_item_ids() {
        let mut t = TopK::new(2);
        for item in [9u32, 1, 5, 3] {
            t.push(item, 1.0);
        }
        assert_eq!(t.into_sorted_vec(), vec![(1, 1.0), (3, 1.0)]);
    }

    #[test]
    fn threshold_tracks_the_kth_score() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(0, 1.0);
        assert_eq!(t.threshold(), None);
        t.push(1, 3.0);
        assert_eq!(t.threshold(), Some(1.0));
        t.push(2, 2.0);
        assert_eq!(t.threshold(), Some(2.0));
    }

    #[test]
    fn nan_scores_are_ignored() {
        let mut t = TopK::new(2);
        t.push(0, f32::NAN);
        t.push(1, 1.0);
        assert_eq!(t.into_sorted_vec(), vec![(1, 1.0)]);
    }

    #[test]
    fn retrieve_matches_full_sort_reference() {
        let f = 8;
        let n = 1000;
        let theta = FactorMatrix::random(n, f, 1.0, 42);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 7).data().to_vec();
        let got = retrieve_top_k(&user, theta.data(), f, 10, 64, |v| v % 97 == 0);

        // Reference: score the whole table with the same kernel, then fully
        // sort — the heap must select exactly the same winners.
        let mut all_scores = vec![0.0f32; n];
        batch_score_block(&user, 1, theta.data(), n, f, &mut all_scores);
        let mut reference: Vec<(u32, f32)> = (0..n as u32)
            .filter(|v| v % 97 != 0)
            .map(|v| (v, all_scores[v as usize]))
            .collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        reference.truncate(10);
        assert_eq!(got, reference);
    }

    #[test]
    fn block_size_does_not_change_results() {
        let f = 4;
        let theta = FactorMatrix::random(333, f, 1.0, 3);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 9).data().to_vec();
        let a = retrieve_top_k(&user, theta.data(), f, 7, 8, |_| false);
        let b = retrieve_top_k(&user, theta.data(), f, 7, 1000, |_| false);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }
}

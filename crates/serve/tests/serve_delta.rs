//! Correctness of the incremental delta-publication path.
//!
//! The contract under test: a [`SnapshotDelta`] applied through
//! `publish_delta` must be **observationally identical** to tearing the
//! snapshot down and rebuilding it from the post-delta factor matrices —
//! for every shard count, every worker count, with the targeted cache
//! invalidation in between — while physically copying only `O(u·f)` user
//! factor bytes (the byte-accounting test) and surviving interleaved full
//! and delta publishes under concurrent load (the hot-swap test).

use cumf_linalg::FactorMatrix;
use cumf_serve::{
    DeltaError, FactorSnapshot, Query, ScoreKind, ServeConfig, SnapshotDelta, TopKIndex,
    TopKService, USER_COW_ROWS,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic base factors.
fn base_factors(seed: u64, m: usize, n: usize, f: usize) -> (FactorMatrix, FactorMatrix) {
    (
        FactorMatrix::random(m, f, 1.0, seed),
        FactorMatrix::random(n, f, 1.0, seed + 1),
    )
}

/// The delta's content, described declaratively so the same content can be
/// chained onto any base generation (the service stamps its own).
#[derive(Debug, Clone)]
struct DeltaSpec {
    changed: Vec<u32>,
    appended_users: usize,
    appended_items: usize,
    seed: u64,
}

impl DeltaSpec {
    fn build(&self, base_generation: u64, f: usize) -> SnapshotDelta {
        let mut delta = SnapshotDelta::new(base_generation, f);
        let rows = FactorMatrix::random(self.changed.len().max(1), f, 1.0, self.seed);
        for (i, &u) in self.changed.iter().enumerate() {
            delta.update_user(u, rows.vector(i));
        }
        if self.appended_users > 0 {
            delta.append_users(&FactorMatrix::random(
                self.appended_users,
                f,
                1.0,
                self.seed + 1,
            ));
        }
        if self.appended_items > 0 {
            delta.append_items(&FactorMatrix::random(
                self.appended_items,
                f,
                1.0,
                self.seed + 2,
            ));
        }
        delta
    }

    /// The post-delta factors, materialized the expensive way: full copies.
    fn rebuild(&self, x: &FactorMatrix, theta: &FactorMatrix) -> (FactorMatrix, FactorMatrix) {
        let f = x.rank();
        let mut x_data = x.data().to_vec();
        let rows = FactorMatrix::random(self.changed.len().max(1), f, 1.0, self.seed);
        for (i, &u) in self.changed.iter().enumerate() {
            x_data[u as usize * f..(u as usize + 1) * f].copy_from_slice(rows.vector(i));
        }
        let mut m = x.len();
        if self.appended_users > 0 {
            let app = FactorMatrix::random(self.appended_users, f, 1.0, self.seed + 1);
            x_data.extend_from_slice(app.data());
            m += self.appended_users;
        }
        let mut theta_data = theta.data().to_vec();
        let mut n = theta.len();
        if self.appended_items > 0 {
            let app = FactorMatrix::random(self.appended_items, f, 1.0, self.seed + 2);
            theta_data.extend_from_slice(app.data());
            n += self.appended_items;
        }
        (
            FactorMatrix::from_vec(m, f, x_data),
            FactorMatrix::from_vec(n, f, theta_data),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance invariant: retrieval after `apply_delta` is bit-identical
    /// to a full snapshot rebuild with the same factors, for every shard
    /// count.
    #[test]
    fn delta_retrieval_is_bit_identical_to_full_rebuild(
        (m, n, f, seed) in (70usize..200, 150usize..700, 4usize..12, 0u64..1000),
        n_changed in 0usize..12,
        appended_users in 0usize..6,
        appended_items in 0usize..6,
    ) {
        let (x, theta) = base_factors(seed, m, n, f);
        let spec = DeltaSpec {
            changed: (0..n_changed).map(|i| ((i * 31 + seed as usize) % m) as u32).collect(),
            appended_users,
            appended_items,
            seed: seed ^ 0x5EED,
        };
        let base = FactorSnapshot::from_factors(x.clone(), theta.clone());
        let delta = spec.build(base.generation(), f);
        let (next, _) = base.apply_delta(&delta).expect("delta applies");

        let (x_full, theta_full) = spec.rebuild(&x, &theta);
        let rebuilt = FactorSnapshot::from_factors(x_full, theta_full);

        prop_assert_eq!(next.n_users(), rebuilt.n_users());
        prop_assert_eq!(next.n_items(), rebuilt.n_items());
        for v in 0..next.n_items() as u32 {
            prop_assert_eq!(next.item_norm(v), rebuilt.item_norm(v), "item {}", v);
            prop_assert_eq!(next.item_vector(v), rebuilt.item_vector(v), "item {}", v);
        }
        for u in 0..next.n_users() as u32 {
            prop_assert_eq!(next.user_vector(u), rebuilt.user_vector(u), "user {}", u);
        }

        // Batched, sharded retrieval over the delta-built snapshot is
        // bit-identical to the rebuilt snapshot for every shard count.
        let queries: Vec<Query> = (0..next.n_users() as u32)
            .map(|u| Query { user: u, k: 8, exclude: vec![u % 17] })
            .collect();
        let expected = TopKIndex::new(Arc::new(rebuilt), 64, ScoreKind::Dot).query_batch(&queries);
        for shards in [1usize, 2, 5] {
            let got = TopKIndex::with_shards(Arc::new(next.clone()), 64, ScoreKind::Dot, shards)
                .query_batch(&queries);
            prop_assert_eq!(&got, &expected, "shards {}", shards);
        }
    }
}

/// Service-level bit-identity across worker × shard combinations, with the
/// targeted cache invalidation on the path.
#[test]
fn service_replies_after_delta_match_full_rebuild_for_every_pool_shape() {
    let (m, n, f) = (90usize, 400usize, 8usize);
    let (x, theta) = base_factors(7, m, n, f);
    let spec = DeltaSpec {
        changed: vec![3, 40, 41, 88],
        appended_users: 5,
        appended_items: 3,
        seed: 99,
    };
    let (x_full, theta_full) = spec.rebuild(&x, &theta);
    let rebuilt = FactorSnapshot::from_factors(x_full, theta_full);

    for (workers, shards) in [(1usize, 1usize), (1, 4), (3, 1), (4, 3)] {
        let service = TopKService::start(
            FactorSnapshot::from_factors(x.clone(), theta.clone()),
            ServeConfig {
                workers,
                shards,
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        let client = service.client();
        // Warm the cache (including a soon-to-be-appended user id, whose
        // empty result must not survive the delta).
        for u in [0u32, 3, 88, m as u32 + 2] {
            let _ = client.recommend(u, 6, &[]).unwrap();
        }
        let delta = spec.build(service.snapshot().generation(), f);
        let (generation, stats) = service.publish_delta(&delta).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(stats.changed_users, 4);

        for u in 0..rebuilt.n_users() as u32 {
            let got = client.recommend(u, 6, &[]).unwrap();
            let expect = rebuilt.recommend_one(u, 6, &[]);
            assert_eq!(got, expect, "workers {workers} shards {shards} user {u}");
        }
        assert_eq!(service.metrics().delta_publishes, 1);
        assert_eq!(service.poisoned(), None);
    }
}

/// Acceptance invariant: a `u`-user delta copies `O(u·f)` factor bytes —
/// bounded by `u` COW blocks — not the `O(m·f)` of a full republication.
#[test]
fn delta_publish_copies_o_of_u_f_bytes() {
    let (m, n, f) = (USER_COW_ROWS * 512, 1000usize, 16usize);
    let (x, theta) = base_factors(5, m, n, f);
    let base = FactorSnapshot::from_factors(x, theta);
    let full_bytes = m * f * 4;

    for u in [1usize, 7, 32] {
        let mut delta = base.delta();
        let rows = FactorMatrix::random(u, f, 1.0, 1234);
        for i in 0..u {
            // Spread the users across distinct COW blocks — the worst case
            // for the sharing (every changed user pays a whole block).
            delta.update_user((i * USER_COW_ROWS * 7 % m) as u32, rows.vector(i));
        }
        let (_, stats) = base.apply_delta(&delta).unwrap();
        assert_eq!(stats.changed_users, u);
        // The O(u·f) bound, with the COW block size as the constant...
        assert!(
            stats.user_factor_bytes_copied <= u * USER_COW_ROWS * f * 4,
            "u={u}: copied {} > bound {}",
            stats.user_factor_bytes_copied,
            u * USER_COW_ROWS * f * 4
        );
        // ...and nowhere near a full copy: 512 blocks total, at most 32
        // touched.
        assert!(
            stats.user_factor_bytes_copied * 8 <= full_bytes,
            "u={u}: copied {} vs full {}",
            stats.user_factor_bytes_copied,
            full_bytes
        );
        assert_eq!(stats.item_factor_bytes_copied, 0, "item side is shared");
        assert_eq!(
            stats.user_blocks_shared,
            m / USER_COW_ROWS - u,
            "exactly {u} blocks unshared"
        );
    }
}

/// Targeted invalidation: after a delta publish, unchanged users' cached
/// results keep serving (cache hits), changed users are rescored against
/// the new factors.
#[test]
fn delta_publish_keeps_unrelated_cache_entries_hot() {
    let (x, theta) = base_factors(11, 60, 300, 8);
    let service = TopKService::start(
        FactorSnapshot::from_factors(x, theta),
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let client = service.client();
    let a_before = client.recommend(5, 7, &[]).unwrap();
    let _b_before = client.recommend(20, 7, &[]).unwrap();
    let misses_before = service.metrics().cache_misses;

    // Change user 20 only.
    let mut delta = service.snapshot().delta();
    delta.update_user(20, &[2.0; 8]);
    service.publish_delta(&delta).unwrap();

    // User 5's entry survived the publish: a hit, same result.
    let a_after = client.recommend(5, 7, &[]).unwrap();
    assert_eq!(a_after, a_before);
    assert_eq!(
        service.metrics().cache_misses,
        misses_before,
        "unchanged user was rescored after a targeted delta publish"
    );

    // User 20 is rescored against the new factors.
    let b_after = client.recommend(20, 7, &[]).unwrap();
    let expect = service.snapshot().recommend_one(20, 7, &[]);
    assert_eq!(b_after, expect);
    assert!(service.metrics().cache_misses > misses_before);

    // A full publish still invalidates everything, delta retention or not.
    let (x2, theta2) = base_factors(77, 60, 300, 8);
    service.publish(FactorSnapshot::from_factors(x2, theta2));
    let a_fresh = client.recommend(5, 7, &[]).unwrap();
    assert_eq!(a_fresh, service.snapshot().recommend_one(5, 7, &[]));
    assert_ne!(a_fresh, a_before, "stale entry served after full publish");
}

/// A delta appending catalog items must invalidate every cached ranking —
/// the new item can enter anyone's top-k.
#[test]
fn item_appending_delta_invalidates_all_users() {
    let (x, theta) = base_factors(21, 30, 200, 6);
    let service = TopKService::start(
        FactorSnapshot::from_factors(x, theta),
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let client = service.client();
    let before = client.recommend(4, 5, &[]).unwrap();

    // Append an item that dominates every dot product.
    let mut delta = service.snapshot().delta();
    delta.append_items(&FactorMatrix::from_vec(1, 6, vec![50.0; 6]));
    service.publish_delta(&delta).unwrap();

    let after = client.recommend(4, 5, &[]).unwrap();
    assert_ne!(after, before);
    assert_eq!(after[0].0, 200, "appended beacon item must rank first");
}

/// Stale deltas are rejected, not silently applied over a newer publish.
#[test]
fn stale_delta_is_rejected_by_the_service() {
    let (x, theta) = base_factors(31, 20, 100, 4);
    let service = TopKService::start(
        FactorSnapshot::from_factors(x.clone(), theta.clone()),
        ServeConfig::default(),
    );
    let mut delta = service.snapshot().delta();
    delta.update_user(0, &[1.0; 4]);
    service.publish(FactorSnapshot::from_factors(x, theta)); // generation 2
    assert_eq!(
        service.publish_delta(&delta),
        Err(DeltaError::StaleBase {
            delta: 1,
            current: 2
        })
    );
}

/// Hot-swap under load with **interleaved full and delta publishes**: every
/// reply must match exactly one published state — never a mix — and after
/// the last publish only the final state may be served.
#[test]
fn interleaved_full_and_delta_publishes_never_mix_states() {
    const N_USERS: usize = 16;
    const N_ITEMS: usize = 400;
    const F: usize = 8;
    const K: usize = 3;

    // Build the state sequence offline: alternating full republications
    // (fresh beacon snapshot) and deltas that re-point every user at a new
    // beacon item.  All users share one factor row per state, so one
    // expected result covers every query in that state.
    fn beacon_snapshot(tag: usize) -> FactorSnapshot {
        let x = FactorMatrix::from_vec(N_USERS, F, vec![1.0; N_USERS * F]);
        let mut theta = FactorMatrix::zeros(N_ITEMS, F);
        for v in 0..N_ITEMS {
            theta.vector_mut(v).fill(1e-3 * (1.0 + (v % 7) as f32));
        }
        theta.vector_mut(tag).fill(100.0 + tag as f32);
        FactorSnapshot::from_factors(x, theta)
    }
    /// A delta that rescales every user's shared factor row by `2 + step`:
    /// the ranking keeps the current beacon, but every score changes, so
    /// the state is distinguishable from its base.
    fn all_users_delta(base_generation: u64, step: usize) -> SnapshotDelta {
        let mut delta = SnapshotDelta::new(base_generation, F);
        let row = vec![(2 + step) as f32; F];
        for u in 0..N_USERS as u32 {
            delta.update_user(u, &row);
        }
        delta
    }

    // States: 0 full(0), 1 delta, 2 full(2), 3 delta, 4 full(4), 5 delta.
    let mut states: Vec<FactorSnapshot> = Vec::new();
    states.push(beacon_snapshot(0));
    for step in 1..6 {
        if step % 2 == 0 {
            states.push(beacon_snapshot(step));
        } else {
            let base = states.last().unwrap();
            let delta = all_users_delta(base.generation(), step);
            let (next, _) = base.apply_delta(&delta).unwrap();
            states.push(next);
        }
    }
    let expected: Vec<Vec<(u32, f32)>> =
        states.iter().map(|s| s.recommend_one(0, K, &[])).collect();
    // Sanity: every state is distinguishable.
    for (i, a) in expected.iter().enumerate() {
        for b in expected.iter().skip(i + 1) {
            assert_ne!(a, b, "states must differ for the test to bite");
        }
    }

    let service = TopKService::start(
        states[0].clone(),
        ServeConfig {
            workers: 2,
            shards: 2,
            max_batch: 16,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );

    std::thread::scope(|s| {
        for t in 0..4usize {
            let client = service.client();
            let expected = &expected;
            s.spawn(move || {
                for i in 0..150u32 {
                    let user = (t as u32 * 5 + i) % N_USERS as u32;
                    let got = client.recommend(user, K, &[]).unwrap();
                    assert!(
                        expected.iter().any(|e| e == &got),
                        "reply matches no single published state (mixed?): {got:?}"
                    );
                }
            });
        }
        // Interleave full and delta publishes while the clients hammer.
        for step in 1..6 {
            std::thread::sleep(Duration::from_millis(3));
            if step % 2 == 0 {
                service.publish(beacon_snapshot(step));
            } else {
                let delta = all_users_delta(service.snapshot().generation(), step);
                service.publish_delta(&delta).unwrap();
            }
        }
    });

    // Only the final state may be served after the last publish.
    let client = service.client();
    for user in 0..N_USERS as u32 {
        let got = client.recommend(user, K, &[]).unwrap();
        assert_eq!(got, expected[5], "stale state served after final publish");
    }
    let m = service.metrics();
    assert_eq!(m.requests, m.responses);
    assert_eq!(m.snapshot_swaps, 5);
    assert_eq!(m.delta_publishes, 3, "deltas at steps 1, 3, 5");
    assert_eq!(m.worker_panics, 0);
}

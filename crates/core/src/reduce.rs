//! Cross-GPU parallel reduction schemes (§4.2 of the paper).
//!
//! After the data-parallel `get_hermitian` phase each GPU `i` holds partial
//! Hermitians `(A^(ij), B^(ij))` for the whole batch `X^(j)`.  They must be
//! summed before the batch solve.  The paper considers three ways to do it:
//!
//! 1. **Reduce on one GPU** — every GPU ships its whole buffer to GPU 0,
//!    which also ends up solving alone.  Baseline for the 1.7× claim.
//! 2. **One-phase parallel reduction** (Figure 5 (a)) — every GPU owns `1/p`
//!    of the rows and receives the matching slice from every peer, using all
//!    PCIe links in both directions simultaneously.
//! 3. **Two-phase topology-aware reduction** (Figure 5 (b)) — on a
//!    dual-socket machine the slices are first combined *within* each socket
//!    and only the combined result crosses the (slower) inter-socket link,
//!    halving the cross-socket traffic.  Additional 1.5× in the paper.

use cumf_gpu_sim::{Endpoint, PcieTopology, Transfer};

/// The reduction scheme used between `get_hermitian` and `batch_solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionScheme {
    /// Ship every partial buffer to GPU 0 and reduce there.
    SingleGpu,
    /// One-phase parallel reduction across all GPUs (Figure 5 (a)).
    OnePhase,
    /// Two-phase, topology-aware reduction (Figure 5 (b)); falls back to
    /// one-phase on single-socket machines.
    TwoPhase,
}

/// The transfers each phase of the reduction performs.  Phases are executed
/// one after another; transfers within a phase are concurrent.
pub fn reduction_transfers(
    scheme: ReductionScheme,
    topo: &PcieTopology,
    bytes_per_gpu: f64,
) -> Vec<Vec<Transfer>> {
    let p = topo.n_gpus();
    if p <= 1 || bytes_per_gpu <= 0.0 {
        return vec![];
    }
    match scheme {
        ReductionScheme::SingleGpu => {
            let phase = (1..p)
                .map(|k| Transfer::new(Endpoint::Gpu(k), Endpoint::Gpu(0), bytes_per_gpu))
                .collect();
            vec![phase]
        }
        ReductionScheme::OnePhase => {
            let slice = bytes_per_gpu / p as f64;
            let phase = (0..p)
                .flat_map(|owner| {
                    (0..p)
                        .filter(move |&k| k != owner)
                        .map(move |k| Transfer::new(Endpoint::Gpu(k), Endpoint::Gpu(owner), slice))
                })
                .collect();
            vec![phase]
        }
        ReductionScheme::TwoPhase => {
            if topo.n_sockets() == 1 {
                return reduction_transfers(ReductionScheme::OnePhase, topo, bytes_per_gpu);
            }
            let slice = bytes_per_gpu / p as f64;
            let mut phase1 = Vec::new();
            let mut phase2 = Vec::new();
            for owner in 0..p {
                let owner_socket = topo.socket_of(owner);
                for socket in 0..topo.n_sockets() {
                    let gpus = topo.gpus_on_socket(socket);
                    if gpus.is_empty() {
                        continue;
                    }
                    if socket == owner_socket {
                        // Peers on the owner's socket send their slice straight
                        // to the owner.
                        for &g in gpus.iter().filter(|&&g| g != owner) {
                            phase1.push(Transfer::new(
                                Endpoint::Gpu(g),
                                Endpoint::Gpu(owner),
                                slice,
                            ));
                        }
                    } else {
                        // On the remote socket, pick a combiner (same local
                        // index as the owner when possible) that accumulates
                        // the socket's slices and later forwards one combined
                        // slice across the socket link.
                        let owner_local = topo
                            .gpus_on_socket(owner_socket)
                            .iter()
                            .position(|&g| g == owner)
                            .unwrap_or(0);
                        let combiner = *gpus.get(owner_local).unwrap_or(&gpus[0]);
                        for &g in gpus.iter().filter(|&&g| g != combiner) {
                            phase1.push(Transfer::new(
                                Endpoint::Gpu(g),
                                Endpoint::Gpu(combiner),
                                slice,
                            ));
                        }
                        phase2.push(Transfer::new(
                            Endpoint::Gpu(combiner),
                            Endpoint::Gpu(owner),
                            slice,
                        ));
                    }
                }
            }
            vec![phase1, phase2]
        }
    }
}

/// Simulated completion time of the reduction.
pub fn reduction_time(scheme: ReductionScheme, topo: &PcieTopology, bytes_per_gpu: f64) -> f64 {
    reduction_transfers(scheme, topo, bytes_per_gpu)
        .iter()
        .map(|phase| topo.concurrent_transfer_time(phase))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn no_reduction_needed_on_one_gpu() {
        let topo = PcieTopology::flat(1);
        assert!(reduction_transfers(ReductionScheme::OnePhase, &topo, GB).is_empty());
        assert_eq!(reduction_time(ReductionScheme::OnePhase, &topo, GB), 0.0);
    }

    #[test]
    fn one_phase_moves_every_slice_once() {
        let topo = PcieTopology::flat(4);
        let phases = reduction_transfers(ReductionScheme::OnePhase, &topo, GB);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].len(), 4 * 3);
        let total: f64 = phases[0].iter().map(|t| t.bytes).sum();
        assert!((total - 3.0 * GB).abs() < 1.0);
    }

    #[test]
    fn one_phase_beats_single_gpu_reduction() {
        // The paper reports 1.7× for parallel reduction vs reduce-on-one-GPU
        // (Hugewiki, 4 GPUs).  The communication model alone should already
        // show a clear win because the single-GPU scheme serializes on one
        // inbound link.
        let topo = PcieTopology::flat(4);
        let single = reduction_time(ReductionScheme::SingleGpu, &topo, GB);
        let parallel = reduction_time(ReductionScheme::OnePhase, &topo, GB);
        let speedup = single / parallel;
        assert!(
            speedup > 1.5 && speedup < 6.0,
            "parallel reduction speedup out of range: {speedup}"
        );
    }

    #[test]
    fn two_phase_beats_one_phase_on_dual_socket() {
        // Figure 5 (b): the two-phase scheme halves inter-socket traffic.
        let topo = PcieTopology::dual_socket(4);
        let one = reduction_time(ReductionScheme::OnePhase, &topo, GB);
        let two = reduction_time(ReductionScheme::TwoPhase, &topo, GB);
        let speedup = one / two;
        assert!(
            speedup > 1.2 && speedup < 2.5,
            "two-phase speedup out of expected range: {speedup}"
        );
    }

    #[test]
    fn two_phase_on_flat_topology_degenerates_to_one_phase() {
        let topo = PcieTopology::flat(4);
        let one = reduction_time(ReductionScheme::OnePhase, &topo, GB);
        let two = reduction_time(ReductionScheme::TwoPhase, &topo, GB);
        assert!((one - two).abs() < 1e-12);
    }

    #[test]
    fn two_phase_crosses_the_socket_link_exactly_once_per_owner() {
        let topo = PcieTopology::dual_socket(4);
        let phases = reduction_transfers(ReductionScheme::TwoPhase, &topo, GB);
        assert_eq!(phases.len(), 2);
        // Phase 1 is strictly intra-socket.
        for t in &phases[0] {
            let (Endpoint::Gpu(a), Endpoint::Gpu(b)) = (t.src, t.dst) else {
                panic!()
            };
            assert!(
                topo.same_socket(a, b),
                "phase-1 transfer {a}->{b} crosses sockets"
            );
        }
        // Phase 2 is strictly inter-socket, one transfer per owner.
        assert_eq!(phases[1].len(), 4);
        for t in &phases[1] {
            let (Endpoint::Gpu(a), Endpoint::Gpu(b)) = (t.src, t.dst) else {
                panic!()
            };
            assert!(!topo.same_socket(a, b));
        }
    }

    #[test]
    fn reduction_conserves_bytes_per_owner() {
        // Every owner must receive p-1 slices in total regardless of scheme.
        let topo = PcieTopology::dual_socket(4);
        for scheme in [ReductionScheme::OnePhase, ReductionScheme::TwoPhase] {
            let phases = reduction_transfers(scheme, &topo, GB);
            let mut received = [0.0f64; 4];
            for t in phases.iter().flatten() {
                if let Endpoint::Gpu(dst) = t.dst {
                    received[dst] += t.bytes;
                }
            }
            // In the two-phase scheme a combiner receives extra bytes it then
            // forwards; owners still end up with at least their 3 slices of
            // net input overall, and total bytes moved is bounded by 2×.
            let total: f64 = received.iter().sum();
            assert!(
                total >= 3.0 * GB - 1.0,
                "scheme {scheme:?} moved too few bytes"
            );
            assert!(
                total <= 6.0 * GB + 1.0,
                "scheme {scheme:?} moved too many bytes"
            );
        }
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let topo = PcieTopology::dual_socket(4);
        assert_eq!(reduction_time(ReductionScheme::TwoPhase, &topo, 0.0), 0.0);
    }
}

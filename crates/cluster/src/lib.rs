//! Distributed-CPU cluster cost model for the cuMF paper's baselines.
//!
//! The paper compares cuMF against NOMAD (32-node AWS and 64-node HPC
//! clusters), Spark MLlib ALS (50 × m3.2xlarge), Factorbird (50 nodes
//! comparable to c3.2xlarge) and Facebook's Giraph solution (50 workers).
//! None of those systems can be run here, so this crate models them the way
//! the paper itself prices them: per-iteration time from an analytic
//! compute + communication model **calibrated against the numbers the
//! respective papers publish**, and monetary cost as
//! `price/node/hour × nodes × time` (Table 1's formula).
//!
//! * [`node`] — CPU node specifications and cloud prices.
//! * [`network`] — cluster-level communication primitives (broadcast,
//!   all-reduce, shuffle).
//! * [`models`] — per-iteration time models for the four baseline systems
//!   plus a multi-core single-machine model for libMF/NOMAD-1-node.
//! * [`pricing`] — run-cost computation and the speed/cost comparison rows
//!   of Table 1.

#![forbid(unsafe_code)]
pub mod models;
pub mod network;
pub mod node;
pub mod pricing;

pub use models::{BaselineSystem, IterationEstimate};
pub use network::ClusterNetwork;
pub use node::NodeSpec;
pub use pricing::{cost_of_run, CostComparison};

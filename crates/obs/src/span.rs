//! Stage-timing spans, per-request traces, and the sampled trace log.
//!
//! A [`Span`] is the cheapest possible timer: one `Instant`.  A [`Trace`]
//! is the per-request record a span's timings get stamped onto as the
//! request moves through a pipeline (enqueue → dequeue → score → reply):
//! a list of [`TraceEvent`]s with offsets relative to the trace's origin.
//!
//! Traces allocate, so the hot path must not build one per request: a
//! [`Sampler`] admits every `N`-th request (default 1/64 in the serving
//! tier) and everyone else pays a single relaxed `fetch_add`.  Completed
//! traces land in a fixed-capacity [`TraceLog`] ring buffer and can be
//! drained as JSONL for offline analysis — the same role the paper's
//! profiler traces played for the Hermitian-assembly bottleneck hunt.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

/// A started stage timer.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    started: Instant,
}

impl Span {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// The span's start instant (for trace offsets).
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// Nanoseconds since the span started (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        ns_between(self.started, Instant::now())
    }
}

/// Saturating nanoseconds from `start` to `end` (`0` if `end < start`).
pub fn ns_between(start: Instant, end: Instant) -> u64 {
    end.checked_duration_since(start)
        .map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64)
}

/// One timed stage inside a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stage name (static so recording never allocates for the label).
    pub stage: &'static str,
    /// Offset of the stage start from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// The record of one sampled request's journey through the pipeline.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Sequential trace id (sampler admission order).
    pub id: u64,
    origin: Instant,
    /// Timed stages, in recording order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Opens a trace whose origin is *now* (stamp it at request arrival).
    pub fn begin(id: u64) -> Self {
        Self {
            id,
            origin: Instant::now(),
            events: Vec::with_capacity(8),
        }
    }

    /// The trace origin.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Records a stage spanning `start..end` (instants from the same clock
    /// as the origin).
    pub fn event_between(&mut self, stage: &'static str, start: Instant, end: Instant) {
        self.events.push(TraceEvent {
            stage,
            start_ns: ns_between(self.origin, start),
            dur_ns: ns_between(start, end),
        });
    }

    /// End-to-end span covered by the recorded events (origin to the last
    /// event's end), in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.start_ns.saturating_add(e.dur_ns))
            .max()
            .unwrap_or(0)
    }

    /// One JSONL line: `{"trace":id,"total_ns":…,"stages":{name:{"start_ns":…,"dur_ns":…},…}}`.
    /// Stage names are static identifiers, so no escaping is needed.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 48);
        out.push_str(&format!(
            "{{\"trace\":{},\"total_ns\":{},\"stages\":{{",
            self.id,
            self.total_ns()
        ));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"start_ns\":{},\"dur_ns\":{}}}",
                e.stage, e.start_ns, e.dur_ns
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Deterministic 1-in-`every` admission: request `0, every, 2·every, …` are
/// sampled.  `every = 0` disables sampling entirely, `every = 1` samples
/// everything.  One relaxed `fetch_add` per decision.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    counter: AtomicU64,
}

impl Sampler {
    /// A sampler admitting one in `every` calls.
    pub fn new(every: u64) -> Self {
        Self {
            every,
            counter: AtomicU64::new(0),
        }
    }

    /// The configured rate (`0` = off).
    pub fn rate(&self) -> u64 {
        self.every
    }

    /// Whether this call is sampled.
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed) // relaxed-ok: sequence numbers only need uniqueness, not order
            .is_multiple_of(self.every)
    }
}

/// A fixed-capacity ring buffer of completed traces: pushing past capacity
/// drops the oldest, so the log holds the most recent window at a bounded
/// memory cost and the hot path never blocks on a reader for long.
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    ring: Mutex<VecDeque<Trace>>,
}

impl TraceLog {
    /// A log retaining at most `capacity` traces (`0` keeps none).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Appends a completed trace, evicting the oldest at capacity.
    pub fn push(&self, trace: Trace) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the retained traces as JSONL (one trace per line).
    pub fn to_jsonl(&self) -> String {
        let traces = self.snapshot();
        let mut out = String::new();
        for t in &traces {
            out.push_str(&t.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_offsets_are_relative_to_origin() {
        let mut t = Trace::begin(7);
        let origin = t.origin();
        let a = origin + Duration::from_micros(10);
        let b = origin + Duration::from_micros(25);
        t.event_between("queue_wait", origin, a);
        t.event_between("score", a, b);
        assert_eq!(t.events[0].start_ns, 0);
        assert_eq!(t.events[0].dur_ns, 10_000);
        assert_eq!(t.events[1].start_ns, 10_000);
        assert_eq!(t.events[1].dur_ns, 15_000);
        assert_eq!(t.total_ns(), 25_000);
        let line = t.to_json_line();
        assert!(line.starts_with("{\"trace\":7,"));
        assert!(line.contains("\"queue_wait\":{\"start_ns\":0,\"dur_ns\":10000}"));
        assert!(line.contains("\"score\""));
    }

    #[test]
    fn sampler_admits_one_in_n() {
        let s = Sampler::new(4);
        let admitted = (0..100).filter(|_| s.sample()).count();
        assert_eq!(admitted, 25);
        let off = Sampler::new(0);
        assert!((0..10).all(|_| !off.sample()));
        let all = Sampler::new(1);
        assert!((0..10).all(|_| all.sample()));
    }

    #[test]
    fn trace_log_is_a_ring() {
        let log = TraceLog::new(3);
        for id in 0..5 {
            log.push(Trace::begin(id));
        }
        let kept: Vec<u64> = log.snapshot().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(log.to_jsonl().lines().count(), 3);
        let none = TraceLog::new(0);
        none.push(Trace::begin(0));
        assert!(none.is_empty());
    }

    #[test]
    fn reversed_instants_saturate_to_zero() {
        let later = Instant::now() + Duration::from_millis(1);
        assert_eq!(ns_between(later, Instant::now()), 0);
    }
}

//! End-to-end integration tests spanning every crate of the workspace:
//! data generation → splitting → ALS engines (reference / MO-ALS / SU-ALS)
//! → trainer API → cost models and baselines.

use cumf_core::config::{AlsConfig, MemoryOptConfig};
use cumf_core::trainer::{Backend, MatrixFactorizer};
use cumf_data::datasets::PaperDataset;
use cumf_data::synth::SyntheticConfig;
use cumf_data::train_test_split;

fn netflix_like() -> (cumf_sparse::Csr, Vec<cumf_sparse::Entry>, f64) {
    let spec = PaperDataset::Netflix.spec().scaled(0.003);
    let data = SyntheticConfig {
        rank: 8,
        noise_std: 0.25,
        ..SyntheticConfig::from_spec(&spec, 71)
    }
    .generate();
    let noise_floor = data.noise_floor_rmse();
    let split = train_test_split(&data.ratings, 0.1, 71);
    (split.train, split.test, noise_floor)
}

#[test]
fn full_pipeline_reaches_near_noise_floor_rmse() {
    let (train, test, noise_floor) = netflix_like();
    let config = AlsConfig {
        f: 24,
        lambda: 0.05,
        iterations: 8,
        ..Default::default()
    };
    let mut model = MatrixFactorizer::new(config, Backend::single_gpu());
    let report = model.fit(&train, &test);

    // ALS on data with genuine low-rank structure should approach the noise
    // floor of the generating model.
    let final_rmse = report.final_test_rmse();
    assert!(
        final_rmse < noise_floor + 0.35,
        "final test RMSE {final_rmse} too far above the noise floor {noise_floor}"
    );
    // RMSE improves monotonically up to small fluctuations.
    let first = report.iterations.first().unwrap().test_rmse;
    assert!(
        final_rmse < first,
        "no improvement over training: {first} -> {final_rmse}"
    );
    // Simulated time is positive and strictly increasing.
    assert!(report.total_sim_time() > 0.0);
}

#[test]
fn all_backends_agree_on_the_result() {
    let (train, test, _) = netflix_like();
    let config = AlsConfig {
        f: 16,
        lambda: 0.05,
        iterations: 4,
        ..Default::default()
    };

    let mut reference = MatrixFactorizer::new(config.clone(), Backend::Reference);
    let mut single = MatrixFactorizer::new(config.clone(), Backend::single_gpu());
    let mut multi = MatrixFactorizer::new(config, Backend::multi_gpu(4));

    let r_ref = reference.fit(&train, &test);
    let r_single = single.fit(&train, &test);
    let r_multi = multi.fit(&train, &test);

    // Identical seeds and numerics: RMSE trajectories agree closely across
    // backends (they differ only in floating-point summation order).
    for i in 0..4 {
        let a = r_ref.iterations[i].test_rmse;
        let b = r_single.iterations[i].test_rmse;
        let c = r_multi.iterations[i].test_rmse;
        assert!(
            (a - b).abs() < 5e-3,
            "iter {i}: reference {a} vs single-GPU {b}"
        );
        assert!(
            (a - c).abs() < 5e-2,
            "iter {i}: reference {a} vs multi-GPU {c}"
        );
    }
    // Only the simulated backends report simulated time.
    assert_eq!(r_ref.total_sim_time(), 0.0);
    assert!(r_single.total_sim_time() > 0.0);
    assert!(r_multi.total_sim_time() > 0.0);
}

#[test]
fn memory_optimizations_change_time_but_not_quality() {
    let (train, test, _) = netflix_like();
    let base = AlsConfig {
        f: 16,
        lambda: 0.05,
        iterations: 3,
        ..Default::default()
    };

    let optimized = AlsConfig {
        memory_opt: MemoryOptConfig::optimized(),
        ..base.clone()
    };
    let naive = AlsConfig {
        memory_opt: MemoryOptConfig::naive(),
        ..base
    };

    let mut m_opt = MatrixFactorizer::new(optimized, Backend::single_gpu());
    let mut m_naive = MatrixFactorizer::new(naive, Backend::single_gpu());
    let r_opt = m_opt.fit(&train, &test);
    let r_naive = m_naive.fit(&train, &test);

    assert!(
        (r_opt.final_test_rmse() - r_naive.final_test_rmse()).abs() < 1e-6,
        "memory optimizations must not change numerics"
    );
    assert!(
        r_naive.total_sim_time() > r_opt.total_sim_time(),
        "the un-optimized engine must be slower in simulated time"
    );
}

#[test]
fn cumf_beats_cpu_baselines_in_progress_per_iteration() {
    use cumf_baselines::libmf::LibMfConfig;
    use cumf_baselines::{Engine, LibMfSgd};

    let (train, test, _) = netflix_like();
    let config = AlsConfig {
        f: 16,
        lambda: 0.05,
        iterations: 2,
        ..Default::default()
    };
    let mut als = MatrixFactorizer::new(config, Backend::single_gpu());
    let als_report = als.fit(&train, &test);

    let mut libmf = LibMfSgd::new(
        LibMfConfig {
            f: 16,
            threads: 4,
            ..Default::default()
        },
        &train,
    );
    for _ in 0..2 {
        libmf.train_sweep();
    }
    let libmf_rmse = libmf.rmse(&test);
    assert!(
        als_report.final_test_rmse() < libmf_rmse,
        "2 ALS iterations ({}) should beat 2 SGD epochs ({})",
        als_report.final_test_rmse(),
        libmf_rmse
    );
}

#[test]
fn recommendations_prefer_highly_rated_held_out_items() {
    let (train, test, _) = netflix_like();
    let config = AlsConfig {
        f: 24,
        lambda: 0.05,
        iterations: 6,
        ..Default::default()
    };
    let mut model = MatrixFactorizer::new(config, Backend::Reference);
    model.fit(&train, &test);

    // Averaged over many held-out ratings, predictions for ratings >= 4
    // should exceed predictions for ratings <= 2.
    let mut high = (0.0f64, 0usize);
    let mut low = (0.0f64, 0usize);
    for e in &test {
        let p = model.predict(e.row, e.col) as f64;
        if e.val >= 4.0 {
            high = (high.0 + p, high.1 + 1);
        } else if e.val <= 2.0 {
            low = (low.0 + p, low.1 + 1);
        }
    }
    if high.1 > 10 && low.1 > 10 {
        let high_mean = high.0 / high.1 as f64;
        let low_mean = low.0 / low.1 as f64;
        assert!(
            high_mean > low_mean,
            "predictions should separate liked ({high_mean}) from disliked ({low_mean})"
        );
    }
}

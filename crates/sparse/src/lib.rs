//! Sparse matrix substrate for `cumf-rs`.
//!
//! The cuMF paper factors a sparse rating matrix `R` (m × n, `Nz` non-zeros)
//! stored in Compressed Sparse Row (CSR) form on the GPU.  This crate
//! provides the host-side sparse formats and the partitioning operations that
//! Algorithm 3 of the paper (SU-ALS) relies on:
//!
//! * [`Coo`] — coordinate triplets, the natural construction format.
//! * [`Csr`] — compressed sparse row, the format `get_hermitian_x` walks.
//! * [`Csc`] — compressed sparse column, used when updating Θ (the transpose
//!   direction) without materializing `Rᵀ`.
//! * [`partition`] — horizontal / vertical / grid partitioning of `R`
//!   matching lines 2–4 of Algorithm 3.
//! * [`stats`] — degree statistics used by the cost model and the data
//!   generators.
//!
//! Indices are `u32` (the scaled-down reproduction data sets comfortably fit)
//! while row/column pointer arrays are `usize` so that `Nz` may exceed
//! `u32::MAX` if a user generates a very large matrix.

#![forbid(unsafe_code)]
pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod partition;
pub mod stats;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use error::SparseError;
pub use partition::{
    grid_partition, horizontal_partition, split_ranges, vertical_partition, GridPartition,
    SparseBlock,
};

/// A single rating entry: row `u`, column `v`, value `r_uv`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Row index (user `u` in the paper's notation).
    pub row: u32,
    /// Column index (item `v` in the paper's notation).
    pub col: u32,
    /// Rating value `r_uv`.
    pub val: f32,
}

impl Entry {
    /// Convenience constructor.
    pub fn new(row: u32, col: u32, val: f32) -> Self {
        Self { row, col, val }
    }
}

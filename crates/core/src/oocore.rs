//! Out-of-core execution (§4.4 of the paper).
//!
//! When `R` (and even the factor matrices) exceed device — or host — memory,
//! cuMF streams partitions in batches, using separate CPU threads to preload
//! from disk to host memory and separate CUDA streams to preload from host
//! to device memory.  "By this proactive and asynchronous data loading, we
//! manage to handle out-of-core problems with close-to-zero data loading
//! time except for the first load."
//!
//! This module provides both:
//!
//! * an analytic pipeline model ([`pipeline_time`]) used by the cost model,
//!   and
//! * a real double-buffered prefetcher ([`Prefetcher`]) that overlaps host
//!   "loading" (materializing partition data) with consumption on worker
//!   threads, demonstrating the overlap with actual threads.

use crossbeam::channel::{bounded, Receiver};
use std::thread::JoinHandle;

/// One batch of out-of-core work: how long its data takes to transfer and
/// how long its compute takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCost {
    /// Seconds to move the batch's data to the device.
    pub transfer_s: f64,
    /// Seconds of kernel time once the data is resident.
    pub compute_s: f64,
}

/// Total time of a sequence of batches.
///
/// Without prefetch, transfers and compute serialize.  With prefetch
/// (double buffering), batch `i + 1`'s transfer overlaps batch `i`'s
/// compute: only the first transfer is fully exposed, matching the paper's
/// "close-to-zero data loading time except for the first load".
pub fn pipeline_time(batches: &[BatchCost], prefetch: bool) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    if !prefetch {
        return batches.iter().map(|b| b.transfer_s + b.compute_s).sum();
    }
    let mut total = batches[0].transfer_s;
    for i in 0..batches.len() {
        let next_transfer = batches.get(i + 1).map(|b| b.transfer_s).unwrap_or(0.0);
        total += batches[i].compute_s.max(next_transfer);
    }
    total
}

/// Fraction of total transfer time hidden behind compute by the prefetching
/// pipeline (0.0 = nothing hidden, 1.0 = everything but the first load).
pub fn hidden_transfer_fraction(batches: &[BatchCost]) -> f64 {
    let total_transfer: f64 = batches.iter().map(|b| b.transfer_s).sum();
    if total_transfer == 0.0 {
        return 1.0;
    }
    let serial = pipeline_time(batches, false);
    let pipelined = pipeline_time(batches, true);
    ((serial - pipelined) / total_transfer).clamp(0.0, 1.0)
}

/// A real double-buffered prefetcher: a background thread produces batches
/// in order while the caller consumes them, with a bounded channel providing
/// the "double buffer" (capacity = number of batches in flight).
pub struct Prefetcher<T: Send + 'static> {
    receiver: Receiver<T>,
    producer: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Prefetcher<T> {
    /// Starts prefetching: `load(i)` is called for `i in 0..n_batches` on a
    /// background thread, at most `in_flight` batches ahead of the consumer.
    pub fn start<F>(n_batches: usize, in_flight: usize, load: F) -> Self
    where
        F: Fn(usize) -> T + Send + 'static,
    {
        let (tx, rx) = bounded(in_flight.max(1));
        let producer = std::thread::spawn(move || {
            for i in 0..n_batches {
                let item = load(i);
                if tx.send(item).is_err() {
                    break; // consumer dropped early
                }
            }
        });
        Self {
            receiver: rx,
            producer: Some(producer),
        }
    }

    /// Blocks until the next batch is available; `None` once all batches
    /// have been consumed.
    pub fn next_batch(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T: Send + 'static> Drop for Prefetcher<T> {
    fn drop(&mut self) {
        // Disconnect first so the producer unblocks, then join it.
        let (_tx, rx) = bounded::<T>(1);
        self.receiver = rx;
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Iterator for Prefetcher<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.next_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn serial_time_is_the_sum() {
        let batches = vec![
            BatchCost {
                transfer_s: 1.0,
                compute_s: 2.0,
            },
            BatchCost {
                transfer_s: 1.0,
                compute_s: 2.0,
            },
        ];
        assert_eq!(pipeline_time(&batches, false), 6.0);
    }

    #[test]
    fn prefetch_hides_all_but_the_first_transfer_when_compute_dominates() {
        let batches = vec![
            BatchCost {
                transfer_s: 0.5,
                compute_s: 2.0
            };
            4
        ];
        // 0.5 (first load) + 4 × 2.0 = 8.5
        assert_eq!(pipeline_time(&batches, true), 8.5);
        assert!((hidden_transfer_fraction(&batches) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn prefetch_cannot_hide_transfers_longer_than_compute() {
        let batches = vec![
            BatchCost {
                transfer_s: 3.0,
                compute_s: 1.0
            };
            3
        ];
        // 3 + max(1,3) + max(1,3) + 1 = 10
        assert_eq!(pipeline_time(&batches, true), 10.0);
        assert!(pipeline_time(&batches, true) < pipeline_time(&batches, false));
    }

    #[test]
    fn empty_and_single_batch_edge_cases() {
        assert_eq!(pipeline_time(&[], true), 0.0);
        let one = [BatchCost {
            transfer_s: 1.0,
            compute_s: 2.0,
        }];
        assert_eq!(pipeline_time(&one, true), 3.0);
        assert_eq!(pipeline_time(&one, false), 3.0);
        assert_eq!(hidden_transfer_fraction(&[]), 1.0);
    }

    #[test]
    fn prefetcher_delivers_all_batches_in_order() {
        let mut p = Prefetcher::start(8, 2, |i| i * 10);
        let got: Vec<usize> = (&mut p).collect();
        assert_eq!(got, (0..8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn prefetcher_overlaps_loading_with_consumption() {
        // Each load takes ~15 ms and each "compute" takes ~15 ms; with
        // overlap the total should be well below the 8 × 30 ms serial time.
        let load_ms = 15u64;
        let start = Instant::now();
        let mut p = Prefetcher::start(8, 2, move |i| {
            std::thread::sleep(Duration::from_millis(load_ms));
            i
        });
        let mut consumed = 0;
        while p.next_batch().is_some() {
            std::thread::sleep(Duration::from_millis(load_ms));
            consumed += 1;
        }
        let elapsed = start.elapsed();
        assert_eq!(consumed, 8);
        assert!(
            elapsed < Duration::from_millis(8 * 2 * load_ms - 40),
            "no overlap observed: {elapsed:?}"
        );
    }

    #[test]
    fn dropping_prefetcher_early_does_not_hang() {
        let mut p = Prefetcher::start(100, 2, |i| {
            std::thread::sleep(Duration::from_millis(1));
            i
        });
        assert_eq!(p.next_batch(), Some(0));
        drop(p); // must unblock the producer and join cleanly
    }
}

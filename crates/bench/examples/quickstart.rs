//! Quickstart: factorize a small synthetic rating matrix on one simulated
//! GPU and print the convergence history.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use cumf_core::config::AlsConfig;
use cumf_core::trainer::{Backend, MatrixFactorizer};
use cumf_data::synth::SyntheticConfig;
use cumf_data::train_test_split;

fn main() {
    // 1. Generate a synthetic data set with genuine low-rank structure:
    //    2 000 users, 800 items, ~120 000 ratings in [1, 5].
    let data = SyntheticConfig {
        m: 2_000,
        n: 800,
        nnz: 120_000,
        rank: 8,
        noise_std: 0.15,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let split = train_test_split(&data.ratings, 0.1, 7);
    println!(
        "data set: {} users x {} items, {} train / {} test ratings",
        2_000,
        800,
        split.train.nnz(),
        split.test.len()
    );
    println!(
        "noise-floor RMSE of the generating model: {:.4}\n",
        data.noise_floor_rmse()
    );

    // 2. Configure ALS the way the paper does (weighted-λ regularization),
    //    with a modest rank for a quick run.
    let config = AlsConfig {
        f: 16,
        lambda: 0.05,
        iterations: 8,
        ..Default::default()
    };

    // 3. Train on the memory-optimized single-GPU engine (MO-ALS).
    let mut model = MatrixFactorizer::new(config, Backend::single_gpu());
    let report = model.fit(&split.train, &split.test);

    println!("iter |  train RMSE |  test RMSE | sim GPU time (cumulative)");
    println!("-----+-------------+------------+--------------------------");
    for rec in &report.iterations {
        println!(
            "{:4} |     {:.4}  |    {:.4}  | {:>10.4} s",
            rec.iteration, rec.train_rmse, rec.test_rmse, rec.cumulative_sim_time_s
        );
    }

    // 4. Use the model: predict a rating and recommend items for user 0.
    let (seen, _) = split.train.row(0);
    let recs = model.recommend(0, 5, seen);
    println!("\ntop-5 recommendations for user 0 (item, predicted rating):");
    for (item, score) in recs {
        println!("  item {item:4}  ->  {score:.3}");
    }
    println!(
        "\nfinal test RMSE {:.4} vs noise floor {:.4}",
        report.final_test_rmse(),
        data.noise_floor_rmse()
    );
}

//! Trainer-side observability: wait-free latency histograms for the ALS
//! hot path.
//!
//! The paper's performance story lives in two phases of the per-row update
//! (equation (2)): assembling the Hermitian `A = Σ θ_v θ_vᵀ` (the
//! `get_hermitian` kernel) and solving the regularized system (the
//! `batch_solve` kernel).  [`TrainMetrics`] times both **per row** inside
//! [`crate::als::kernels::solve_side_instrumented`], plus whole
//! `solve_side` calls and incremental fold-in batches
//! ([`crate::foldin::fold_in_users_instrumented`]) — giving the host-side
//! analogue of the kernel split the simulator prices.
//!
//! Recording is wait-free ([`cumf_obs::Histogram`] relaxed atomics), so the
//! rayon row loop stays embarrassingly parallel; the uninstrumented entry
//! points ([`crate::als::kernels::solve_side`]) pass `None` and pay no
//! timing overhead at all.

use cumf_obs::{Exporter, Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Latency histograms of the training hot path; shared by every engine a
/// [`crate::trainer::MatrixFactorizer`] builds.
///
/// All recording methods take `&self` and are wait-free, so one instance
/// can be shared across the rayon workers of a `solve_side` call.
#[derive(Debug, Default)]
pub struct TrainMetrics {
    /// Per-row Hermitian assembly (the `syr_full`/`axpy` loop over the
    /// row's ratings — `get_hermitian` in the paper).
    assembly: Histogram,
    /// Per-row ridge + Cholesky solve (`batch_solve` in the paper).
    solve: Histogram,
    /// Whole `solve_side` calls (one half-iteration each).
    solve_side: Histogram,
    /// Incremental fold-in batches (the serving-facing training path).
    fold_in: Histogram,
    /// Non-empty rows solved across all instrumented calls.
    rows_solved: AtomicU64,
}

impl TrainMetrics {
    /// A fresh, all-zero metrics sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one solved row: its Hermitian-assembly and solve phases.
    pub fn record_row(&self, assembly_ns: u64, solve_ns: u64) {
        self.assembly.record_ns(assembly_ns);
        self.solve.record_ns(solve_ns);
        self.rows_solved.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic progress counter
    }

    /// Records one whole `solve_side` call.
    pub fn record_solve_side(&self, elapsed: Duration) {
        self.solve_side.record(elapsed);
    }

    /// Records one fold-in batch.
    pub fn record_fold_in(&self, elapsed: Duration) {
        self.fold_in.record(elapsed);
    }

    /// Non-empty rows solved so far.
    pub fn rows_solved(&self) -> u64 {
        self.rows_solved.load(Ordering::Relaxed) // relaxed-ok: monotonic progress counter read
    }

    /// A point-in-time snapshot of every histogram and counter.
    pub fn report(&self) -> TrainMetricsReport {
        TrainMetricsReport {
            rows_solved: self.rows_solved(),
            assembly: self.assembly.snapshot(),
            solve: self.solve.snapshot(),
            solve_side: self.solve_side.snapshot(),
            fold_in: self.fold_in.snapshot(),
        }
    }
}

/// Immutable snapshot of [`TrainMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainMetricsReport {
    /// Non-empty rows solved.
    pub rows_solved: u64,
    /// Per-row Hermitian assembly latency.
    pub assembly: HistogramSnapshot,
    /// Per-row solve latency.
    pub solve: HistogramSnapshot,
    /// Whole `solve_side` call latency.
    pub solve_side: HistogramSnapshot,
    /// Fold-in batch latency.
    pub fold_in: HistogramSnapshot,
}

impl TrainMetricsReport {
    /// The machine-readable view: `train_*` metrics for the
    /// Prometheus/JSON exporter.
    pub fn exporter(&self) -> Exporter {
        let mut e = Exporter::new();
        e.counter(
            "train_rows_solved",
            "non-empty rows solved across instrumented calls",
            self.rows_solved,
        )
        .histogram(
            "train_assembly",
            "per-row Hermitian assembly latency",
            self.assembly.clone(),
        )
        .histogram(
            "train_solve",
            "per-row ridge + Cholesky solve latency",
            self.solve.clone(),
        )
        .histogram(
            "train_solve_side",
            "whole solve_side call latency",
            self.solve_side.clone(),
        )
        .histogram(
            "train_fold_in",
            "incremental fold-in batch latency",
            self.fold_in.clone(),
        );
        e
    }
}

fn fmt_ns(ns: u64) -> String {
    format!("{:?}", Duration::from_nanos(ns))
}

impl std::fmt::Display for TrainMetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "rows solved: {}", self.rows_solved)?;
        writeln!(
            f,
            "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "phase", "p50", "p90", "p99", "max", "count"
        )?;
        for (name, h) in [
            ("assembly", &self.assembly),
            ("solve", &self.solve),
            ("solve_side", &self.solve_side),
            ("fold_in", &self.fold_in),
        ] {
            writeln!(
                f,
                "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>9}",
                name,
                fmt_ns(h.quantile(0.5)),
                fmt_ns(h.quantile(0.9)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.max_ns()),
                h.count()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reflects_recorded_rows_and_calls() {
        let m = TrainMetrics::new();
        for i in 1..=100u64 {
            m.record_row(i * 10, i * 5);
        }
        m.record_solve_side(Duration::from_micros(300));
        m.record_fold_in(Duration::from_micros(40));

        let r = m.report();
        assert_eq!(r.rows_solved, 100);
        assert_eq!(r.assembly.count(), 100);
        assert_eq!(r.solve.count(), 100);
        assert_eq!(r.solve_side.count(), 1);
        assert_eq!(r.fold_in.count(), 1);
        assert_eq!(r.assembly.max_ns(), 1000);
        assert_eq!(r.solve.max_ns(), 500);
        // Assembly was recorded at exactly twice the solve duration per
        // row, so the exact sums keep that ratio.
        assert_eq!(r.assembly.sum_ns(), 2 * r.solve.sum_ns());
    }

    #[test]
    fn exporter_emits_the_train_keys() {
        let m = TrainMetrics::new();
        m.record_row(1_000, 2_000);
        m.record_solve_side(Duration::from_micros(10));
        let json = m.report().exporter().to_json();
        for key in [
            "\"train_rows_solved\":1",
            "\"train_assembly_count\":1",
            "\"train_assembly_p50_ns\":",
            "\"train_solve_p99_ns\":",
            "\"train_solve_side_max_ns\":",
            "\"train_fold_in_count\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn display_prints_the_percentile_table() {
        let m = TrainMetrics::new();
        m.record_row(500, 700);
        let text = m.report().to_string();
        assert!(text.contains("rows solved: 1"));
        for row in ["assembly", "solve", "solve_side", "fold_in"] {
            assert!(text.contains(row), "missing {row} row in:\n{text}");
        }
        assert!(text.contains("p99"));
    }

    #[test]
    fn concurrent_row_records_count_exactly() {
        let m = TrainMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1_000u64 {
                        m.record_row(i, i);
                    }
                });
            }
        });
        assert_eq!(m.rows_solved(), 4_000);
        assert_eq!(m.report().assembly.count(), 4_000);
    }
}

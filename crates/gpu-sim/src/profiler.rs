//! A lightweight timeline profiler for simulated events.
//!
//! The ALS engines record every simulated kernel, transfer and reduction here
//! so the benchmark harness can answer "where did the iteration's time go",
//! mirroring what `nvprof` provides on real hardware.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Category of a simulated event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// A compute kernel (e.g. `get_hermitian`, `batch_solve`).
    Kernel,
    /// A host↔device or device↔device transfer.
    Transfer,
    /// A cross-GPU reduction step.
    Reduction,
    /// Host-side work (partitioning, planning, checkpointing).
    Host,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEvent {
    /// Device index the event ran on (`usize::MAX` for host-side events).
    pub device: usize,
    /// Human-readable name, e.g. `"get_hermitian_x"`.
    pub name: String,
    /// Category.
    pub kind: EventKind,
    /// Simulated start time in seconds.
    pub start: f64,
    /// Simulated duration in seconds.
    pub duration: f64,
}

/// Thread-safe collector of simulated events.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    events: Arc<Mutex<Vec<ProfileEvent>>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event.
    pub fn record(&self, device: usize, name: &str, kind: EventKind, start: f64, duration: f64) {
        self.events.lock().unwrap().push(ProfileEvent {
            device,
            name: name.to_string(),
            kind,
            start,
            duration,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in recording order.
    pub fn events(&self) -> Vec<ProfileEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Clears all recorded events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }

    /// Total simulated time per event kind.
    pub fn time_by_kind(&self) -> BTreeMap<EventKind, f64> {
        let mut map = BTreeMap::new();
        for e in self.events.lock().unwrap().iter() {
            *map.entry(e.kind).or_insert(0.0) += e.duration;
        }
        map
    }

    /// Total simulated time per event name.
    pub fn time_by_name(&self) -> BTreeMap<String, f64> {
        let mut map = BTreeMap::new();
        for e in self.events.lock().unwrap().iter() {
            *map.entry(e.name.clone()).or_insert(0.0) += e.duration;
        }
        map
    }

    /// Latest event end time (the makespan of the recorded timeline).
    pub fn makespan(&self) -> f64 {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|e| e.start + e.duration)
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarize() {
        let p = Profiler::new();
        assert!(p.is_empty());
        p.record(0, "get_hermitian_x", EventKind::Kernel, 0.0, 2.0);
        p.record(0, "batch_solve", EventKind::Kernel, 2.0, 1.0);
        p.record(1, "reduce", EventKind::Reduction, 3.0, 0.5);
        assert_eq!(p.len(), 3);
        let by_kind = p.time_by_kind();
        assert_eq!(by_kind[&EventKind::Kernel], 3.0);
        assert_eq!(by_kind[&EventKind::Reduction], 0.5);
        let by_name = p.time_by_name();
        assert_eq!(by_name["get_hermitian_x"], 2.0);
        assert_eq!(p.makespan(), 3.5);
    }

    #[test]
    fn clones_share_the_same_buffer() {
        let p = Profiler::new();
        let p2 = p.clone();
        p2.record(0, "k", EventKind::Kernel, 0.0, 1.0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let p = Profiler::new();
        p.record(0, "k", EventKind::Kernel, 0.0, 1.0);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.makespan(), 0.0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        p.record(t, "k", EventKind::Kernel, i as f64, 0.1);
                    }
                });
            }
        });
        assert_eq!(p.len(), 400);
    }
}

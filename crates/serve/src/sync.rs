//! Synchronization facade for `cumf-serve` — one re-export of
//! [`cumf_obs::sync`] so both facade-covered crates switch on the same
//! `cumf_model_check` cfg from a single definition.  See that module for
//! the full contract.

// lint-ok-file: sync-facade this module IS the facade re-export.

pub use cumf_obs::sync::*;

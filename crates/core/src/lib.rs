//! # cumf-core — cuMF's ALS matrix factorization in Rust
//!
//! This crate is the Rust reproduction of the paper's contribution: a
//! scalable Alternating Least Squares (ALS) solver for sparse matrix
//! factorization `R ≈ X·Θᵀ` designed around GPU architectural
//! characteristics.  The physical GPU is replaced by the performance model in
//! [`cumf_gpu_sim`]; the numerics are exact and run on host threads.
//!
//! The layers match the paper's structure:
//!
//! * [`als::base`] — Algorithm 1, the baseline ALS update (`get_hermitian` +
//!   `batch_solve`) used as the numerical reference.
//! * [`als::mo`] — Algorithm 2 **MO-ALS**: the memory-optimized single-GPU
//!   engine.  Toggles for texture caching, register accumulation and the
//!   shared-memory `bin` size change the simulated traffic and therefore the
//!   simulated time, reproducing §3.3–3.4 and Figures 7–8.
//! * [`als::su`] — Algorithm 3 **SU-ALS**: the multi-GPU engine that adds
//!   data parallelism (grid-partitioned `R`, vertically partitioned `Θᵀ`)
//!   and cross-GPU reduction, reproducing §4 and Figures 9–11.
//! * [`reduce`] — the one-phase and two-phase (topology-aware) parallel
//!   reduction schemes of §4.2.
//! * [`planner`] — the memory-capacity partition planner of §4.3 (equation 8).
//! * [`oocore`] — the out-of-core batch scheduler with asynchronous prefetch
//!   of §4.4.
//! * [`checkpoint`] — fault-tolerance checkpointing of §4.4, including
//!   delta records that journal incremental fold-ins between full
//!   checkpoints.
//! * [`engine`] — the unified [`Engine`] / [`IncrementalEngine`] trait pair
//!   every factorization engine (the ALS variants, [`sgd::SgdEngine`], the
//!   baseline solvers) implements; the trainer and the online serving loop
//!   dispatch through it.
//! * [`foldin`] — incremental user fold-in: solving new-or-updated users
//!   against frozen item factors (the training half of `cumf-serve`'s
//!   delta-publication path), including the segmented variant that folds
//!   straight against the serving tier's item store.
//! * [`costmodel`] — the analytic compute/footprint model of Table 3, used
//!   to price iterations at full paper scale (Figure 11, Table 1).
//! * [`instrument`] — trainer-side observability: wait-free
//!   [`cumf_obs`] latency histograms splitting each solved row into its
//!   Hermitian-assembly and solve phases (the host analogue of
//!   `get_hermitian` / `batch_solve`), plus whole-call and fold-in-batch
//!   timings, with a `train_*` Prometheus/JSON exporter.
//! * [`trainer`] — the high-level [`trainer::MatrixFactorizer`] API
//!   (fit / predict / recommend) that examples and benches drive.
//!
//! ## Quick start
//!
//! ```
//! use cumf_core::config::AlsConfig;
//! use cumf_core::trainer::{Backend, MatrixFactorizer};
//! use cumf_data::synth::SyntheticConfig;
//! use cumf_data::train_test_split;
//!
//! // A small synthetic data set with a genuine low-rank structure.
//! let data = SyntheticConfig { m: 400, n: 200, nnz: 12_000, ..Default::default() }.generate();
//! let split = train_test_split(&data.ratings, 0.1, 7);
//!
//! let config = AlsConfig { f: 16, lambda: 0.05, iterations: 5, ..Default::default() };
//! let mut model = MatrixFactorizer::new(config, Backend::single_gpu());
//! let report = model.fit(&split.train, &split.test);
//! assert!(report.final_test_rmse() < 1.0);
//! ```

#![forbid(unsafe_code)]
pub mod als;
pub mod checkpoint;
pub mod config;
pub mod costmodel;
pub mod engine;
pub mod foldin;
pub mod instrument;
pub mod loss;
pub mod metrics;
pub mod oocore;
pub mod planner;
pub mod reduce;
pub mod sgd;
pub mod trainer;

pub use config::{AlsConfig, MemoryOptConfig};
pub use engine::{Engine, IncrementalEngine};
pub use instrument::{TrainMetrics, TrainMetricsReport};
pub use trainer::{Backend, MatrixFactorizer, TrainReport};

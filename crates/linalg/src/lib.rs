//! Small dense linear algebra for `cumf-rs`.
//!
//! The ALS inner loop solves, for every user `u`, a small regularized
//! Hermitian (symmetric positive definite) system
//!
//! ```text
//!   A_u · x_u = B_u,      A_u = Σ_{r_uv ≠ 0} (θ_v θ_vᵀ + λ n_{x_u} I),   B_u = Θᵀ R_{u*}ᵀ
//! ```
//!
//! with `f` in the tens-to-hundreds.  The paper offloads the batched solve to
//! cuBLAS (`batch_solve`); here we provide the equivalent building blocks:
//!
//! * [`dense::DenseMatrix`] and [`dense::FactorMatrix`] — row-major dense
//!   storage for `X`, `Θ` and the per-row Hermitians.
//! * [`blas`] — the rank-1 update (`syrk`), `gemv`, `dot`, `axpy` kernels the
//!   `get_hermitian` phase is made of.
//! * [`cholesky`] — an in-place Cholesky / forward-backward solver for the
//!   SPD `f × f` systems.
//! * [`batch`] — a rayon-parallel batched solver standing in for the
//!   cuBLAS batched routines, plus the blocked retrieval-time scoring
//!   kernel ([`batch::batch_score_block`]).
//! * [`topk`] — bounded-heap top-k selection and the blocked single-request
//!   retrieval path shared by `recommend()` and the serving subsystem.

#![forbid(unsafe_code)]
pub mod batch;
pub mod blas;
pub mod cholesky;
pub mod dense;
pub mod quant;
pub mod topk;

pub use batch::{batch_score_block, batch_score_segment, batch_solve, score_dot, SegmentView};
pub use cholesky::{cholesky_factor, cholesky_solve, CholeskyError};
pub use dense::{DenseMatrix, FactorMatrix};
pub use quant::{
    batch_score_rows_quant, f16_bits_to_f32, f32_to_f16_bits, EncodedSlab, Precision, F16_REL_ERR,
    F16_SUBNORMAL_ABS,
};
pub use topk::{
    block_max_norms, item_norms, merge_top_k, retrieve_top_k, retrieve_top_k_pruned,
    retrieve_top_k_segments, retrieve_top_k_segments_approx, suffix_max_norms, ApproxPolicy,
    PruneStats, TopK, DEFAULT_APPROX_EPSILON,
};

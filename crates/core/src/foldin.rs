//! Incremental user fold-in: solving new-or-updated users against frozen
//! item factors.
//!
//! The ALS update of equation (2) solves every user's factors from an
//! *independent* per-user Hermitian system — nothing couples user `u`'s
//! solve to any other user once `Θ` is fixed.  That independence is what
//! makes incremental serving cheap: a new user (or a user with fresh
//! ratings) can be **folded in** by solving just their normal equations
//! against the already-trained `Θ`, without touching the other `m − 1` users
//! and without retraining.  The result feeds a serving-side delta
//! publication (`cumf-serve`'s `SnapshotDelta`), which is the paper-scale
//! point: at production sizes, moving whole factor matrices dominates cost,
//! so an update that touches `u` users should move `O(u·f)` bytes.
//!
//! The solve itself is [`crate::als::kernels::solve_side`] — the same fused
//! per-row kernel every training engine uses, parallel over users via
//! rayon — so a folded-in user gets *exactly* the factors one more
//! update-`X` half-iteration would have given them.

use crate::als::kernels::solve_side_instrumented;
use crate::instrument::TrainMetrics;
use cumf_linalg::batch::SegmentView;
use cumf_linalg::blas::{add_diagonal, axpy, syr_full};
use cumf_linalg::cholesky::cholesky_solve;
use cumf_linalg::FactorMatrix;
use cumf_obs::ns_between;
use cumf_sparse::{Coo, Csr};
use rayon::prelude::*;
use std::time::Instant;

/// Solves the ALS normal equations for a batch of users against frozen item
/// factors.
///
/// * `ratings` — one row per folded-in user over the **full catalog** column
///   space (`n_cols == theta.len()`); build it with [`ratings_rows`] from
///   per-user rating lists.
/// * `theta` — the frozen item factors.
/// * `lambda` — the same weighted-λ regularization used in training: each
///   row's ridge is `λ · n_u`.
///
/// Returns one factor row per input row (row `i` of the result belongs to
/// row `i` of `ratings`).  Users with no ratings get a zero vector, exactly
/// like an empty row in training.
///
/// # Panics
/// Panics if `ratings.n_cols() != theta.len()`.
pub fn fold_in_users(ratings: &Csr, theta: &FactorMatrix, lambda: f32) -> FactorMatrix {
    fold_in_users_instrumented(ratings, theta, lambda, None)
}

/// [`fold_in_users`] with optional batch-latency recording: the whole
/// batch's wall time lands in the [`TrainMetrics`] `fold_in` histogram and
/// each non-empty row records its assembly/solve phases, exactly like an
/// instrumented training half-iteration.
pub fn fold_in_users_instrumented(
    ratings: &Csr,
    theta: &FactorMatrix,
    lambda: f32,
    metrics: Option<&TrainMetrics>,
) -> FactorMatrix {
    assert_eq!(
        ratings.n_cols() as usize,
        theta.len(),
        "fold-in ratings must span the item catalog"
    );
    let started = metrics.map(|_| Instant::now());
    let out = solve_side_instrumented(ratings, theta, lambda, metrics);
    if let (Some(m), Some(t0)) = (metrics, started) {
        m.record_fold_in(t0.elapsed());
    }
    out
}

/// [`fold_in_users`] against a **segmented** item catalog: assembles each
/// user's Hermitian by resolving rating item ids through the segment views
/// (`Arc`-shared slabs in whatever stored order the serving layout chose),
/// so the incremental path never materializes a contiguous catalog-order
/// `Θ` — killing the `O(n·f)` `item_factors_matrix()` copy per batch.
///
/// * `segments` — views tiling the catalog `[0, ratings.n_cols())` in
///   ascending `first_id` order, e.g. the serving tier's
///   `ItemStore::views()`.  Permuted segments must carry their `pos`
///   inverse remap.
/// * `f` — the latent rank (views carry slabs, not ranks).
///
/// Per row, ratings are visited in the same CSR order as the contiguous
/// path, so results are **bit-identical** to
/// `fold_in_users(ratings, &store.to_matrix(), lambda)`.
///
/// # Panics
/// Panics if the segments do not tile the catalog or a slab disagrees with
/// `f`.
pub fn fold_in_users_segmented(
    ratings: &Csr,
    segments: &[SegmentView<'_>],
    f: usize,
    lambda: f32,
) -> FactorMatrix {
    fold_in_users_segmented_instrumented(ratings, segments, f, lambda, None)
}

/// [`fold_in_users_segmented`] with the same optional batch/phase recording
/// as [`fold_in_users_instrumented`].
pub fn fold_in_users_segmented_instrumented(
    ratings: &Csr,
    segments: &[SegmentView<'_>],
    f: usize,
    lambda: f32,
    metrics: Option<&TrainMetrics>,
) -> FactorMatrix {
    assert!(f > 0, "latent dimension must be positive");
    let mut covered = 0usize;
    for seg in segments {
        assert_eq!(
            seg.first_id as usize, covered,
            "fold-in segments must tile the catalog contiguously"
        );
        assert_eq!(seg.items.len(), seg.n_items() * f, "segment slab rank");
        covered += seg.n_items();
    }
    assert_eq!(
        covered,
        ratings.n_cols() as usize,
        "fold-in ratings must span the item catalog"
    );

    let started = metrics.map(|_| Instant::now());
    let m = ratings.n_rows() as usize;
    let mut out = FactorMatrix::zeros(m, f);
    out.data_mut()
        .par_chunks_mut(f)
        .enumerate()
        .for_each(|(u, x_u)| {
            let (cols, vals) = ratings.row(u as u32);
            if cols.is_empty() {
                return;
            }
            let row_start = metrics.map(|_| Instant::now());
            let mut a = vec![0.0f32; f * f];
            let mut b = vec![0.0f32; f];
            for (&v, &val) in cols.iter().zip(vals.iter()) {
                // Rating item ids arrive in catalog order per row; each
                // resolves to (segment, stored row) with two u32 lookups —
                // no catalog-order slab exists anywhere.
                let i = segments
                    .partition_point(|s| s.first_id <= v)
                    .saturating_sub(1);
                let theta_v = segments[i].vector_of(v, f);
                syr_full(&mut a, theta_v);
                axpy(val, theta_v, &mut b);
            }
            let assembled = metrics.map(|_| Instant::now());
            add_diagonal(&mut a, f, lambda * cols.len() as f32);
            if cholesky_solve(&mut a, f, &mut b).is_ok() {
                x_u.copy_from_slice(&b);
            }
            // Singular systems keep the zero initialization, exactly like
            // the contiguous kernel.
            if let (Some(m), Some(t0), Some(t1)) = (metrics, row_start, assembled) {
                m.record_row(ns_between(t0, t1), ns_between(t1, Instant::now()));
            }
        });
    if let (Some(m), Some(t0)) = (metrics, started) {
        m.record_solve_side(t0.elapsed());
        m.record_fold_in(t0.elapsed());
    }
    out
}

/// Builds the fold-in ratings matrix from per-user `(item, rating)` lists:
/// row `i` holds `rows[i]` over an `n_items`-column space.
///
/// # Panics
/// Panics if any item id is out of range.
pub fn ratings_rows(rows: &[Vec<(u32, f32)>], n_items: u32) -> Csr {
    let mut coo = Coo::with_capacity(rows.len() as u32, n_items, rows.iter().map(Vec::len).sum());
    for (u, row) in rows.iter().enumerate() {
        for &(item, rating) in row {
            coo.push(u as u32, item, rating)
                .expect("fold-in item id out of range");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::BaseAls;
    use crate::config::AlsConfig;
    use cumf_data::synth::SyntheticConfig;

    fn trained() -> (Csr, BaseAls) {
        let data = SyntheticConfig {
            m: 150,
            n: 80,
            nnz: 4000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate();
        let r = data.to_csr();
        let mut engine = BaseAls::new(
            AlsConfig {
                f: 8,
                lambda: 0.05,
                iterations: 4,
                ..Default::default()
            },
            r.clone(),
        );
        for _ in 0..4 {
            engine.iterate();
        }
        (r, engine)
    }

    #[test]
    fn folding_in_training_rows_matches_one_more_half_iteration() {
        // fold_in_users solves the same system as update_x: feeding the
        // training matrix back in must reproduce solve_side's X exactly.
        let (r, mut engine) = trained();
        let folded = fold_in_users(&r, engine.theta(), engine.config().lambda);
        engine.update_x();
        assert_eq!(folded.max_abs_diff(engine.x()), 0.0);
    }

    #[test]
    fn folded_in_user_predicts_their_ratings() {
        // A brand-new user whose ratings follow an existing user's row gets
        // factors that reconstruct those ratings about as well as training
        // did for the original user.
        let (r, engine) = trained();
        let (items, vals) = r.row(3);
        let rows = vec![items.iter().copied().zip(vals.iter().copied()).collect()];
        let batch = ratings_rows(&rows, r.n_cols());
        let folded = fold_in_users(&batch, engine.theta(), engine.config().lambda);
        assert_eq!(folded.len(), 1);
        let mse: f64 = items
            .iter()
            .zip(vals.iter())
            .map(|(&v, &rating)| {
                let p = cumf_linalg::blas::dot(folded.vector(0), engine.theta().vector(v as usize));
                ((p - rating) as f64).powi(2)
            })
            .sum::<f64>()
            / items.len() as f64;
        assert!(mse.sqrt() < 0.5, "fold-in RMSE too high: {}", mse.sqrt());
    }

    #[test]
    fn empty_rating_rows_fold_to_zero_vectors() {
        let (r, engine) = trained();
        let rows = vec![Vec::new(), vec![(0u32, 4.0f32)]];
        let batch = ratings_rows(&rows, r.n_cols());
        let folded = fold_in_users(&batch, engine.theta(), 0.05);
        assert!(folded.vector(0).iter().all(|&v| v == 0.0));
        assert!(folded.vector(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "must span the item catalog")]
    fn catalog_width_mismatch_panics() {
        let (_, engine) = trained();
        let batch = ratings_rows(&[vec![(0, 1.0)]], 10);
        fold_in_users(&batch, engine.theta(), 0.05);
    }

    /// Splits `theta` at the given cuts into segments, permuting each
    /// segment's stored order norm-descending with `ids`/`pos` remaps —
    /// the same shape the serving `ItemStore` produces.
    struct SegmentedTheta {
        slabs: Vec<Vec<f32>>,
        norms: Vec<Vec<f32>>,
        tables: Vec<Vec<f32>>,
        ids: Vec<Vec<u32>>,
        pos: Vec<Vec<u32>>,
        firsts: Vec<u32>,
    }

    impl SegmentedTheta {
        fn build(theta: &FactorMatrix, cuts: &[usize]) -> Self {
            let f = theta.rank();
            let all_norms = cumf_linalg::item_norms(theta.data(), f);
            let mut out = Self {
                slabs: Vec::new(),
                norms: Vec::new(),
                tables: Vec::new(),
                ids: Vec::new(),
                pos: Vec::new(),
                firsts: Vec::new(),
            };
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let mut order: Vec<usize> = (lo..hi).collect();
                order.sort_by(|&a, &b| all_norms[b].total_cmp(&all_norms[a]).then(a.cmp(&b)));
                let mut slab = Vec::with_capacity((hi - lo) * f);
                let mut norms = Vec::with_capacity(hi - lo);
                let mut pos = vec![0u32; hi - lo];
                for (row, &g) in order.iter().enumerate() {
                    slab.extend_from_slice(theta.vector(g));
                    norms.push(all_norms[g]);
                    pos[g - lo] = row as u32;
                }
                out.tables.push(cumf_linalg::block_max_norms(&norms, 16));
                out.slabs.push(slab);
                out.norms.push(norms);
                out.ids.push(order.iter().map(|&g| g as u32).collect());
                out.pos.push(pos);
                out.firsts.push(lo as u32);
            }
            out
        }

        fn views(&self) -> Vec<SegmentView<'_>> {
            (0..self.slabs.len())
                .map(|i| SegmentView {
                    items: &self.slabs[i],
                    norms: &self.norms[i],
                    block_max: &self.tables[i],
                    item_block: 16,
                    first_id: self.firsts[i],
                    ids: Some(&self.ids[i]),
                    pos: Some(&self.pos[i]),
                    encoded: None,
                })
                .collect()
        }
    }

    #[test]
    fn segmented_fold_in_is_bit_identical_to_the_contiguous_path() {
        let (r, engine) = trained();
        let n = r.n_cols() as usize;
        let f = engine.theta().rank();
        // Fold the whole training matrix plus an empty row, across several
        // segmentations including single-segment and ragged cuts.
        let mut rows: Vec<Vec<(u32, f32)>> = (0..r.n_rows())
            .map(|u| {
                let (items, vals) = r.row(u);
                items.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        rows.push(Vec::new());
        let batch = ratings_rows(&rows, r.n_cols());
        let expect = fold_in_users(&batch, engine.theta(), 0.05);
        for cuts in [vec![0usize, n], vec![0, 17, n], vec![0, 1, 2, 40, n]] {
            let seg = SegmentedTheta::build(engine.theta(), &cuts);
            let views = seg.views();
            let got = fold_in_users_segmented(&batch, &views, f, 0.05);
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "cuts {cuts:?} must be bit-identical"
            );
        }
    }

    #[test]
    fn segmented_fold_in_records_metrics_like_the_contiguous_path() {
        let (r, engine) = trained();
        let seg = SegmentedTheta::build(engine.theta(), &[0, r.n_cols() as usize]);
        let views = seg.views();
        let batch = ratings_rows(&[vec![(0, 4.0), (3, 2.0)]], r.n_cols());
        let metrics = TrainMetrics::new();
        fold_in_users_segmented_instrumented(
            &batch,
            &views,
            engine.theta().rank(),
            0.05,
            Some(&metrics),
        );
        let report = metrics.report();
        assert_eq!(report.fold_in.count(), 1);
        assert_eq!(report.solve_side.count(), 1);
        assert_eq!(report.rows_solved, 1);
    }

    #[test]
    #[should_panic(expected = "tile the catalog contiguously")]
    fn segmented_fold_in_rejects_gapped_segments() {
        let (r, engine) = trained();
        let seg = SegmentedTheta::build(engine.theta(), &[0, 10, r.n_cols() as usize]);
        let mut views = seg.views();
        views.remove(0);
        let batch = ratings_rows(&[vec![(0, 1.0)]], r.n_cols());
        fold_in_users_segmented(&batch, &views, engine.theta().rank(), 0.05);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        ratings_rows(&[vec![(99, 1.0)]], 10);
    }
}

//! The scale-out invariants of the sharded worker pool: every shard count ×
//! worker count combination must reply **bit-identically** to the
//! single-worker, single-shard PR 2 baseline; shutdown must drain what was
//! queued and reject what comes later; and the byte-budgeted cache must
//! bound memory under heavy-exclusion traffic without changing replies.

use cumf_linalg::FactorMatrix;
use cumf_serve::{
    FactorSnapshot, Query, ScoreKind, ServeConfig, ServeError, TopKIndex, TopKService,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn snapshot(seed: u64, n_users: usize, n_items: usize, f: usize) -> FactorSnapshot {
    FactorSnapshot::from_factors(
        FactorMatrix::random(n_users, f, 1.0, seed),
        FactorMatrix::random(n_items, f, 1.0, seed + 1),
    )
}

fn test_queries(n_users: usize) -> Vec<Query> {
    let mut queries: Vec<Query> = (0..n_users as u32)
        .map(|u| Query {
            user: u,
            k: 7,
            exclude: vec![u % 13, u % 7, u % 29],
        })
        .collect();
    queries.push(Query::new(u32::MAX, 7)); // out-of-range user
    queries.push(Query {
        user: 0,
        k: 0,
        exclude: vec![],
    });
    queries
}

/// Replies gathered by pushing every query through a service sequentially.
fn serve_all(service: &TopKService, queries: &[Query]) -> Vec<Vec<(u32, f32)>> {
    let client = service.client();
    queries
        .iter()
        .map(|q| client.recommend(q.user, q.k, &q.exclude).unwrap())
        .collect()
}

#[test]
fn shard_and_worker_counts_are_reply_invariant() {
    let snap = snapshot(42, 48, 999, 8);
    let queries = test_queries(48);

    // PR 2 baseline: one worker, one shard.
    let baseline = {
        let service = TopKService::start(
            snap.clone(),
            ServeConfig {
                workers: 1,
                shards: 1,
                cache_capacity: 0, // force the scorer on every request
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        serve_all(&service, &queries)
    };
    for reply in &baseline[..48] {
        assert_eq!(reply.len(), 7);
    }

    for shards in [1usize, 2, 7] {
        for workers in [1usize, 4] {
            let service = TopKService::start(
                snap.clone(),
                ServeConfig {
                    workers,
                    shards,
                    cache_capacity: 0,
                    max_delay: Duration::from_millis(1),
                    ..Default::default()
                },
            );
            let got = serve_all(&service, &queries);
            assert_eq!(
                got, baseline,
                "replies drifted at shards={shards} workers={workers}"
            );
            assert_eq!(service.metrics().worker_panics, 0);
        }
    }
}

#[test]
fn concurrent_pool_traffic_stays_bit_identical() {
    // Same invariance, but with the requests racing through 4 workers from
    // 6 client threads — replies must still match the sequential baseline
    // per query.
    let snap = snapshot(77, 30, 500, 8);
    let reference = Arc::new(snap.clone());
    let service = TopKService::start(
        snap,
        ServeConfig {
            workers: 4,
            shards: 4,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for t in 0..6u32 {
            let client = service.client();
            let reference = Arc::clone(&reference);
            s.spawn(move || {
                for i in 0..40 {
                    let user = (t * 40 + i) % 30;
                    let got = client.recommend(user, 5, &[user % 3]).unwrap();
                    assert_eq!(got, reference.recommend_one(user, 5, &[user % 3]));
                }
            });
        }
    });
    let m = service.metrics();
    assert_eq!(m.requests, 240);
    assert_eq!(m.responses, 240);
    assert_eq!(m.worker_panics, 0);
}

#[test]
fn shutdown_drains_queued_requests_and_rejects_later_ones() {
    let service = TopKService::start(
        snapshot(5, 20, 300, 8),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let clients: Vec<_> = (0..6).map(|_| service.client()).collect();

    // Clients hammer the service while the main thread drops it.  Every
    // reply is either a correct full result (request made it in before the
    // shutdown markers) or a clean Shutdown error — never a hang, never a
    // mixed/truncated result, and strictly no Ok after the first error.
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(t, client)| {
            std::thread::spawn(move || {
                let mut oks = 0usize;
                let mut errored = false;
                for i in 0..200u32 {
                    match client.recommend((t as u32 + i) % 20, 5, &[]) {
                        Ok(r) => {
                            assert!(!errored, "Ok reply after a Shutdown error");
                            assert_eq!(r.len(), 5);
                            oks += 1;
                        }
                        Err(ServeError::Shutdown) => errored = true,
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
                oks
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(10));
    drop(service);
    let served: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0, "shutdown raced ahead of every request");
}

#[test]
fn byte_budget_bounds_cache_without_changing_replies() {
    // Heavy exclusion lists: each entry charges ~4 KiB of key cost, so a
    // 16 KiB budget keeps only a handful of the 30 users cached.  Replies
    // must be unaffected — eviction only ever costs rescoring.
    let snap = snapshot(11, 30, 400, 8);
    let heavy_exclude: Vec<u32> = (0..1000).collect();
    let config = ServeConfig {
        workers: 2,
        cache_capacity: 4096,
        cache_budget_bytes: 16 << 10,
        max_delay: Duration::from_millis(1),
        ..Default::default()
    };
    let service = TopKService::start(snap.clone(), config);
    let client = service.client();
    let reference = Arc::new(snap);
    for round in 0..3 {
        for user in 0..30u32 {
            let got = client.recommend(user, 5, &heavy_exclude).unwrap();
            assert_eq!(
                got,
                reference.recommend_one(user, 5, &heavy_exclude),
                "round {round} user {user}"
            );
        }
    }
    let m = service.metrics();
    assert_eq!(m.responses, 90);
    // The budget fits ~4 heavy entries per cache shard (2 shards): far
    // fewer than the 30 the entry capacity alone would keep, so most
    // repeat requests miss and rescore.
    assert!(
        m.cache_misses > 30,
        "expected budget-driven rescoring, got {} misses",
        m.cache_misses
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Index-level property: for random snapshots, random blockings and
    /// random shard counts, the sharded scorer is bit-identical to the
    /// unsharded one (both score kinds).
    #[test]
    fn sharded_index_matches_unsharded(
        seed in 0u64..1_000,
        n_items in 1usize..400,
        item_block in 1usize..96,
        shards in 1usize..10,
        k in 1usize..12,
        cosine in 0u8..2,
    ) {
        let score = if cosine == 1 { ScoreKind::Cosine } else { ScoreKind::Dot };
        let snap = Arc::new(snapshot(seed, 12, n_items, 6));
        let queries: Vec<Query> = (0..12u32)
            .map(|u| Query { user: u, k, exclude: vec![u % 5, u % 3] })
            .collect();
        let baseline =
            TopKIndex::with_shards(Arc::clone(&snap), item_block, score, 1)
                .query_batch(&queries);
        let sharded =
            TopKIndex::with_shards(Arc::clone(&snap), item_block, score, shards)
                .query_batch(&queries);
        prop_assert_eq!(baseline, sharded);
    }
}

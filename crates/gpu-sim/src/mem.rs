//! Device-memory allocator with capacity tracking.
//!
//! The partition planner of SU-ALS (equation (8) of the paper) exists
//! precisely because a 12 GB device cannot hold `m` Hermitian matrices plus
//! `X`, `Θᵀ` and `R`.  This allocator makes that constraint a real, testable
//! error: attempting to place more bytes than the device holds fails with
//! [`OutOfMemory`].

use std::collections::HashMap;
use std::fmt;

/// Identifier of a live device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(u64);

/// Error returned when an allocation exceeds the remaining device capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes still available on the device.
    pub available: u64,
    /// Label of the failing allocation (for diagnostics).
    pub label: String,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: '{}' requested {} bytes but only {} available",
            self.label, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A capacity-tracking allocator for one simulated device.
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    capacity: u64,
    used: u64,
    next_id: u64,
    live: HashMap<AllocId, (u64, String)>,
    peak: u64,
}

impl DeviceAllocator {
    /// Creates an allocator for a device with `capacity` bytes of global
    /// memory.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            next_id: 0,
            live: HashMap::new(),
            peak: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of allocated bytes over the allocator's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Allocates `bytes` bytes under a diagnostic `label`.
    pub fn alloc(&mut self, label: &str, bytes: u64) -> Result<AllocId, OutOfMemory> {
        if bytes > self.available() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.available(),
                label: label.to_string(),
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.live.insert(id, (bytes, label.to_string()));
        Ok(id)
    }

    /// Allocates room for `count` single-precision floats.
    pub fn alloc_f32(&mut self, label: &str, count: u64) -> Result<AllocId, OutOfMemory> {
        self.alloc(label, count * crate::F32_BYTES)
    }

    /// Frees a previous allocation; freeing an unknown id is a no-op and
    /// returns `false`.
    pub fn free(&mut self, id: AllocId) -> bool {
        if let Some((bytes, _)) = self.live.remove(&id) {
            self.used -= bytes;
            true
        } else {
            false
        }
    }

    /// Frees every live allocation (e.g. between SU-ALS batches).
    pub fn free_all(&mut self) {
        self.live.clear();
        self.used = 0;
    }

    /// Returns the size and label of a live allocation.
    pub fn lookup(&self, id: AllocId) -> Option<(u64, &str)> {
        self.live.get(&id).map(|(b, l)| (*b, l.as_str()))
    }

    /// A human-readable report of live allocations sorted by size
    /// (largest first).
    pub fn report(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.live.values().map(|(b, l)| (l.clone(), *b)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_tracks_usage() {
        let mut a = DeviceAllocator::new(1000);
        let id1 = a.alloc("theta", 400).unwrap();
        let id2 = a.alloc("x", 500).unwrap();
        assert_eq!(a.used(), 900);
        assert_eq!(a.available(), 100);
        assert_eq!(a.live_allocations(), 2);
        assert!(a.free(id1));
        assert_eq!(a.used(), 500);
        assert!(!a.free(id1), "double free is a no-op");
        assert!(a.free(id2));
        assert_eq!(a.used(), 0);
        assert_eq!(a.peak(), 900);
    }

    #[test]
    fn oom_is_reported_with_context() {
        let mut a = DeviceAllocator::new(100);
        a.alloc("small", 80).unwrap();
        let err = a.alloc("big", 50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 20);
        assert!(err.to_string().contains("big"));
    }

    #[test]
    fn alloc_f32_counts_four_bytes_each() {
        let mut a = DeviceAllocator::new(100);
        a.alloc_f32("vec", 10).unwrap();
        assert_eq!(a.used(), 40);
    }

    #[test]
    fn exact_fit_succeeds_and_next_fails() {
        let mut a = DeviceAllocator::new(64);
        a.alloc("fit", 64).unwrap();
        assert!(a.alloc("one more byte", 1).is_err());
    }

    #[test]
    fn free_all_resets_but_keeps_peak() {
        let mut a = DeviceAllocator::new(1 << 20);
        a.alloc("x", 1000).unwrap();
        a.alloc("y", 2000).unwrap();
        a.free_all();
        assert_eq!(a.used(), 0);
        assert_eq!(a.live_allocations(), 0);
        assert_eq!(a.peak(), 3000);
    }

    #[test]
    fn report_sorted_by_size() {
        let mut a = DeviceAllocator::new(1 << 20);
        a.alloc("small", 10).unwrap();
        a.alloc("large", 1000).unwrap();
        let r = a.report();
        assert_eq!(r[0].0, "large");
        assert_eq!(r[1].0, "small");
    }

    #[test]
    fn titan_x_cannot_hold_netflix_hermitians() {
        // §2.2: m=480K, f=100 ⇒ m·f² = 4.8e9 floats > 3e9-float capacity.
        let spec = crate::DeviceSpec::titan_x();
        let mut a = DeviceAllocator::new(spec.global_mem_bytes);
        let m = 480_000u64;
        let f = 100u64;
        assert!(a.alloc_f32("all hermitians", m * f * f).is_err());
    }
}

//! Numerical kernels shared by every ALS engine.
//!
//! Every engine in this crate — the reference CPU ALS, MO-ALS and SU-ALS —
//! computes exactly the same update (equation (2) of the paper):
//!
//! ```text
//!   (Σ_{r_uv≠0} θ_v θ_vᵀ  +  λ·n_{x_u}·I) · x_u  =  Σ_{r_uv≠0} r_uv·θ_v
//! ```
//!
//! What differs between engines is *where the bytes move on the simulated
//! GPU*, which is handled by the traffic models in [`crate::als::mo`] and
//! [`crate::als::su`].  Keeping the numerics in one place guarantees the
//! engines agree bit-for-bit up to floating-point summation order, which the
//! integration tests check.

use crate::instrument::TrainMetrics;
use cumf_linalg::batch::batch_solve;
use cumf_linalg::blas::{add_diagonal, syr_axpy};
use cumf_linalg::cholesky::cholesky_solve;
use cumf_linalg::FactorMatrix;
use cumf_obs::ns_between;
use cumf_sparse::Csr;
use rayon::prelude::*;
use std::time::Instant;

/// Solves one side of the ALS update with the fused per-row kernel: for each
/// row `u` of `r`, builds the regularized Hermitian and right-hand side and
/// solves it immediately.
///
/// * `r` — ratings with the *solved* entities as rows (pass `R` to update
///   `X`, `Rᵀ` to update `Θ`).
/// * `fixed` — the factor matrix of the other side, indexed by `r`'s columns.
/// * `lambda` — weighted-λ regularization; each row's ridge is
///   `λ · n_{x_u}`.
///
/// Rows with no ratings get a zero vector (their system is singular under
/// weighted regularization, matching the behaviour of the original cuMF).
pub fn solve_side(r: &Csr, fixed: &FactorMatrix, lambda: f32) -> FactorMatrix {
    solve_side_instrumented(r, fixed, lambda, None)
}

/// [`solve_side`] with optional per-row phase timing.
///
/// When `metrics` is present, each non-empty row records its
/// Hermitian-assembly and solve phase separately (plus the whole call into
/// the `solve_side` histogram); with `None` the timing branches compile to
/// nothing on the hot path.  Results are identical either way.
pub fn solve_side_instrumented(
    r: &Csr,
    fixed: &FactorMatrix,
    lambda: f32,
    metrics: Option<&TrainMetrics>,
) -> FactorMatrix {
    let call_start = metrics.map(|_| Instant::now());
    let f = fixed.rank();
    let m = r.n_rows() as usize;
    let mut out = FactorMatrix::zeros(m, f);

    out.data_mut()
        .par_chunks_mut(f)
        .enumerate()
        .for_each(|(u, x_u)| {
            let (cols, vals) = r.row(u as u32);
            if cols.is_empty() {
                return;
            }
            let row_start = metrics.map(|_| Instant::now());
            let mut a = vec![0.0f32; f * f];
            let mut b = vec![0.0f32; f];
            for (&v, &val) in cols.iter().zip(vals.iter()) {
                // Fused four-lane assembly step; bit-identical to the
                // scalar syr_full + axpy pair (see `syr_axpy`'s contract).
                syr_axpy(&mut a, &mut b, fixed.vector(v as usize), val);
            }
            let assembled = metrics.map(|_| Instant::now());
            add_diagonal(&mut a, f, lambda * cols.len() as f32);
            if cholesky_solve(&mut a, f, &mut b).is_ok() {
                x_u.copy_from_slice(&b);
            }
            // On (numerically) singular systems the row keeps its zero
            // initialization rather than propagating NaNs.
            if let (Some(m), Some(t0), Some(t1)) = (metrics, row_start, assembled) {
                m.record_row(ns_between(t0, t1), ns_between(t1, Instant::now()));
            }
        });
    if let (Some(m), Some(t0)) = (metrics, call_start) {
        m.record_solve_side(t0.elapsed());
    }
    out
}

/// Per-row partial Hermitians and right-hand sides over a *block* of `R`
/// (the data-parallel half of SU-ALS, equation (5)/(6)/(7) of the paper).
///
/// `block` is a block of `R` with block-local column indices; `fixed_part`
/// holds the factor vectors of exactly those local columns.  No
/// regularization is added here — that happens after the cross-GPU reduction
/// in [`finalize_and_solve`], because `n_{x_u}` is a property of the whole
/// row, not of one block.
///
/// Returns `(hermitians, rhs)` with `hermitians.len() == rows · f²` and
/// `rhs.len() == rows · f`.
pub fn partial_hermitians(
    block: &Csr,
    fixed_part: &FactorMatrix,
    f: usize,
) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(fixed_part.rank(), f, "fixed factor rank mismatch");
    let rows = block.n_rows() as usize;
    let mut hermitians = vec![0.0f32; rows * f * f];
    let mut rhs = vec![0.0f32; rows * f];

    hermitians
        .par_chunks_mut(f * f)
        .zip(rhs.par_chunks_mut(f))
        .enumerate()
        .for_each(|(u, (a, b))| {
            let (cols, vals) = block.row(u as u32);
            for (&v, &val) in cols.iter().zip(vals.iter()) {
                syr_axpy(a, b, fixed_part.vector(v as usize), val);
            }
        });
    (hermitians, rhs)
}

/// Element-wise accumulation of partial Hermitians/right-hand sides coming
/// from different column partitions (the reduction of Algorithm 3,
/// lines 15–16).
pub fn accumulate_partials(acc_a: &mut [f32], acc_b: &mut [f32], part_a: &[f32], part_b: &[f32]) {
    assert_eq!(
        acc_a.len(),
        part_a.len(),
        "hermitian partial length mismatch"
    );
    assert_eq!(acc_b.len(), part_b.len(), "rhs partial length mismatch");
    acc_a
        .par_iter_mut()
        .zip(part_a.par_iter())
        .for_each(|(acc, p)| *acc += p);
    acc_b
        .par_iter_mut()
        .zip(part_b.par_iter())
        .for_each(|(acc, p)| *acc += p);
}

/// Adds the weighted-λ ridge to every reduced Hermitian and solves the batch
/// (Algorithm 3 line 17).
///
/// `row_degrees[u]` must be the row's total number of ratings across *all*
/// column partitions.
pub fn finalize_and_solve(
    hermitians: &mut [f32],
    rhs: &mut [f32],
    row_degrees: &[usize],
    lambda: f32,
    f: usize,
) -> FactorMatrix {
    let rows = row_degrees.len();
    assert_eq!(
        hermitians.len(),
        rows * f * f,
        "hermitian buffer size mismatch"
    );
    assert_eq!(rhs.len(), rows * f, "rhs buffer size mismatch");

    hermitians
        .par_chunks_mut(f * f)
        .enumerate()
        .for_each(|(u, a)| {
            let ridge = lambda * row_degrees[u] as f32;
            if row_degrees[u] > 0 {
                add_diagonal(a, f, ridge);
            }
        });

    batch_solve(hermitians, rhs, f);

    // Rows with no ratings stay at zero: their "solution" from the failed
    // factorization is whatever was in rhs (all zeros, since no partial
    // contributed), which is already the desired value.
    let mut out = FactorMatrix::zeros(rows, f);
    out.data_mut().copy_from_slice(rhs);
    // Explicitly zero empty rows in case numerical noise crept in.
    for (u, &d) in row_degrees.iter().enumerate() {
        if d == 0 {
            out.vector_mut(u).fill(0.0);
        }
    }
    out
}

/// Convenience wrapper: one full fused update of a side through the
/// partial-Hermitian path with a single (trivial) partition — used by tests
/// to check that the blocked path agrees with [`solve_side`].
pub fn solve_side_via_partials(r: &Csr, fixed: &FactorMatrix, lambda: f32) -> FactorMatrix {
    let f = fixed.rank();
    let (mut a, mut b) = partial_hermitians(r, fixed, f);
    let degrees: Vec<usize> = (0..r.n_rows()).map(|u| r.nnz_row(u)).collect();
    finalize_and_solve(&mut a, &mut b, &degrees, lambda, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;
    use cumf_sparse::{vertical_partition, Coo};

    fn small_problem() -> (Csr, FactorMatrix) {
        let data = SyntheticConfig {
            m: 120,
            n: 60,
            nnz: 2400,
            rank: 4,
            ..Default::default()
        }
        .generate();
        let r = data.to_csr();
        let theta = FactorMatrix::random(60, 8, 0.5, 11);
        (r, theta)
    }

    #[test]
    fn solve_side_reduces_training_error() {
        let (r, theta) = small_problem();
        let x0 = FactorMatrix::random(r.n_rows() as usize, 8, 0.5, 3);
        let before = crate::loss::rmse_csr(&x0, &theta, &r);
        let x1 = solve_side(&r, &theta, 0.05);
        let after = crate::loss::rmse_csr(&x1, &theta, &r);
        assert!(
            after < before,
            "solving X should reduce RMSE: {before} -> {after}"
        );
    }

    #[test]
    fn solve_side_is_exact_for_rank1_noiseless_data() {
        // r_uv = u_factor * v_factor with no noise and lambda ~ 0: ALS
        // recovers X exactly given the true Θ.
        let theta = FactorMatrix::from_vec(3, 1, vec![1.0, 2.0, 4.0]);
        let mut coo = Coo::new(2, 3);
        for u in 0..2u32 {
            for v in 0..3u32 {
                coo.push(u, v, (u + 1) as f32 * theta.vector(v as usize)[0])
                    .unwrap();
            }
        }
        let r = coo.to_csr();
        let x = solve_side(&r, &theta, 1e-9);
        assert!((x.vector(0)[0] - 1.0).abs() < 1e-4);
        assert!((x.vector(1)[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn empty_rows_get_zero_vectors() {
        let mut coo = Coo::new(3, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 1, 2.0).unwrap();
        let r = coo.to_csr();
        let theta = FactorMatrix::random(2, 4, 1.0, 5);
        let x = solve_side(&r, &theta, 0.1);
        assert!(x.vector(1).iter().all(|&v| v == 0.0));
        assert!(x.vector(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn vectorized_assembly_matches_the_scalar_reference_exactly() {
        // Rebuild every row's system with the scalar syr_full + axpy pair —
        // the pre-vectorization assembly — and solve it: solve_side's fused
        // 4-lane kernel must reproduce each factor vector bit-for-bit (zero
        // tolerance), because per-element the assembly performs the same
        // multiply-adds and reorders no reduction.
        use cumf_linalg::blas::{axpy, syr_full};
        let (r, theta) = small_problem();
        let f = theta.rank();
        let lambda = 0.05f32;
        let got = solve_side(&r, &theta, lambda);
        for u in 0..r.n_rows() {
            let (cols, vals) = r.row(u);
            if cols.is_empty() {
                continue;
            }
            let mut a = vec![0.0f32; f * f];
            let mut b = vec![0.0f32; f];
            for (&v, &val) in cols.iter().zip(vals.iter()) {
                let theta_v = theta.vector(v as usize);
                syr_full(&mut a, theta_v);
                axpy(val, theta_v, &mut b);
            }
            add_diagonal(&mut a, f, lambda * cols.len() as f32);
            cholesky_solve(&mut a, f, &mut b).unwrap();
            assert_eq!(got.vector(u as usize), &b[..], "row {u} diverged");
        }
    }

    #[test]
    fn partial_path_matches_fused_path() {
        let (r, theta) = small_problem();
        let fused = solve_side(&r, &theta, 0.05);
        let partial = solve_side_via_partials(&r, &theta, 0.05);
        assert!(
            fused.max_abs_diff(&partial) < 1e-4,
            "fused and partial paths should agree"
        );
    }

    #[test]
    fn partials_over_column_partitions_sum_to_the_whole() {
        let (r, theta) = small_problem();
        let f = theta.rank();
        let (full_a, full_b) = partial_hermitians(&r, &theta, f);

        // Split columns into 3 partitions and accumulate the per-partition
        // partials: the result must equal the unpartitioned computation.
        let blocks = vertical_partition(&r, 3).unwrap();
        let rows = r.n_rows() as usize;
        let mut acc_a = vec![0.0f32; rows * f * f];
        let mut acc_b = vec![0.0f32; rows * f];
        for block in &blocks {
            // Factor vectors for this partition's columns.
            let cs = block.col_start as usize;
            let cols = block.n_cols() as usize;
            let mut part = FactorMatrix::zeros(cols, f);
            for c in 0..cols {
                part.vector_mut(c).copy_from_slice(theta.vector(cs + c));
            }
            let (pa, pb) = partial_hermitians(&block.csr, &part, f);
            accumulate_partials(&mut acc_a, &mut acc_b, &pa, &pb);
        }
        let max_a = full_a
            .iter()
            .zip(acc_a.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        let max_b = full_b
            .iter()
            .zip(acc_b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_a < 1e-3, "hermitian mismatch {max_a}");
        assert!(max_b < 1e-3, "rhs mismatch {max_b}");
    }

    #[test]
    fn finalize_zeroes_empty_rows() {
        let f = 4;
        let mut a = vec![0.0f32; 2 * f * f];
        let mut b = vec![0.0f32; 2 * f];
        // Row 0 has data, row 1 is empty.
        for i in 0..f {
            a[i * f + i] = 2.0;
            b[i] = 1.0;
        }
        let out = finalize_and_solve(&mut a, &mut b, &[3, 0], 0.1, f);
        assert!(out.vector(0).iter().any(|&v| v != 0.0));
        assert!(out.vector(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accumulate_rejects_mismatched_buffers() {
        let mut a = vec![0.0f32; 4];
        let mut b = vec![0.0f32; 2];
        accumulate_partials(&mut a, &mut b, &[0.0; 8], &[0.0; 2]);
    }
}

//! PALS: model-parallel ALS with full `Θ` replication (Zhou et al., AAIM
//! 2008 — the original "Large-scale Parallel Collaborative Filtering for the
//! Netflix Prize" system).
//!
//! PALS partitions `X` and `R` by rows across workers and **replicates the
//! whole `Θᵀ`** on every worker.  §2.2 of the cuMF paper points out that
//! this only works while `Θᵀ` is small; the [`Pals::replication_bytes`]
//! accessor exposes exactly the quantity that blows up.

use crate::als_util;
use cumf_core::{Engine, TrainMetrics};
use cumf_linalg::FactorMatrix;
use cumf_sparse::{horizontal_partition, Csr, Entry, SparseBlock};
use rayon::prelude::*;
use std::sync::Arc;

/// Hyper-parameters of the PALS solver.
#[derive(Debug, Clone, PartialEq)]
pub struct PalsConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Weighted-λ regularization.
    pub lambda: f32,
    /// Number of (simulated) worker partitions.
    pub workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PalsConfig {
    fn default() -> Self {
        Self {
            f: 32,
            lambda: 0.05,
            workers: 4,
            seed: 42,
        }
    }
}

/// PALS solver: row-partitioned ALS with full `Θ` replication.
pub struct Pals {
    config: PalsConfig,
    train_entries: Vec<Entry>,
    row_blocks: Vec<SparseBlock>,
    col_blocks: Vec<SparseBlock>,
    x: FactorMatrix,
    theta: FactorMatrix,
}

impl Pals {
    /// Builds the solver, partitioning `R` by rows (for update-X) and by
    /// rows of `Rᵀ` (for update-Θ).
    pub fn new(config: PalsConfig, r: &Csr) -> Self {
        let workers_rows = config.workers.min(r.n_rows().max(1) as usize);
        let workers_cols = config.workers.min(r.n_cols().max(1) as usize);
        let row_blocks = horizontal_partition(r, workers_rows).expect("row partition");
        let col_blocks =
            horizontal_partition(&r.transpose(), workers_cols).expect("column partition");
        let x = als_util::init_factors(r.n_rows() as usize, config.f, config.seed);
        let theta = als_util::init_factors(r.n_cols() as usize, config.f, config.seed ^ 0x7e7a);
        Self {
            config,
            train_entries: r.iter().collect(),
            row_blocks,
            col_blocks,
            x,
            theta,
        }
    }

    /// Bytes of `Θᵀ` (or `X` for the other half) that PALS replicates to
    /// every worker in one iteration — the scalability limit the cuMF paper
    /// calls out.
    pub fn replication_bytes(&self) -> u64 {
        let workers = self.row_blocks.len() as u64;
        let theta_bytes = (self.theta.footprint_words() * 4) as u64;
        let x_bytes = (self.x.footprint_words() * 4) as u64;
        workers * (theta_bytes + x_bytes)
    }

    fn update_side(
        blocks: &[SparseBlock],
        fixed: &FactorMatrix,
        lambda: f32,
        out_len: usize,
        f: usize,
    ) -> FactorMatrix {
        let mut out = FactorMatrix::zeros(out_len, f);
        // Each "worker" (block) solves its own rows against the replicated
        // fixed factors; workers run in parallel.
        let results: Vec<(u32, FactorMatrix)> = blocks
            .par_iter()
            .map(|block| {
                let mut local = FactorMatrix::zeros(block.n_rows() as usize, f);
                // The block has *global* column indices because horizontal
                // partitioning keeps the full column range.
                for u in 0..block.n_rows() {
                    let mut row = vec![0.0f32; f];
                    als_util::solve_row(&block.csr, u, fixed, lambda, &mut row);
                    local.vector_mut(u as usize).copy_from_slice(&row);
                }
                (block.row_start, local)
            })
            .collect();
        for (row_start, local) in results {
            for u in 0..local.len() {
                out.vector_mut(row_start as usize + u)
                    .copy_from_slice(local.vector(u));
            }
        }
        out
    }

    /// One full ALS iteration.
    pub fn als_iteration(&mut self) {
        let f = self.config.f;
        self.x = Self::update_side(
            &self.row_blocks,
            &self.theta,
            self.config.lambda,
            self.x.len(),
            f,
        );
        self.theta = Self::update_side(
            &self.col_blocks,
            &self.x,
            self.config.lambda,
            self.theta.len(),
            f,
        );
    }
}

impl Engine for Pals {
    fn name(&self) -> &'static str {
        "PALS (ALS, full replication)"
    }

    fn train_sweep(&mut self) -> f64 {
        self.als_iteration();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.x.len(), "X has the wrong number of rows");
        assert_eq!(
            theta.len(),
            self.theta.len(),
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x = x;
        self.theta = theta;
    }

    fn attach_metrics(&mut self, _metrics: Arc<TrainMetrics>) {}

    fn train_rmse(&self) -> f64 {
        self.rmse(&self.train_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 150,
            n: 90,
            nnz: 5000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn pals_converges_fast_like_any_als() {
        let r = ratings();
        let mut solver = Pals::new(
            PalsConfig {
                f: 8,
                workers: 4,
                ..Default::default()
            },
            &r,
        );
        let before = solver.train_rmse();
        for _ in 0..3 {
            solver.train_sweep();
        }
        let after = solver.train_rmse();
        assert!(
            after < before * 0.4,
            "PALS should converge quickly: {before} -> {after}"
        );
    }

    #[test]
    fn worker_count_does_not_change_results_materially() {
        let r = ratings();
        let mut w1 = Pals::new(
            PalsConfig {
                f: 8,
                workers: 1,
                ..Default::default()
            },
            &r,
        );
        let mut w4 = Pals::new(
            PalsConfig {
                f: 8,
                workers: 4,
                ..Default::default()
            },
            &r,
        );
        w1.train_sweep();
        w4.train_sweep();
        assert!(w1.x().max_abs_diff(w4.x()) < 1e-3);
    }

    #[test]
    fn replication_bytes_scale_with_workers() {
        let r = ratings();
        let p2 = Pals::new(
            PalsConfig {
                workers: 2,
                ..Default::default()
            },
            &r,
        );
        let p4 = Pals::new(
            PalsConfig {
                workers: 4,
                ..Default::default()
            },
            &r,
        );
        assert!(p4.replication_bytes() > p2.replication_bytes());
    }

    #[test]
    fn pals_beats_sgd_baselines_per_iteration() {
        // ALS makes much more progress per iteration than one SGD epoch.
        let r = ratings();
        let mut pals = Pals::new(
            PalsConfig {
                f: 8,
                ..Default::default()
            },
            &r,
        );
        let mut sgd = crate::libmf::LibMfSgd::new(
            crate::libmf::LibMfConfig {
                f: 8,
                ..Default::default()
            },
            &r,
        );
        pals.train_sweep();
        sgd.train_sweep();
        assert!(pals.train_rmse() < sgd.train_rmse());
    }
}

//! Top-N recommendation quality metrics.
//!
//! The paper evaluates with test RMSE, but the collaborative-filtering
//! deployments it motivates (Netflix, e-commerce) consume *rankings*.  These
//! helpers evaluate a factorization the way a recommender would be used:
//! rank unseen items per user and measure precision@k, recall@k, hit rate
//! and NDCG@k against the held-out ratings.

use crate::loss::predict;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// Averaged top-`k` ranking metrics over all evaluable users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Cut-off used for all metrics.
    pub k: usize,
    /// Mean fraction of the top-k that is relevant.
    pub precision: f64,
    /// Mean fraction of each user's relevant items that appear in the top-k.
    pub recall: f64,
    /// Mean normalized discounted cumulative gain at k (binary relevance).
    pub ndcg: f64,
    /// Fraction of users with at least one relevant item in their top-k.
    pub hit_rate: f64,
    /// Number of users that had at least one relevant held-out item.
    pub users_evaluated: usize,
}

/// Computes top-`k` ranking metrics.
///
/// * `train` — the ratings the model was trained on; those items are
///   excluded from each user's ranking (they are not recommendations).
/// * `test` — held-out ratings; an item is *relevant* for its user when its
///   rating is at least `relevance_threshold`.
pub fn ranking_metrics(
    x: &FactorMatrix,
    theta: &FactorMatrix,
    train: &Csr,
    test: &[Entry],
    k: usize,
    relevance_threshold: f32,
) -> RankingMetrics {
    assert!(k > 0, "k must be positive");
    let mut relevant: HashMap<u32, HashSet<u32>> = HashMap::new();
    for e in test {
        if e.val >= relevance_threshold {
            relevant.entry(e.row).or_default().insert(e.col);
        }
    }
    let users: Vec<(&u32, &HashSet<u32>)> = relevant.iter().collect();
    if users.is_empty() {
        return RankingMetrics {
            k,
            precision: 0.0,
            recall: 0.0,
            ndcg: 0.0,
            hit_rate: 0.0,
            users_evaluated: 0,
        };
    }

    let n_items = theta.len() as u32;
    let sums = users
        .par_iter()
        .map(|(&user, liked)| {
            let (seen, _) = train.row(user);
            let seen: HashSet<u32> = seen.iter().copied().collect();
            // Rank all unseen items by predicted score and keep the top k.
            let mut scored: Vec<(u32, f32)> = (0..n_items)
                .filter(|v| !seen.contains(v))
                .map(|v| (v, predict(x, theta, user, v)))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(k);

            let hits: Vec<bool> = scored.iter().map(|(v, _)| liked.contains(v)).collect();
            let n_hits = hits.iter().filter(|&&h| h).count();
            let precision = n_hits as f64 / k as f64;
            let recall = n_hits as f64 / liked.len() as f64;
            let hit = if n_hits > 0 { 1.0 } else { 0.0 };
            // Binary-relevance NDCG.
            let dcg: f64 = hits
                .iter()
                .enumerate()
                .filter(|(_, &h)| h)
                .map(|(rank, _)| 1.0 / ((rank + 2) as f64).log2())
                .sum();
            let ideal_hits = liked.len().min(k);
            let idcg: f64 = (0..ideal_hits)
                .map(|rank| 1.0 / ((rank + 2) as f64).log2())
                .sum();
            let ndcg = if idcg > 0.0 { dcg / idcg } else { 0.0 };
            (precision, recall, ndcg, hit)
        })
        .reduce(
            || (0.0, 0.0, 0.0, 0.0),
            |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
        );

    let n = users.len() as f64;
    RankingMetrics {
        k,
        precision: sums.0 / n,
        recall: sums.1 / n,
        ndcg: sums.2 / n,
        hit_rate: sums.3 / n,
        users_evaluated: users.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlsConfig;
    use crate::trainer::{Backend, MatrixFactorizer};
    use cumf_data::synth::SyntheticConfig;
    use cumf_data::train_test_split;
    use cumf_sparse::Coo;

    #[test]
    fn perfect_ranking_gets_perfect_scores() {
        // 1 user, 4 items; the model scores item order 3 > 2 > 1 > 0, the
        // user's held-out relevant items are {3, 2}, nothing was seen in
        // training.
        let x = FactorMatrix::from_vec(1, 1, vec![1.0]);
        let theta = FactorMatrix::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.4]);
        let train = Coo::new(1, 4).to_csr();
        let test = vec![Entry::new(0, 3, 5.0), Entry::new(0, 2, 5.0)];
        let m = ranking_metrics(&x, &theta, &train, &test, 2, 4.0);
        assert_eq!(m.users_evaluated, 1);
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert!((m.recall - 1.0).abs() < 1e-12);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
        assert!((m.hit_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_ranking_gets_zero_precision() {
        // Relevant items are exactly the lowest-scored ones.
        let x = FactorMatrix::from_vec(1, 1, vec![1.0]);
        let theta = FactorMatrix::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.4]);
        let train = Coo::new(1, 4).to_csr();
        let test = vec![Entry::new(0, 0, 5.0)];
        let m = ranking_metrics(&x, &theta, &train, &test, 2, 4.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.hit_rate, 0.0);
        assert_eq!(m.ndcg, 0.0);
    }

    #[test]
    fn seen_items_are_excluded_from_the_ranking() {
        let x = FactorMatrix::from_vec(1, 1, vec![1.0]);
        let theta = FactorMatrix::from_vec(3, 1, vec![0.9, 0.5, 0.1]);
        // The highest-scored item 0 was already rated in training.
        let mut train = Coo::new(1, 3);
        train.push(0, 0, 5.0).unwrap();
        let train = train.to_csr();
        // Held-out relevant item is 1; with item 0 excluded it ranks first.
        let test = vec![Entry::new(0, 1, 5.0)];
        let m = ranking_metrics(&x, &theta, &train, &test, 1, 4.0);
        assert!((m.precision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_relevant_items_gives_empty_evaluation() {
        let x = FactorMatrix::from_vec(1, 1, vec![1.0]);
        let theta = FactorMatrix::from_vec(2, 1, vec![0.1, 0.2]);
        let train = Coo::new(1, 2).to_csr();
        let test = vec![Entry::new(0, 0, 1.0)];
        let m = ranking_metrics(&x, &theta, &train, &test, 5, 4.0);
        assert_eq!(m.users_evaluated, 0);
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    fn trained_model_beats_an_untrained_one_on_ndcg() {
        let data = SyntheticConfig {
            m: 250,
            n: 120,
            nnz: 9000,
            rank: 6,
            noise_std: 0.2,
            ..Default::default()
        }
        .generate();
        let split = train_test_split(&data.ratings, 0.2, 5);
        let config = AlsConfig {
            f: 16,
            lambda: 0.05,
            iterations: 6,
            ..Default::default()
        };
        let mut model = MatrixFactorizer::new(config, Backend::Reference);
        model.fit(&split.train, &split.test);

        // The recalibrated generator centers ratings on the range midpoint
        // (3.0) with std ≈ span/4, so the conventional "liked" threshold of
        // 3.5 leaves a healthy relevant set.
        let trained = ranking_metrics(model.x(), model.theta(), &split.train, &split.test, 10, 3.5);
        let random_x = FactorMatrix::random(250, 16, 0.2, 999);
        let random_theta = FactorMatrix::random(120, 16, 0.2, 998);
        let untrained =
            ranking_metrics(&random_x, &random_theta, &split.train, &split.test, 10, 3.5);
        assert!(trained.users_evaluated > 10);
        assert!(
            trained.ndcg > untrained.ndcg,
            "training should improve ranking quality: {} vs {}",
            trained.ndcg,
            untrained.ndcg
        );
        assert!(trained.hit_rate >= untrained.hit_rate);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let x = FactorMatrix::zeros(1, 1);
        let theta = FactorMatrix::zeros(1, 1);
        let train = Coo::new(1, 1).to_csr();
        ranking_metrics(&x, &theta, &train, &[], 0, 4.0);
    }
}

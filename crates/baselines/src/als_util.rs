//! Small ALS helpers shared by the ALS-family baselines (PALS and the
//! SparkALS-style solver).
//!
//! These deliberately do not reuse `cumf-core`'s engines: the baselines are
//! meant to be stand-alone re-implementations of the competing systems, the
//! way an external comparison would be run.

use cumf_linalg::blas::{add_diagonal, axpy, syr_full};
use cumf_linalg::cholesky::cholesky_solve;
use cumf_linalg::FactorMatrix;
use cumf_sparse::Csr;

/// Solves the normal equation of one row `u` of `r` against the `fixed`
/// factors (weighted-λ regularization) and writes the result into `out`.
pub fn solve_row(r: &Csr, u: u32, fixed: &FactorMatrix, lambda: f32, out: &mut [f32]) {
    let f = fixed.rank();
    debug_assert_eq!(out.len(), f);
    let (cols, vals) = r.row(u);
    if cols.is_empty() {
        out.fill(0.0);
        return;
    }
    let mut a = vec![0.0f32; f * f];
    let mut b = vec![0.0f32; f];
    for (&v, &val) in cols.iter().zip(vals.iter()) {
        let tv = fixed.vector(v as usize);
        syr_full(&mut a, tv);
        axpy(val, tv, &mut b);
    }
    add_diagonal(&mut a, f, lambda * cols.len() as f32);
    if cholesky_solve(&mut a, f, &mut b).is_ok() {
        out.copy_from_slice(&b);
    } else {
        out.fill(0.0);
    }
}

/// Random factor initialization shared by the baselines (same scaling as the
/// core engines so convergence curves are comparable).
pub fn init_factors(n: usize, f: usize, seed: u64) -> FactorMatrix {
    FactorMatrix::random(n, f, 1.0 / (f as f32).sqrt(), seed)
}

/// Mean of the stored ratings (1.0 for an empty matrix).
pub fn mean_rating(r: &Csr) -> f32 {
    if r.nnz() == 0 {
        return 1.0;
    }
    let sum: f64 = r.values().iter().map(|&v| v as f64).sum();
    (sum / r.nnz() as f64) as f32
}

/// Random factor initialization whose initial predictions center on `mean`:
/// entries uniform in `[0, 2·√(mean/f))`, so `E[x·θ] = mean`.  The SGD-style
/// baselines (libMF, NOMAD, HOGWILD!, CCD++) start this way — as the real
/// libMF does — because gradient steps close the gap to the rating mean
/// slowly, unlike an ALS sweep which jumps there in one solve.
pub fn init_factors_to_mean(n: usize, f: usize, seed: u64, mean: f32) -> FactorMatrix {
    let scale = 2.0 * (mean.max(0.0) / f as f32).sqrt();
    FactorMatrix::random(n, f, scale.max(1e-3), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_sparse::Coo;

    #[test]
    fn solve_row_recovers_rank1_factor() {
        let fixed = FactorMatrix::from_vec(3, 1, vec![1.0, 2.0, 4.0]);
        let mut coo = Coo::new(1, 3);
        for v in 0..3u32 {
            coo.push(0, v, 3.0 * fixed.vector(v as usize)[0]).unwrap();
        }
        let r = coo.to_csr();
        let mut out = vec![0.0f32];
        solve_row(&r, 0, &fixed, 1e-9, &mut out);
        assert!((out[0] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn empty_row_is_zeroed() {
        let fixed = FactorMatrix::random(3, 2, 1.0, 1);
        let r = Coo::new(2, 3).to_csr();
        let mut out = vec![9.0f32; 2];
        solve_row(&r, 1, &fixed, 0.1, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn init_factors_is_seeded() {
        assert_eq!(init_factors(10, 4, 7), init_factors(10, 4, 7));
        assert_ne!(init_factors(10, 4, 7), init_factors(10, 4, 8));
    }
}

//! The model-checking runtime: a cooperative scheduler over real OS
//! threads.
//!
//! Exactly **one** model thread runs at any instant.  Every instrumented
//! operation (an atomic access, a lock acquisition, a spawn, a join) calls
//! [`yield_point`], which hands control to the scheduler; the scheduler
//! consults the current [`Schedule`] to decide which runnable thread
//! proceeds.  Because the threads only ever interleave at these points and
//! the decision sequence is recorded, an execution is a pure function of
//! its schedule — re-running the same schedule replays the same
//! interleaving bit-for-bit, which is what makes a found race
//! *deterministically reproducible*.
//!
//! Exploration is the CHESS-style bounded search: the scheduler enumerates
//! schedules depth-first, bounding the number of **preemptions** (a switch
//! away from a thread that could have kept running; switches at blocking
//! or termination are free).  Most real concurrency bugs manifest within
//! two preemptions, so the bounded search covers the interesting
//! interleavings at a tiny fraction of the full factorial cost.  A seeded
//! random strategy is available for state spaces too large to enumerate.
//!
//! ## Semantic scope
//!
//! Interleavings are explored under **sequential consistency**: the shim
//! validates protocol/interleaving correctness (lost updates, ordering of
//! CAS publishes, torn multi-step invariants, deadlocks), not C11 weak
//! memory.  Weak-memory hygiene is covered by the `cumf-check` lint pass
//! (every `Relaxed` justified) and the best-effort Miri/TSan CI lanes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel payload for the "unwind quietly, the model is aborting" panic
/// used to tear down threads blocked in the scheduler.
pub(crate) struct ModelAbort;

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// What a not-currently-running model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resource {
    /// A lock (keyed by the primitive's address).
    Lock(usize),
    /// Another model thread's termination (keyed by tid).
    Thread(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One scheduling decision: the runnable candidates at a choice point
/// (continuation-first, then ascending tid) and which was chosen.
#[derive(Debug, Clone)]
struct ChoicePoint {
    candidates: Vec<usize>,
    chosen: usize,
    /// Whether `candidates[0]` is the previously-running thread (so picking
    /// any other index costs a preemption).
    has_continuation: bool,
    /// Preemptions consumed by the prefix strictly before this point.
    preemptions_before: usize,
}

/// How the scheduler explores interleavings (see [`crate::Builder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first enumeration of every schedule within the preemption
    /// bound (complete unless the iteration cap truncates it).
    Exhaustive,
    /// Seeded pseudo-random scheduling for `iterations` runs — for state
    /// spaces too large to enumerate; the same seed explores the same
    /// schedules.
    Random {
        /// Seed of the xorshift decision stream.
        seed: u64,
        /// Number of runs.
        iterations: usize,
    },
}

/// The cross-run exploration state: a decision prefix (DFS) or a PRNG
/// stream (random), plus the trace of the current run.
pub(crate) struct Schedule {
    strategy: Strategy,
    max_preemptions: usize,
    prefix: Vec<ChoicePoint>,
    /// Cursor into `prefix` during a run.
    pos: usize,
    /// xorshift state (random strategy).
    rng: u64,
    /// Chosen tids of the current run, for failure reports.
    trace: Vec<usize>,
    /// Set when a replayed choice point's candidates diverged — the model
    /// closure is not deterministic, so DFS results are best-effort.
    pub(crate) nondeterminism: bool,
    /// Completed runs (maintained by the model loop; consulted only by the
    /// random strategy's continuation test).
    pub(crate) runs_counter: usize,
}

impl Schedule {
    pub(crate) fn new(strategy: Strategy, max_preemptions: usize) -> Self {
        let rng = match strategy {
            Strategy::Random { seed, .. } => seed | 1,
            Strategy::Exhaustive => 1,
        };
        Self {
            strategy,
            max_preemptions,
            prefix: Vec::new(),
            pos: 0,
            rng,
            trace: Vec::new(),
            nondeterminism: false,
            runs_counter: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — deterministic, seed-stable across platforms.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Decides which of `candidates` (continuation-first ordering) runs
    /// next.  Records the decision for replay/backtracking.
    fn decide(&mut self, candidates: Vec<usize>, has_continuation: bool) -> usize {
        debug_assert!(!candidates.is_empty());
        let preemptions_before = self.preemptions_up_to(self.pos);
        let chosen = match self.strategy {
            Strategy::Exhaustive => {
                if self.pos < self.prefix.len() {
                    // Replaying the prefix.
                    let cp = &self.prefix[self.pos];
                    if cp.candidates != candidates {
                        self.nondeterminism = true;
                    }
                    cp.chosen.min(candidates.len() - 1)
                } else {
                    // Fresh territory: take the non-preemptive default and
                    // record the point for later backtracking.
                    self.prefix.push(ChoicePoint {
                        candidates: candidates.clone(),
                        chosen: 0,
                        has_continuation,
                        preemptions_before,
                    });
                    0
                }
            }
            Strategy::Random { .. } => {
                let i = (self.next_u64() % candidates.len() as u64) as usize;
                self.prefix.push(ChoicePoint {
                    candidates: candidates.clone(),
                    chosen: i,
                    has_continuation,
                    preemptions_before,
                });
                i
            }
        };
        self.pos += 1;
        let tid = candidates[chosen];
        self.trace.push(tid);
        tid
    }

    fn preemptions_up_to(&self, pos: usize) -> usize {
        self.prefix[..pos.min(self.prefix.len())]
            .iter()
            .filter(|cp| cp.has_continuation && cp.chosen != 0)
            .count()
    }

    /// Advances DFS to the next unexplored schedule.  Returns `false` when
    /// the bounded space is exhausted.
    pub(crate) fn advance(&mut self) -> bool {
        if let Strategy::Random { iterations, .. } = self.strategy {
            self.prefix.clear();
            self.pos = 0;
            self.trace.clear();
            return self.runs_done() < iterations;
        }
        while let Some(mut cp) = self.prefix.pop() {
            // The prefix just shrank, so this is cp's own preemption count.
            let preemptions = self.preemptions_up_to(self.prefix.len());
            let budget_left = preemptions < self.max_preemptions;
            let next = cp.chosen + 1;
            if next < cp.candidates.len() {
                // Every alternative beyond index 0 is a preemption when a
                // continuation exists; only take it within budget.
                let preemptive = cp.has_continuation;
                if !preemptive || budget_left {
                    cp.chosen = next;
                    cp.preemptions_before = preemptions;
                    self.prefix.push(cp);
                    self.pos = 0;
                    self.trace.clear();
                    return true;
                }
            }
        }
        false
    }

    fn runs_done(&self) -> usize {
        self.runs_counter
    }
}

struct Shared {
    threads: Vec<ThreadState>,
    /// The tid currently allowed to run (`None` once all have finished).
    active: Option<usize>,
    /// The previously-running tid, for continuation-first candidate order.
    last_running: usize,
    schedule: Schedule,
    /// First real panic payload observed in any model thread.
    abort: Option<Box<dyn std::any::Any + Send>>,
    /// Human-readable reason when the abort was scheduler-initiated
    /// (deadlock, step budget) rather than a test assertion.
    abort_reason: Option<String>,
    steps: usize,
    max_steps: usize,
}

pub(crate) struct Execution {
    shared: Mutex<Shared>,
    cv: Condvar,
}

impl Execution {
    pub(crate) fn new(schedule: Schedule, max_steps: usize) -> Arc<Self> {
        Arc::new(Self {
            shared: Mutex::new(Shared {
                threads: vec![ThreadState::Runnable],
                active: Some(0),
                last_running: 0,
                schedule,
                abort: None,
                abort_reason: None,
                steps: 0,
                max_steps,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Installs this execution as the calling thread's context.
    pub(crate) fn enter(self: &Arc<Self>, tid: usize) {
        CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(self), tid)));
    }

    pub(crate) fn exit() {
        CONTEXT.with(|c| *c.borrow_mut() = None);
    }

    pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
        CONTEXT.with(|c| c.borrow().clone())
    }

    /// Registers a new model thread; returns its tid.  Counts as an
    /// instrumented step for the spawner.
    pub(crate) fn register_thread(self: &Arc<Self>) -> usize {
        let mut s = self.lock();
        s.threads.push(ThreadState::Runnable);
        s.threads.len() - 1
    }

    /// Parks the calling OS thread until the scheduler makes `tid` active.
    pub(crate) fn wait_until_scheduled(&self, tid: usize) {
        let mut s = self.lock();
        while s.active != Some(tid) {
            if s.abort.is_some() || s.abort_reason.is_some() {
                drop(s);
                std::panic::panic_any(ModelAbort);
            }
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The heart of the runtime: one instrumented step by thread `tid`.
    /// Picks (via the schedule) who runs next and parks the caller until
    /// it is scheduled again.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut s = self.lock();
        if s.abort.is_some() || s.abort_reason.is_some() {
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        s.steps += 1;
        if s.steps > s.max_steps {
            s.abort_reason = Some(format!(
                "model exceeded {} steps — livelock or unbounded loop (trace: {:?})",
                s.max_steps, s.schedule.trace
            ));
            self.cv.notify_all();
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        let next = self.pick_next(&mut s, tid);
        if next != tid {
            s.active = Some(next);
            s.last_running = next;
            self.cv.notify_all();
            while s.active != Some(tid) {
                if s.abort.is_some() || s.abort_reason.is_some() {
                    drop(s);
                    std::panic::panic_any(ModelAbort);
                }
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// Chooses the next thread to run from `current`'s yield.  `current`
    /// must be runnable (it is mid-yield, not blocked).
    fn pick_next(&self, s: &mut Shared, current: usize) -> usize {
        let mut candidates: Vec<usize> = Vec::new();
        // Continuation-first ordering: index 0 = "keep running", so DFS's
        // first visit of every point is the preemption-free schedule.
        if s.threads[current] == ThreadState::Runnable {
            candidates.push(current);
        }
        for (tid, st) in s.threads.iter().enumerate() {
            if tid != current && *st == ThreadState::Runnable {
                candidates.push(tid);
            }
        }
        match candidates.len() {
            0 => unreachable!("pick_next from a non-runnable thread"),
            1 => candidates[0],
            _ => {
                let has_continuation = candidates[0] == current;
                s.schedule.decide(candidates, has_continuation)
            }
        }
    }

    /// Marks `tid` blocked on `resource` and schedules someone else.
    /// Returns when `tid` is runnable and scheduled again.
    pub(crate) fn block_on(&self, tid: usize, resource: Resource) {
        let mut s = self.lock();
        if s.abort.is_some() || s.abort_reason.is_some() {
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        s.threads[tid] = ThreadState::Blocked(resource);
        let runnable: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == ThreadState::Runnable)
            .map(|(t, _)| t)
            .collect();
        if runnable.is_empty() {
            let held = s
                .threads
                .iter()
                .enumerate()
                .filter(|(_, st)| matches!(st, ThreadState::Blocked(_)))
                .map(|(t, st)| format!("thread {t} blocked on {st:?}"))
                .collect::<Vec<_>>()
                .join(", ");
            s.abort_reason = Some(format!(
                "deadlock: every live thread is blocked ({held}); trace: {:?}",
                s.schedule.trace
            ));
            self.cv.notify_all();
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        let next = if runnable.len() == 1 {
            runnable[0]
        } else {
            // A switch away from a *blocked* thread is free: no
            // continuation candidate.
            s.schedule.decide(runnable, false)
        };
        s.active = Some(next);
        s.last_running = next;
        self.cv.notify_all();
        while s.active != Some(tid) {
            if s.abort.is_some() || s.abort_reason.is_some() {
                drop(s);
                std::panic::panic_any(ModelAbort);
            }
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Wakes every thread blocked on `resource` (they become runnable and
    /// compete at the next choice point).
    pub(crate) fn unblock(&self, resource: Resource) {
        let mut s = self.lock();
        for st in s.threads.iter_mut() {
            if *st == ThreadState::Blocked(resource) {
                *st = ThreadState::Runnable;
            }
        }
    }

    /// Whether model thread `tid` has finished.
    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().threads[tid] == ThreadState::Finished
    }

    /// Records the first real panic payload (test assertion failures etc.).
    pub(crate) fn record_abort(&self, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<ModelAbort>().is_some() {
            return; // secondary teardown unwind, not a finding
        }
        let mut s = self.lock();
        if s.abort.is_none() {
            s.abort = Some(payload);
        }
        self.cv.notify_all();
    }

    /// Marks `tid` finished, wakes joiners, and hands the token onward.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut s = self.lock();
        s.threads[tid] = ThreadState::Finished;
        // Wake joiners.
        for st in s.threads.iter_mut() {
            if *st == ThreadState::Blocked(Resource::Thread(tid)) {
                *st = ThreadState::Runnable;
            }
        }
        if s.abort.is_some() || s.abort_reason.is_some() {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == ThreadState::Runnable)
            .map(|(t, _)| t)
            .collect();
        match runnable.len() {
            0 => {
                if s.threads.iter().all(|st| *st == ThreadState::Finished) {
                    s.active = None; // execution complete
                } else {
                    let held = s
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, st)| matches!(st, ThreadState::Blocked(_)))
                        .map(|(t, st)| format!("thread {t} blocked on {st:?}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    s.abort_reason = Some(format!(
                        "deadlock after thread {tid} exited ({held}); trace: {:?}",
                        s.schedule.trace
                    ));
                }
            }
            1 => {
                s.active = Some(runnable[0]);
                s.last_running = runnable[0];
            }
            _ => {
                let next = s.schedule.decide(runnable, false);
                s.active = Some(next);
                s.last_running = next;
            }
        }
        self.cv.notify_all();
    }

    /// Waits (on the caller's OS thread, outside the model) until every
    /// model thread has finished or the execution aborted.
    pub(crate) fn wait_all_finished(&self) {
        let mut s = self.lock();
        loop {
            let done = s.threads.iter().all(|st| *st == ThreadState::Finished);
            if done || s.abort.is_some() || s.abort_reason.is_some() {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Tears down a (possibly aborted) execution: unparks everyone so
    /// blocked threads unwind via [`ModelAbort`].
    pub(crate) fn force_teardown(&self) {
        let mut s = self.lock();
        if s.abort.is_none() && s.abort_reason.is_none() {
            s.abort_reason = Some("execution torn down".to_string());
        }
        self.cv.notify_all();
        drop(s);
        // Give unwinding threads their wake-ups until all are finished.
        loop {
            let s = self.lock();
            if s.threads.iter().all(|st| *st == ThreadState::Finished) {
                return;
            }
            self.cv.notify_all();
            drop(s);
            std::thread::yield_now();
        }
    }

    /// Whether the execution has aborted (panic, deadlock, or step budget).
    pub(crate) fn aborted(&self) -> bool {
        let s = self.lock();
        s.abort.is_some() || s.abort_reason.is_some()
    }

    pub(crate) fn take_outcome(&self) -> Outcome {
        let mut s = self.lock();
        let trace = s.schedule.trace.clone();
        let schedule = std::mem::replace(&mut s.schedule, Schedule::new(Strategy::Exhaustive, 0));
        (schedule, s.abort.take(), s.abort_reason.take(), trace)
    }
}

/// What one finished execution hands back to [`crate::Builder::check`]:
/// the consumed schedule, the abort payload (if any), the abort reason,
/// and the decision trace for failure reporting.
pub(crate) type Outcome = (
    Schedule,
    Option<Box<dyn std::any::Any + Send>>,
    Option<String>,
    Vec<usize>,
);

/// One instrumented step for the calling thread, if it is a model thread;
/// a no-op otherwise (so instrumented types degrade to plain std behaviour
/// outside [`crate::model`]).
pub(crate) fn yield_point() {
    if std::thread::panicking() {
        // Instrumented ops reached from destructors during an abort unwind
        // must not re-enter the scheduler (it would double-panic).
        return;
    }
    if let Some((exec, tid)) = Execution::current() {
        exec.yield_point(tid);
    }
}

/// Runs `body` as model thread 0 of `exec` on the calling thread,
/// capturing a panic as the execution's abort.
pub(crate) fn run_root(exec: &Arc<Execution>, body: impl FnOnce()) {
    exec.enter(0);
    let result = catch_unwind(AssertUnwindSafe(body));
    if let Err(payload) = result {
        exec.record_abort(payload);
    }
    exec.finish_thread(0);
    Execution::exit();
    exec.wait_all_finished();
}

//! Seeded-fixture cache: every lock-order violation flavor.
use std::sync::{Mutex, MutexGuard};

pub struct ResultCache;
pub struct ShardedResultCache {
    shards: Vec<Mutex<ResultCache>>,
}

impl ShardedResultCache {
    fn lock(shard: &Mutex<ResultCache>) -> MutexGuard<'_, ResultCache> {
        shard.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn held_guard(&self) {
        let guard = Self::lock(&self.shards[0]);
        drop(guard);
    }

    pub fn double_lock(&self) {
        let _ = (Self::lock(&self.shards[0]), Self::lock(&self.shards[1]));
    }

    pub fn reverse_sweep(&self) {
        for shard in self.shards.iter().rev() {
            drop(Self::lock(shard));
        }
    }
}

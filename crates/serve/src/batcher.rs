//! Request coalescing: many concurrent clients, a pool of blocked scorers.
//!
//! [`TopKService`] owns a pool of `workers` scorer threads fed by one MPMC
//! channel.  Each worker assembles micro-batches that are **size-bounded**
//! (`max_batch`) and **deadline-bounded** (`max_delay` from the first
//! request of the batch), the standard dynamic-batching policy of inference
//! servers: under load, batches fill instantly and scoring runs at full
//! blocked throughput on every worker; when idle, a lone request waits at
//! most `max_delay`.  A sharded result cache
//! ([`crate::cache::ShardedResultCache`]) sits behind the whole pool, so a
//! result scored by one worker is a cache hit for every other.
//!
//! Per batch the worker captures the current snapshot `Arc` **once** —
//! every request in the batch is answered from that generation, so a
//! concurrent [`TopKService::publish`] can never produce a mixed-generation
//! response.  Identical `(user, k, exclusions)` requests that coalesce into
//! the same micro-batch are **scored once** and fanned out to every waiter
//! (the duplicates count as cache hits).  Results are cached with the
//! generation stamped in; a publish invalidates lazily through the
//! generation check.
//!
//! A panicking worker never fails silently: the panic is caught and its
//! message recorded, the batch it was scoring fails with
//! [`ServeError::WorkerPanicked`] carrying the original message — and then
//! a **supervisor policy** decides what happens to the worker.  Each panic
//! consumes one unit of the pool-wide [`ServeConfig::panic_budget`]; while
//! budget remains the worker resumes its loop (a restart: full capacity,
//! no dead thread, `worker_restarts` metric), and once the budget is
//! exhausted the original poison path applies — that worker exits for good
//! and [`TopKService::poisoned`] reports the cause.  Surviving workers
//! keep serving at reduced capacity (a health check should watch
//! `poisoned()`/`worker_panics`, not wait for requests to fail); only once
//! every worker has died does each request fail with the recorded cause.
//! A crash-looping scorer therefore degrades loudly instead of either
//! dying on the first transient or looping forever.

use crate::cache::{CacheKey, ShardedResultCache};
use crate::metrics::{MetricsReport, ServeMetrics, Stage, WindowedReport};
use crate::snapshot::{DeltaError, DeltaStats, FactorSnapshot, SnapshotDelta, SnapshotStore};
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};
use crate::topk::{Query, ScoreKind, TopKIndex, DEFAULT_RERANK_FACTOR};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use cumf_linalg::topk::DEFAULT_ITEM_BLOCK;
use cumf_linalg::{ApproxPolicy, Precision, PruneStats};
use cumf_obs::{ns_between, Sampler, Trace, TraceLog};
use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`TopKService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Largest micro-batch a worker scores at once.
    pub max_batch: usize,
    /// Longest a batch waits for co-travellers after its first request.
    pub max_delay: Duration,
    /// Scorer worker threads pulling micro-batches off the shared queue
    /// (clamped to at least 1).  One worker reproduces the single-threaded
    /// batcher; more workers scale scoring past one core's budget and keep
    /// serving while another worker is mid-batch.
    pub workers: usize,
    /// Item shards per scoring pass (see [`TopKIndex::with_shards`]):
    /// partitions Θ into contiguous shards scored in parallel and merged.
    /// Results are bit-identical for every value; > 1 buys parallelism for
    /// small batches over large catalogs.
    pub shards: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache byte budget: each entry is charged `k · 8` result bytes
    /// plus `4` per excluded item, so heavy-`k` / heavy-exclusion traffic
    /// evicts instead of growing memory without bound.  0 means no byte
    /// budget (entry capacity only).
    pub cache_budget_bytes: usize,
    /// Items scored per block (see [`cumf_linalg::batch_score_block`]).
    pub item_block: usize,
    /// Scoring function.
    pub score: ScoreKind,
    /// Depth of the request queue; senders block (back-pressure) when the
    /// workers fall this far behind.
    pub queue_depth: usize,
    /// Pool-wide scoring-panic budget: how many worker panics are absorbed
    /// by restarting the worker (capacity restored, `worker_restarts`
    /// metric) before the pool falls back to the poison path and stays
    /// degraded.  0 poisons on the first panic (the pre-supervisor
    /// behaviour).
    pub panic_budget: usize,
    /// Item-segment bound for automatic compaction: after an
    /// item-appending delta publish leaves the snapshot with more than this
    /// many segments, [`TopKService::compact_items`] runs inline (0 = never
    /// auto-compact).
    pub max_item_segments: usize,
    /// Service-wide retrieval policy: `None` (the default) scores every
    /// request exactly; `Some(policy)` lets the scorer terminate block
    /// scans early within the policy's epsilon/budget.  Individual requests
    /// override it ([`ServeClient::recommend_exact`],
    /// [`ServeClient::recommend_approx`]); requests under different
    /// effective policies never share a scoring micro-batch or a cache
    /// entry.
    pub approx: Option<ApproxPolicy>,
    /// Storage precision of the served item factors.  At startup (and on
    /// every full-snapshot [`TopKService::publish`]) the catalog is
    /// re-encoded to this precision; item-appending deltas re-encode their
    /// tails through [`crate::itemstore::ItemStore::append`].  Quantized
    /// precisions stream the compressed slab through the blocked scan and
    /// rescore the over-fetched candidates against retained exact f32 rows
    /// (see [`ServeConfig::rerank_factor`]); `F32` (the default) is
    /// bit-identical to the pre-quantization service.
    pub precision: Precision,
    /// Per-segment precision overrides `(segment index, precision)` applied
    /// on top of [`ServeConfig::precision`] when the catalog is re-encoded,
    /// so mixed catalogs work: a norm-descending store keeps its hot head
    /// segment (index 0) at `F32` while cold tail segments quantize to
    /// `I8`.  Indices past the snapshot's segment list are ignored.
    pub precision_overrides: Vec<(usize, Precision)>,
    /// Over-fetch margin of the quantized-scan rerank pass: heaps keep
    /// `ceil(k · rerank_factor)` candidates and the exact rescore truncates
    /// back to `k` (see [`TopKIndex::with_rerank`]).  Ignored when every
    /// segment is exact f32.  Must be finite and ≥ 1.
    pub rerank_factor: f32,
    /// Trace one request in `trace_sample` (0 disables tracing, 1 traces
    /// everything).  Only sampled requests allocate a per-request
    /// [`Trace`]; everyone else pays one relaxed counter increment.
    pub trace_sample: u64,
    /// How many completed traces the in-memory ring buffer retains
    /// ([`TopKService::traces_jsonl`] drains the most recent window).
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            workers: 1,
            shards: 1,
            cache_capacity: 4096,
            cache_budget_bytes: 16 << 20,
            item_block: DEFAULT_ITEM_BLOCK,
            score: ScoreKind::Dot,
            queue_depth: 1024,
            panic_budget: 2,
            max_item_segments: 8,
            approx: None,
            precision: Precision::F32,
            precision_overrides: Vec::new(),
            rerank_factor: DEFAULT_RERANK_FACTOR,
            trace_sample: 64,
            trace_capacity: 1024,
        }
    }
}

/// Sampled request tracing shared by every client and worker: a 1-in-N
/// [`Sampler`] decides at enqueue whether a request carries a [`Trace`];
/// the worker stamps the stage timings onto it and the completed trace
/// lands in a bounded ring ([`TraceLog`]).
#[derive(Debug)]
pub struct Tracer {
    sampler: Sampler,
    log: TraceLog,
    next_id: AtomicU64,
}

impl Tracer {
    fn new(sample: u64, capacity: usize) -> Self {
        Self {
            sampler: Sampler::new(sample),
            log: TraceLog::new(capacity),
            next_id: AtomicU64::new(0),
        }
    }

    /// Admission decision for one request (boxed so the unsampled hot path
    /// carries only a null-ish `Option`).
    fn begin(&self) -> Option<Box<Trace>> {
        // relaxed-ok: trace ids only need uniqueness, not order
        self.sampler
            .sample()
            .then(|| Box::new(Trace::begin(self.next_id.fetch_add(1, Ordering::Relaxed))))
    }

    /// Files a completed trace into the ring.
    fn finish(&self, trace: Trace) {
        self.log.push(trace);
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> Vec<Trace> {
        self.log.snapshot()
    }

    /// The retained traces rendered as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.log.to_jsonl()
    }
}

/// Per-request retrieval-mode override carried alongside the query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RequestMode {
    /// Score under the service-wide policy ([`ServeConfig::approx`]).
    #[default]
    Inherit,
    /// Force exact retrieval regardless of the service default.
    Exact,
    /// Force this approximate policy for this request only.
    Approx(ApproxPolicy),
}

impl RequestMode {
    /// The policy this request actually scores under, given the service
    /// default.  A policy that cannot change results (`epsilon = 0`, no
    /// budget) normalizes to `None`, so epsilon-zero traffic shares cache
    /// entries and micro-batches with exact traffic — their results are
    /// bit-identical by construction.
    fn effective(&self, service_default: &Option<ApproxPolicy>) -> Option<ApproxPolicy> {
        let policy = match self {
            RequestMode::Inherit => *service_default,
            RequestMode::Exact => None,
            RequestMode::Approx(p) => Some(*p),
        };
        policy.filter(|p| !p.is_exact())
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service was dropped; its workers have shut down cleanly.
    Shutdown,
    /// A scorer worker died to a panic (message attached) and this request
    /// can no longer be served.
    WorkerPanicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => f.write_str("serving workers have shut down"),
            ServeError::WorkerPanicked(msg) => {
                write!(f, "serving worker panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Pool lifecycle shared by the service handle, the workers, and every
/// client: a first-panic-wins panic record, the restart budget, the
/// poisoned flag (budget exhausted — permanently degraded), the live-worker
/// count, and the closed flag the drop path raises once every worker has
/// been joined.
///
/// The liveness flags exist because of a shutdown race inherent to the MPMC
/// queue: a request enqueued *after* the shutdown markers (or after the
/// last worker died to a panic) is never popped, so its client would block
/// on the reply channel forever.  Clients therefore wait with a timeout and
/// bail out as soon as the pool can no longer serve them.
#[derive(Debug, Default)]
struct PoolState {
    /// First panic message recorded, restarted or not — the cause attached
    /// to [`ServeError::WorkerPanicked`].
    panic: Mutex<Option<String>>,
    /// Restarts consumed so far out of [`ServeConfig::panic_budget`].
    restarts_used: AtomicUsize,
    /// Budget exhausted: a worker has died and stays dead.
    poisoned: AtomicBool,
    alive_workers: AtomicUsize,
    closed: AtomicBool,
}

impl PoolState {
    fn record_panic(&self, message: String) {
        let mut slot = self
            .panic
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if slot.is_none() {
            *slot = Some(message);
        }
    }

    fn panic_cause(&self) -> Option<String> {
        self.panic
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Consumes one restart from the budget; `false` once exhausted (the
    /// caller must take the poison path).
    fn try_restart(&self, budget: usize) -> bool {
        // ordering-ok: AcqRel CAS serializes restart claims; the Acquire
        // failure load sees the final count
        self.restarts_used
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                (used < budget).then_some(used + 1)
            })
            .is_ok()
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release); // ordering-ok: Release publishes the verdict before is_poisoned()'s Acquire load
    }

    /// True once a worker has died for good (restart budget exhausted).
    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) // ordering-ok: pairs with poison()'s Release store
    }

    /// True once no worker can ever pop another request.
    fn dead(&self) -> bool {
        // ordering-ok: Acquire pairs with the Release writes in
        // close()/AliveGuard, so dead() implies no future pop
        self.closed.load(Ordering::Acquire) || self.alive_workers.load(Ordering::Acquire) == 0
    }
}

/// Decrements the live-worker count when a worker exits by any path —
/// including an unwind that somehow escapes the scoring guard.
struct AliveGuard<'a>(&'a PoolState);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.alive_workers.fetch_sub(1, Ordering::AcqRel); // ordering-ok: AcqRel orders the worker's final queue pop before dead() can observe zero
    }
}

/// How often a waiting client rechecks pool liveness.  Purely a bound on
/// how long a request stranded by a racing shutdown waits; replies that
/// arrive wake the client immediately.
const LIVENESS_POLL: Duration = Duration::from_millis(25);

/// Best-effort text of a panic payload (`panic!` with a string or format).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

struct Request {
    query: Query,
    mode: RequestMode,
    reply: Sender<Vec<(u32, f32)>>,
    /// When the client handed this request to the channel — the start of
    /// the queue-wait stage and of the end-to-end clock.
    enqueued_at: Instant,
    /// Present iff the sampler admitted this request at enqueue.
    trace: Option<Box<Trace>>,
}

/// A request plus the instant a worker popped it off the queue (the
/// queue-wait / coalesce stage boundary).
struct Popped {
    request: Request,
    popped_at: Instant,
}

enum Msg {
    Request(Request),
    /// Sent once per worker by [`TopKService::drop`]; a worker finishes the
    /// batch in hand and exits even while client handles are still alive.
    Shutdown,
}

/// Test-only fault injection: a predicate that makes the scorer panic on
/// matching queries, standing in for data-dependent scoring bugs the
/// supervisor must survive.  Always `None` in production (not reachable
/// from the public constructors' config).
type FaultHook = Arc<dyn Fn(&Query) -> bool + Send + Sync>;

/// A batched, cached top-k retrieval service over hot-swappable snapshots.
pub struct TopKService {
    tx: Option<Sender<Msg>>,
    store: Arc<SnapshotStore>,
    metrics: Arc<ServeMetrics>,
    cache: Arc<ShardedResultCache>,
    state: Arc<PoolState>,
    tracer: Arc<Tracer>,
    workers: Vec<JoinHandle<()>>,
    /// Segment bound for post-delta auto-compaction (see
    /// [`ServeConfig::max_item_segments`]).
    max_item_segments: usize,
    /// Serving precision (and overrides) re-applied to every published
    /// full snapshot, so a training loop handing over exact f32 factors
    /// keeps serving quantized.
    precision: Precision,
    precision_overrides: Vec<(usize, Precision)>,
}

/// Re-encodes `snapshot`'s catalog to the configured serving precision:
/// the store-wide default first (which future appends inherit), then any
/// per-segment overrides (hot head at f32, cold tails at i8).  Segments
/// already at their target are `Arc`-shared, so re-publishing an
/// already-encoded snapshot copies nothing.
fn encode_to_serving_precision(
    snapshot: FactorSnapshot,
    precision: Precision,
    overrides: &[(usize, Precision)],
) -> FactorSnapshot {
    if overrides.is_empty() && snapshot.items().precision() == precision {
        return snapshot;
    }
    let mut out = snapshot.reencoded(precision);
    if !overrides.is_empty() {
        out = out.reencoded_with(|i, seg| {
            overrides
                .iter()
                .find(|(j, _)| *j == i)
                .map_or_else(|| seg.precision(), |&(_, p)| p)
        });
    }
    out
}

impl TopKService {
    /// Starts `config.workers` scorer workers serving `initial` under
    /// `config`.
    pub fn start(initial: FactorSnapshot, config: ServeConfig) -> Self {
        Self::start_with_fault(initial, config, None)
    }

    fn start_with_fault(
        initial: FactorSnapshot,
        config: ServeConfig,
        fault: Option<FaultHook>,
    ) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        if let Some(policy) = &config.approx {
            policy.validate();
        }
        assert!(
            config.rerank_factor.is_finite() && config.rerank_factor >= 1.0,
            "rerank_factor must be finite and >= 1"
        );
        let n_workers = config.workers.max(1);
        let initial =
            encode_to_serving_precision(initial, config.precision, &config.precision_overrides);
        let store = Arc::new(SnapshotStore::new(initial));
        let metrics = Arc::new(ServeMetrics::new());
        let state = Arc::new(PoolState::default());
        state.alive_workers.store(n_workers, Ordering::Release); // ordering-ok: publishes the worker count before any AliveGuard can decrement it
        let budget = if config.cache_budget_bytes == 0 {
            usize::MAX
        } else {
            config.cache_budget_bytes
        };
        let cache = Arc::new(ShardedResultCache::new(
            n_workers,
            config.cache_capacity,
            budget,
        ));
        let (tx, rx) = bounded::<Msg>(config.queue_depth.max(1));
        let max_item_segments = config.max_item_segments;
        let precision = config.precision;
        let precision_overrides = config.precision_overrides.clone();
        let tracer = Arc::new(Tracer::new(config.trace_sample, config.trace_capacity));
        let workers = (0..n_workers)
            .map(|_| {
                let rx = rx.clone();
                let store = Arc::clone(&store);
                let metrics = Arc::clone(&metrics);
                let cache = Arc::clone(&cache);
                let state = Arc::clone(&state);
                let tracer = Arc::clone(&tracer);
                let config = config.clone();
                let fault = fault.clone();
                std::thread::spawn(move || {
                    let _alive = AliveGuard(&state);
                    Self::worker_loop(
                        &rx, &store, &metrics, &cache, &state, &tracer, &config, &fault,
                    )
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            store,
            metrics,
            cache,
            state,
            tracer,
            workers,
            max_item_segments,
            precision,
            precision_overrides,
        }
    }

    /// Starts with the default configuration.
    pub fn start_default(initial: FactorSnapshot) -> Self {
        Self::start(initial, ServeConfig::default())
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        rx: &Receiver<Msg>,
        store: &SnapshotStore,
        metrics: &ServeMetrics,
        cache: &ShardedResultCache,
        state: &PoolState,
        tracer: &Tracer,
        config: &ServeConfig,
        fault: &Option<FaultHook>,
    ) {
        // Stamps the queue-exit instant (the queue-wait / coalesce stage
        // boundary) and un-counts the request from the queue-depth gauge.
        let pop = |request: Request| {
            metrics.record_queue_exit();
            Popped {
                request,
                popped_at: Instant::now(),
            }
        };
        let mut shutdown = false;
        while !shutdown {
            // Block for the batch's first request.
            let first = match rx.recv() {
                Ok(Msg::Request(r)) => pop(r),
                Ok(Msg::Shutdown) | Err(_) => return,
            };
            let mut batch = vec![first];
            let deadline = Instant::now() + config.max_delay;
            while batch.len() < config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(Msg::Request(r)) => batch.push(pop(r)),
                    Ok(Msg::Shutdown) => {
                        shutdown = true;
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Serve what was coalesced, even on the way out.  A panic while
            // scoring must not vanish into the thread: record the message
            // *before* the batch (and its reply channels) drops, so waiters
            // waking to a closed channel can already see the cause.  The
            // panicked batch itself always fails — the supervisor policy
            // only decides whether the *worker* survives: within the
            // pool-wide panic budget it resumes the loop (a restart); once
            // the budget is spent it takes the original poison path and the
            // pool stays degraded.
            let scored = catch_unwind(AssertUnwindSafe(|| {
                Self::serve_batch(&mut batch, store, metrics, cache, tracer, config, fault)
            }));
            if let Err(payload) = scored {
                state.record_panic(panic_message(payload.as_ref()));
                metrics.record_worker_panic();
                drop(batch); // fail this batch's waiters before resuming
                if state.try_restart(config.panic_budget) {
                    metrics.record_worker_restart();
                    continue;
                }
                state.poison();
                return;
            }
        }
    }

    /// Stamps one finished request's stage timings, end-to-end latency, and
    /// (if sampled) its trace.  Adjacent stages share the phase instants
    /// `sealed ≤ scored ≤ merged ≤ replied`, so per request
    /// `queue_wait + coalesce + score + merge + reply = e2e` **exactly** —
    /// the identity the observability test pins.  Cache hits pass
    /// `sealed` for `scored`/`merged` (their score and merge stages are
    /// zero-width by construction).
    fn finish_request(
        popped: &mut Popped,
        metrics: &ServeMetrics,
        tracer: &Tracer,
        sealed: Instant,
        scored: Instant,
        merged: Instant,
        replied: Instant,
    ) {
        let enqueued = popped.request.enqueued_at;
        let popped_at = popped.popped_at;
        metrics.record_stage_ns(Stage::QueueWait, ns_between(enqueued, popped_at));
        metrics.record_stage_ns(Stage::Coalesce, ns_between(popped_at, sealed));
        metrics.record_stage_ns(Stage::Score, ns_between(sealed, scored));
        metrics.record_stage_ns(Stage::Merge, ns_between(scored, merged));
        metrics.record_stage_ns(Stage::Reply, ns_between(merged, replied));
        metrics.record_request_e2e_ns(ns_between(enqueued, replied));
        if let Some(mut trace) = popped.request.trace.take() {
            trace.event_between(Stage::QueueWait.name(), enqueued, popped_at);
            trace.event_between(Stage::Coalesce.name(), popped_at, sealed);
            trace.event_between(Stage::Score.name(), sealed, scored);
            trace.event_between(Stage::Merge.name(), scored, merged);
            trace.event_between(Stage::Reply.name(), merged, replied);
            tracer.finish(*trace);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_batch(
        batch: &mut [Popped],
        store: &SnapshotStore,
        metrics: &ServeMetrics,
        cache: &ShardedResultCache,
        tracer: &Tracer,
        config: &ServeConfig,
        fault: &Option<FaultHook>,
    ) {
        // The batch is sealed: coalescing ends here for every member.
        let sealed = Instant::now();
        if let Some(fault) = fault {
            if let Some(p) = batch.iter().find(|p| fault(&p.request.query)) {
                panic!("injected fault on user {}", p.request.query.user);
            }
        }
        // One snapshot per batch: the no-mixed-generations invariant.
        let snapshot = store.load();
        let generation = snapshot.generation();
        // Stamped into every cache key: a re-encoded snapshot keeps its
        // generation, so precision needs its own discriminator.
        let precision = snapshot.items().precision().code();

        // Keys are built once per request and carried through to the insert
        // after scoring — hashing a heavy user's exclusion list is not free.
        // Identical keys within the batch collapse onto one slot: the first
        // occurrence is the scored one, later ones just wait for its result
        // (in-flight dedupe; the duplicates count as cache hits).  The key
        // carries the request's effective retrieval policy, so an exact
        // request can never be answered by an approximate result — not from
        // the cache and not by riding along on a deduped slot.
        let policies: Vec<Option<ApproxPolicy>> = batch
            .iter()
            .map(|p| p.request.mode.effective(&config.approx))
            .collect();
        let mut pending: HashMap<CacheKey, usize> = HashMap::new();
        let mut slots: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, popped) in batch.iter_mut().enumerate() {
            let req = &popped.request;
            metrics.record_request();
            let key = match &policies[i] {
                None => CacheKey::new(req.query.user, req.query.k, &req.query.exclude),
                Some(p) => {
                    metrics.record_approx_requests(1);
                    CacheKey::new_approx(
                        req.query.user,
                        req.query.k,
                        &req.query.exclude,
                        p.epsilon,
                        p.max_blocks,
                    )
                }
            }
            .with_precision(precision);
            if let Some(hit) = cache.get(&key, generation) {
                metrics.record_cache_hit();
                // Counted (and stage-stamped) before the send: the client
                // may observe its reply — and a test may read the metrics —
                // immediately after.  The reply stage therefore measures up
                // to the hand-off, not the channel send itself.
                metrics.record_response();
                let replied = Instant::now();
                Self::finish_request(popped, metrics, tracer, sealed, sealed, sealed, replied);
                let _ = popped.request.reply.send(hit);
                continue;
            }
            match pending.entry(key) {
                Entry::Occupied(entry) => {
                    metrics.record_cache_hit();
                    slots[*entry.get()].1.push(i);
                }
                Entry::Vacant(entry) => {
                    metrics.record_cache_miss();
                    entry.insert(slots.len());
                    slots.push((i, Vec::new()));
                }
            }
        }

        if !slots.is_empty() {
            // Slots are scored policy group by policy group: exact and
            // approximate requests (or two different epsilons) coalesced
            // into the same popped batch still score as separate
            // micro-batches, each against an index carrying its own policy.
            // The group count is bounded by the distinct policies in one
            // batch — almost always 1 or 2.
            let mut groups: Vec<(Option<ApproxPolicy>, Vec<usize>)> = Vec::new();
            for (slot, &(first, _)) in slots.iter().enumerate() {
                let policy = policies[first];
                match groups.iter_mut().find(|(p, _)| *p == policy) {
                    Some((_, members)) => members.push(slot),
                    None => groups.push((policy, vec![slot])),
                }
            }
            let mut results: Vec<Vec<(u32, f32)>> = vec![Vec::new(); slots.len()];
            let mut prune = PruneStats::default();
            for (policy, members) in groups {
                let queries: Vec<Query> = members
                    .iter()
                    .map(|&slot| batch[slots[slot].0].request.query.clone())
                    .collect();
                let index = TopKIndex::with_rerank(
                    Arc::clone(&snapshot),
                    config.item_block,
                    config.score,
                    config.shards,
                    policy,
                    config.rerank_factor,
                );
                let (group_results, group_prune) = index.query_batch_stats(&queries);
                prune.merge(&group_prune);
                for (slot, result) in members.into_iter().zip(group_results) {
                    results[slot] = result;
                }
            }
            metrics.record_pruning(&prune);
            // The rerank ran inside the scoring pass (still in the Score
            // span); break its wall time out per batch when it actually ran.
            if prune.rerank_candidates > 0 {
                metrics.record_rerank_ns(prune.rerank_ns);
            }
            // Scoring ends, merging begins: fan each scored slot's result
            // out to its recipients (the scored request plus its in-flight
            // duplicates).
            let scored = Instant::now();
            let mut outgoing: Vec<(usize, Vec<(u32, f32)>)> = Vec::with_capacity(batch.len());
            for ((first, extras), result) in slots.iter().zip(&results) {
                outgoing.push((*first, result.clone()));
                for &i in extras {
                    outgoing.push((i, result.clone()));
                }
            }
            let merged = Instant::now();
            for (i, result) in outgoing {
                // Stamped before the send, like record_response: the reply
                // stage measures up to the hand-off.
                metrics.record_response();
                let replied = Instant::now();
                Self::finish_request(
                    &mut batch[i],
                    metrics,
                    tracer,
                    sealed,
                    scored,
                    merged,
                    replied,
                );
                let _ = batch[i].request.reply.send(result);
            }
            // One cache insert per unique key; `pending` still owns the
            // keys, so no key is cloned on the way in.  Deliberately after
            // the replies: insert time is not on any request's e2e clock.
            for (key, slot) in pending {
                cache.insert(key, generation, results[slot].clone());
            }
        }
        metrics.record_batch(batch.len(), sealed.elapsed());
    }

    /// A cloneable client handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self
                .tx
                .as_ref()
                // lint-ok: serve-unwrap tx is Some until Drop takes it; clients
                // cannot be minted from a dropped service
                .expect("service sender lives until drop")
                .clone(),
            state: Arc::clone(&self.state),
            metrics: Arc::clone(&self.metrics),
            tracer: Arc::clone(&self.tracer),
        }
    }

    /// Publishes new factors under load; returns the new generation.
    /// In-flight batches finish on the previous snapshot; cached results of
    /// older generations stop being served immediately (lazy eviction).
    /// The catalog is re-encoded to the serving precision
    /// ([`ServeConfig::precision`] plus overrides) on the way in, so a
    /// training loop can hand over exact f32 factors.
    pub fn publish(&self, snapshot: FactorSnapshot) -> u64 {
        let started = Instant::now();
        let snapshot =
            encode_to_serving_precision(snapshot, self.precision, &self.precision_overrides);
        let generation = self.store.publish(snapshot);
        self.metrics.record_swap();
        self.metrics.record_publish_latency(started.elapsed());
        generation
    }

    /// Publishes an incremental [`SnapshotDelta`] under load: the next
    /// snapshot shares every factor block the delta did not touch (a
    /// `u`-user fold-in copies `O(u·f)` bytes, not `O(m·f)`), and the
    /// result cache is invalidated **targetedly** — entries of changed or
    /// appended users are dropped, everyone else's cached top-k is
    /// re-stamped to the new generation and keeps serving.  A delta that
    /// appends catalog items skips the retention fast path (a new item can
    /// enter any user's top-k), falling back to lazy whole-cache
    /// invalidation through the generation check.
    pub fn publish_delta(&self, delta: &SnapshotDelta) -> Result<(u64, DeltaStats), DeltaError> {
        let started = Instant::now();
        let (generation, stats) = self.store.publish_delta(delta)?;
        self.metrics.record_swap();
        self.metrics.record_delta_publish();
        self.metrics.record_publish_latency(started.elapsed());
        if !delta.touches_items() {
            let mut changed: std::collections::HashSet<u32> =
                delta.changed_users().iter().copied().collect();
            // Appended users were previously out of range; their (empty)
            // results may be cached and are now wrong too.
            for i in 0..stats.appended_users {
                changed.insert((stats.user_base + i) as u32);
            }
            self.cache
                .invalidate_users(&changed, delta.base_generation(), generation);
        } else if self.max_item_segments > 0
            && self.store.load().items().segment_count() > self.max_item_segments
        {
            // Sustained item appends grew the segment list past the bound:
            // fold the tails back into one base.  Best-effort — a racing
            // publish simply wins and the next append retries.
            let _ = self.compact_items();
        }
        Ok((generation, stats))
    }

    /// Merges the published snapshot's item segments back into one base and
    /// republishes ([`SnapshotStore::compact_items`]).  Retrieval results
    /// are bit-identical, so the entire result cache is **retained**: every
    /// current-generation entry is re-stamped to the new generation instead
    /// of going stale.  Returns the new generation, or `None` when the
    /// catalog is already one segment or a concurrent publish won the race.
    pub fn compact_items(&self) -> Option<u64> {
        match self.store.compact_items() {
            Ok(Some((base_generation, generation))) => {
                self.metrics.record_swap();
                self.metrics.record_item_compaction();
                // Nothing changed observably: retain everyone's entries.
                self.cache.invalidate_users(
                    &std::collections::HashSet::new(),
                    base_generation,
                    generation,
                );
                Some(generation)
            }
            Ok(None) | Err(_) => None,
        }
    }

    /// The currently-published snapshot.
    pub fn snapshot(&self) -> Arc<FactorSnapshot> {
        self.store.load()
    }

    /// Point-in-time serving metrics (cumulative since startup).
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Cumulative metrics plus the window since the previous
    /// `window_report` call — what a periodic poller should use.
    pub fn window_report(&self) -> WindowedReport {
        self.metrics.window_report()
    }

    /// The live metrics registry shared with workers and clients, for
    /// pollers that outlive this handle's borrows.
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The request tracer (sampled stage-timing traces).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The retained sampled traces rendered as JSONL, oldest first.
    pub fn traces_jsonl(&self) -> String {
        self.tracer.to_jsonl()
    }

    /// The first recorded panic once a worker has died **for good** (its
    /// restart budget exhausted); `None` while the pool is healthy or
    /// recovering within budget.
    pub fn poisoned(&self) -> Option<String> {
        self.state.is_poisoned().then(|| {
            self.state
                .panic_cause()
                .unwrap_or_else(|| "worker died without a recorded panic".to_string())
        })
    }
}

impl Drop for TopKService {
    fn drop(&mut self) {
        // One explicit shutdown message per worker (rather than sender
        // disconnect) lets the pool drain even while client handles are
        // still alive; their next send fails with [`ServeError::Shutdown`].
        // The queue is FIFO, so every request enqueued before the drop is
        // still popped — and served — ahead of the shutdown markers.
        if let Some(tx) = self.tx.take() {
            for _ in 0..self.workers.len() {
                let _ = tx.send(Msg::Shutdown);
            }
        }
        for worker in self.workers.drain(..) {
            // A panic that somehow escaped the scoring guard still
            // surfaces here instead of being swallowed.
            if let Err(payload) = worker.join() {
                self.state.record_panic(panic_message(payload.as_ref()));
                self.state.poison();
                self.metrics.record_worker_panic();
            }
        }
        // From here on no request can ever be popped; clients stranded
        // behind the shutdown markers stop waiting at their next liveness
        // poll.
        self.state.closed.store(true, Ordering::Release); // ordering-ok: Release pairs with dead()'s Acquire; after this no pop can be ordered later
    }
}

/// Client handle: blocking request/response against the worker pool.
#[derive(Clone)]
pub struct ServeClient {
    tx: Sender<Msg>,
    state: Arc<PoolState>,
    metrics: Arc<ServeMetrics>,
    tracer: Arc<Tracer>,
}

impl ServeClient {
    /// Requests the top-`k` items for `user`, excluding `exclude`, under
    /// the service-wide retrieval policy ([`ServeConfig::approx`]).
    /// Blocks until a worker replies (one micro-batch of latency).
    pub fn recommend(
        &self,
        user: u32,
        k: usize,
        exclude: &[u32],
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        self.recommend_with_mode(user, k, exclude, RequestMode::Inherit)
    }

    /// [`ServeClient::recommend`] forced exact, regardless of the service's
    /// default policy — the escape hatch for traffic that must not trade
    /// recall for latency.
    pub fn recommend_exact(
        &self,
        user: u32,
        k: usize,
        exclude: &[u32],
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        self.recommend_with_mode(user, k, exclude, RequestMode::Exact)
    }

    /// [`ServeClient::recommend`] under an explicit per-request
    /// [`ApproxPolicy`], overriding the service default.
    pub fn recommend_approx(
        &self,
        user: u32,
        k: usize,
        exclude: &[u32],
        policy: ApproxPolicy,
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        policy.validate();
        self.recommend_with_mode(user, k, exclude, RequestMode::Approx(policy))
    }

    fn recommend_with_mode(
        &self,
        user: u32,
        k: usize,
        exclude: &[u32],
        mode: RequestMode,
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        let (reply_tx, reply_rx) = bounded(1);
        let trace = self.tracer.begin();
        // A sampled request's enqueue instant IS its trace origin, so the
        // trace's stage events tile [0, total_ns] with no gap before the
        // queue-wait stage.
        let enqueued_at = trace.as_ref().map_or_else(Instant::now, |t| t.origin());
        let request = Msg::Request(Request {
            query: Query {
                user,
                k,
                exclude: exclude.to_vec(),
            },
            mode,
            reply: reply_tx,
            enqueued_at,
            trace,
        });
        // Depth is counted *before* the send: the channel's happens-before
        // guarantees the worker's matching exit never observes a depth its
        // own message hasn't raised, so the gauge cannot underflow.
        self.metrics.record_queue_enter();
        if self.tx.send(request).is_err() {
            self.metrics.record_queue_exit();
            return Err(self.death_cause());
        }
        loop {
            match reply_rx.recv_timeout(LIVENESS_POLL) {
                Ok(result) => return Ok(result),
                Err(RecvTimeoutError::Disconnected) => return Err(self.death_cause()),
                Err(RecvTimeoutError::Timeout) => {
                    if self.state.dead() {
                        // The request may sit unreachable behind the
                        // shutdown markers — but a worker may also have
                        // replied in the instant before the pool died, so
                        // give the reply channel one last look.
                        return match reply_rx.try_recv() {
                            Ok(result) => Ok(result),
                            Err(TryRecvError::Empty) => {
                                // No reply and the reply sender still lives:
                                // the request sits in the queue, unpopped.
                                // `dead()` is permanent (workers only leave
                                // it, never rejoin), so the worker-side
                                // `record_queue_exit` will never run for
                                // this message — un-count it here or the
                                // gauge leaks one slot per stranded request
                                // for the rest of the process.
                                self.metrics.record_queue_exit();
                                Err(self.death_cause())
                            }
                            // Disconnected: a worker popped the request
                            // (recording the exit) and dropped the reply
                            // with its panicked batch — nothing to undo.
                            Err(TryRecvError::Disconnected) => Err(self.death_cause()),
                        };
                    }
                }
            }
        }
    }

    /// Distinguishes a clean shutdown from a panic: a request whose batch
    /// died to a caught panic (reply channel dropped while the pool lives
    /// on — the restart path) and a pool whose workers died for good both
    /// carry the recorded panic message; only a panic-free pool reports
    /// [`ServeError::Shutdown`].
    fn death_cause(&self) -> ServeError {
        match self.state.panic_cause() {
            Some(message) => ServeError::WorkerPanicked(message),
            None => ServeError::Shutdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::FactorMatrix;

    fn snapshot(seed: u64) -> FactorSnapshot {
        FactorSnapshot::from_factors(
            FactorMatrix::random(40, 8, 1.0, seed),
            FactorMatrix::random(200, 8, 1.0, seed + 1),
        )
    }

    fn config() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(4),
            ..Default::default()
        }
    }

    #[test]
    fn replies_match_the_single_request_path() {
        let service = TopKService::start(snapshot(1), config());
        let reference = service.snapshot();
        let client = service.client();
        for user in 0..40u32 {
            let got = client.recommend(user, 7, &[user % 5]).unwrap();
            assert_eq!(got, reference.recommend_one(user, 7, &[user % 5]));
        }
    }

    #[test]
    fn concurrent_clients_coalesce_into_batches() {
        let service = TopKService::start(snapshot(2), config());
        std::thread::scope(|s| {
            for t in 0..8 {
                let client = service.client();
                s.spawn(move || {
                    for i in 0..25u32 {
                        let user = (t * 25 + i) % 40;
                        let r = client.recommend(user, 5, &[]).unwrap();
                        assert_eq!(r.len(), 5);
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.requests, 200);
        assert_eq!(m.responses, 200);
        assert!(
            m.batches < m.requests,
            "expected coalescing: {} batches for {} requests",
            m.batches,
            m.requests
        );
        assert!(m.mean_batch_size > 1.0);
    }

    #[test]
    fn pool_answers_from_every_worker() {
        let service = TopKService::start(
            snapshot(7),
            ServeConfig {
                workers: 4,
                shards: 3,
                ..config()
            },
        );
        let reference = service.snapshot();
        std::thread::scope(|s| {
            for t in 0..4 {
                let client = service.client();
                let reference = &reference;
                s.spawn(move || {
                    for i in 0..50u32 {
                        let user = (t * 50 + i) % 40;
                        let got = client.recommend(user, 6, &[user % 3]).unwrap();
                        assert_eq!(got, reference.recommend_one(user, 6, &[user % 3]));
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.requests, 200);
        assert_eq!(m.responses, 200);
        assert_eq!(m.worker_panics, 0);
        assert_eq!(service.poisoned(), None);
    }

    #[test]
    fn identical_requests_hit_the_cache() {
        let service = TopKService::start(snapshot(3), config());
        let client = service.client();
        let a = client.recommend(7, 5, &[1, 2]).unwrap();
        let b = client.recommend(7, 5, &[1, 2]).unwrap();
        assert_eq!(a, b);
        let m = service.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
    }

    #[test]
    fn duplicate_requests_in_one_batch_are_scored_once() {
        // Cache disabled: any recorded hit can only come from in-flight
        // dedupe.  Two identical requests coalesce (max_batch 2, generous
        // deadline), are scored once, and both waiters get the reply.
        let service = TopKService::start(
            snapshot(4),
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(2),
                cache_capacity: 0,
                ..Default::default()
            },
        );
        let reference = service.snapshot().recommend_one(9, 4, &[2]);
        let (a, b) = std::thread::scope(|s| {
            let ca = service.client();
            let cb = service.client();
            let ha = s.spawn(move || ca.recommend(9, 4, &[2]).unwrap());
            let hb = s.spawn(move || cb.recommend(9, 4, &[2]).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(a, reference);
        assert_eq!(b, reference);
        let m = service.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.responses, 2);
        assert_eq!(
            (m.cache_misses, m.cache_hits),
            (1, 1),
            "one scored, one deduped"
        );
    }

    #[test]
    fn near_duplicates_are_not_deduped() {
        // Same user, different exclusions: must be scored independently.
        let service = TopKService::start(
            snapshot(5),
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(2),
                cache_capacity: 0,
                ..Default::default()
            },
        );
        let (a, b) = std::thread::scope(|s| {
            let ca = service.client();
            let cb = service.client();
            let ha = s.spawn(move || ca.recommend(9, 4, &[0]).unwrap());
            let hb = s.spawn(move || cb.recommend(9, 4, &[1]).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(a.iter().all(|(v, _)| *v != 0));
        assert!(b.iter().all(|(v, _)| *v != 1));
        let m = service.metrics();
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn publish_invalidates_cached_results() {
        let service = TopKService::start(snapshot(4), config());
        let client = service.client();
        let old = client.recommend(3, 5, &[]).unwrap();
        service.publish(snapshot(99));
        let new = client.recommend(3, 5, &[]).unwrap();
        let expect = service.snapshot().recommend_one(3, 5, &[]);
        assert_eq!(new, expect);
        assert_ne!(old, new, "stale cached result served after publish");
        assert_eq!(service.metrics().snapshot_swaps, 1);
    }

    #[test]
    fn single_request_is_flushed_by_the_deadline() {
        let service = TopKService::start(
            snapshot(5),
            ServeConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(5),
                ..Default::default()
            },
        );
        let client = service.client();
        let start = Instant::now();
        let r = client.recommend(0, 3, &[]).unwrap();
        assert_eq!(r.len(), 3);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline flush took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn clients_error_cleanly_after_shutdown() {
        let service = TopKService::start(snapshot(6), config());
        let client = service.client();
        drop(service);
        assert_eq!(client.recommend(0, 3, &[]), Err(ServeError::Shutdown));
    }

    #[test]
    fn stranded_requests_do_not_leak_the_queue_gauge() {
        // A request enqueued after shutdown sits behind the markers forever:
        // no worker records its queue exit, so the bailing client must —
        // otherwise every stranded request inflates the depth gauge for the
        // life of the process (and drags the high-water mark with it).
        let service = TopKService::start(snapshot(6), config());
        let client = service.client();
        let metrics = service.metrics_handle();
        drop(service);
        for _ in 0..3 {
            assert_eq!(client.recommend(0, 3, &[]), Err(ServeError::Shutdown));
        }
        assert_eq!(
            metrics.queue_depth(),
            0,
            "stranded requests leaked the queue-depth gauge"
        );
    }

    #[test]
    fn worker_panic_is_surfaced_with_its_message() {
        // item_block = 0 is a config error that only explodes inside the
        // scorer — it stands in for any scoring-time panic.  With a zero
        // panic budget (the pre-supervisor policy) the request that
        // triggered it and every later request must fail with the panic's
        // message, not a silent Shutdown.
        let service = TopKService::start(
            snapshot(8),
            ServeConfig {
                item_block: 0,
                max_delay: Duration::from_millis(1),
                panic_budget: 0,
                ..Default::default()
            },
        );
        let client = service.client();
        let err = client.recommend(0, 3, &[]).unwrap_err();
        match &err {
            ServeError::WorkerPanicked(msg) => {
                assert!(msg.contains("item block"), "unexpected message: {msg}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The poison is sticky: later requests see the same cause.
        assert_eq!(client.recommend(1, 3, &[]), Err(err.clone()));
        assert!(service.poisoned().is_some());
        let m = service.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.worker_restarts, 0);
        // The error formats with its cause attached.
        assert!(err.to_string().contains("item block"));
    }

    /// A data-dependent scoring panic within the budget costs only the
    /// panicked batch: the worker restarts, later requests are served at
    /// full capacity, and the pool is not poisoned.
    #[test]
    fn worker_restarts_within_the_panic_budget() {
        let fault: super::FaultHook = Arc::new(|q: &Query| q.user == 13);
        let service = TopKService::start_with_fault(
            snapshot(9),
            ServeConfig {
                workers: 1,
                panic_budget: 2,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
            Some(fault),
        );
        let reference = service.snapshot();
        let client = service.client();

        // Poisoned batch fails with the cause...
        match client.recommend(13, 3, &[]) {
            Err(ServeError::WorkerPanicked(msg)) => {
                assert!(msg.contains("injected fault"), "{msg}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // ...but the worker came back: healthy requests serve correctly.
        assert_eq!(
            client.recommend(1, 3, &[]).unwrap(),
            reference.recommend_one(1, 3, &[])
        );
        assert_eq!(service.poisoned(), None, "restart must not poison");
        let m = service.metrics();
        assert_eq!((m.worker_panics, m.worker_restarts), (1, 1));

        // Second panic: budget still covers it.
        assert!(client.recommend(13, 3, &[]).is_err());
        assert_eq!(
            client.recommend(2, 3, &[]).unwrap(),
            reference.recommend_one(2, 3, &[])
        );
        assert_eq!(service.poisoned(), None);

        // Third panic exhausts the budget: the existing poison path.
        assert!(client.recommend(13, 3, &[]).is_err());
        assert!(service.poisoned().is_some(), "budget exhausted ⇒ poisoned");
        assert!(matches!(
            client.recommend(3, 3, &[]),
            Err(ServeError::WorkerPanicked(_))
        ));
        let m = service.metrics();
        assert_eq!((m.worker_panics, m.worker_restarts), (3, 2));
    }

    #[test]
    fn approx_and_exact_requests_do_not_share_cache_entries() {
        // Exact first, approximate second, for the same (user, k, exclude):
        // the cached exact result must not answer the approximate request —
        // both must be scored (two misses, zero hits).
        let service = TopKService::start(snapshot(11), config());
        let client = service.client();
        let exact = client.recommend_exact(5, 6, &[1]).unwrap();
        let coarse = ApproxPolicy {
            epsilon: 0.6,
            max_blocks: 0,
            target_recall: 0.0,
        };
        let approx = client.recommend_approx(5, 6, &[1], coarse).unwrap();
        assert_eq!(exact.len(), 6);
        assert_eq!(approx.len(), 6, "approximate list must not shrink");
        let m = service.metrics();
        assert_eq!((m.cache_misses, m.cache_hits), (2, 0));
        assert_eq!(m.approx_requests, 1);
        // Repeats of each mode now hit their own entries.
        assert_eq!(client.recommend_exact(5, 6, &[1]).unwrap(), exact);
        assert_eq!(client.recommend_approx(5, 6, &[1], coarse).unwrap(), approx);
        let m = service.metrics();
        assert_eq!((m.cache_misses, m.cache_hits), (2, 2));
    }

    #[test]
    fn mixed_batch_scores_exact_and_approx_in_separate_micro_batches() {
        // Two identical (user, k, exclude) requests — one exact, one under a
        // coarse policy — coalesce into one popped batch (max_batch 2, long
        // deadline).  They must NOT dedupe onto one slot: the exact reply
        // must equal the exact reference even though an approximate request
        // rode in the same batch.
        let service = TopKService::start(
            snapshot(12),
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(2),
                cache_capacity: 0,
                ..Default::default()
            },
        );
        let reference = service.snapshot().recommend_one(9, 5, &[2]);
        let coarse = ApproxPolicy {
            epsilon: 0.9,
            max_blocks: 1,
            target_recall: 0.0,
        };
        let (exact, approx) = std::thread::scope(|s| {
            let ca = service.client();
            let cb = service.client();
            let ha = s.spawn(move || ca.recommend_exact(9, 5, &[2]).unwrap());
            let hb = s.spawn(move || cb.recommend_approx(9, 5, &[2], coarse).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(exact, reference, "exact result contaminated by approx");
        assert_eq!(approx.len(), 5);
        let m = service.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(
            (m.cache_misses, m.cache_hits),
            (2, 0),
            "different policies must not dedupe onto one slot"
        );
        assert_eq!(m.approx_requests, 1);
    }

    #[test]
    fn service_wide_policy_applies_to_inherit_and_is_overridable() {
        // A service defaulting to a coarse policy: plain recommend() scans
        // approximately (terminated blocks show up in the metrics), while
        // recommend_exact() still matches the exact single-request path.
        let service = TopKService::start(
            snapshot(13),
            ServeConfig {
                approx: Some(ApproxPolicy {
                    epsilon: 0.8,
                    max_blocks: 0,
                    target_recall: 0.0,
                }),
                cache_capacity: 0,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        let client = service.client();
        let exact = client.recommend_exact(3, 5, &[]).unwrap();
        assert_eq!(exact, service.snapshot().recommend_one(3, 5, &[]));
        let inherited = client.recommend(3, 5, &[]).unwrap();
        assert_eq!(inherited.len(), 5);
        let m = service.metrics();
        assert_eq!(m.approx_requests, 1, "only the inherit request is approx");
    }

    #[test]
    fn epsilon_zero_policy_normalizes_to_exact_and_shares_the_cache() {
        // ApproxPolicy::exact() cannot change results, so it must coalesce
        // with exact traffic: the second request is a cache hit, not a
        // second scoring pass.
        let service = TopKService::start(snapshot(14), config());
        let client = service.client();
        let a = client.recommend_exact(4, 5, &[]).unwrap();
        let b = client
            .recommend_approx(4, 5, &[], ApproxPolicy::exact())
            .unwrap();
        assert_eq!(a, b);
        let m = service.metrics();
        assert_eq!((m.cache_misses, m.cache_hits), (1, 1));
        assert_eq!(m.approx_requests, 0, "exact-equivalent policy is exact");
    }

    #[test]
    fn quantized_service_matches_exact_replies_and_records_rerank() {
        // F16 storage + exact rerank reproduces the exact service's lists
        // bit-for-bit on this catalog (the scorer's own tests pin the same
        // property per shard count), while the quantized-path metrics —
        // rerank histogram, bytes scanned, candidates rescored — all flow.
        let service = TopKService::start(
            snapshot(21),
            ServeConfig {
                precision: Precision::F16,
                cache_capacity: 0,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        assert_eq!(service.snapshot().items().precision(), Precision::F16);
        let reference = snapshot(21); // same factors, exact f32
        let client = service.client();
        for user in 0..20u32 {
            let got = client.recommend(user, 6, &[user % 7]).unwrap();
            assert_eq!(got, reference.recommend_one(user, 6, &[user % 7]));
        }
        let m = service.metrics();
        assert!(m.rerank.count() > 0, "rerank histogram must be recorded");
        assert!(m.rerank_candidates > 0);
        assert!(m.bytes_scanned > 0);
    }

    #[test]
    fn exact_service_records_no_rerank() {
        let service = TopKService::start(snapshot(22), config());
        let client = service.client();
        let _ = client.recommend(1, 5, &[]).unwrap();
        let m = service.metrics();
        assert_eq!(m.rerank.count(), 0);
        assert_eq!(m.rerank_candidates, 0);
        assert!(m.bytes_scanned > 0, "exact scans still count bytes");
    }

    #[test]
    fn publish_reencodes_full_snapshots_to_the_serving_precision() {
        // A training loop hands over plain f32 factors; the service must
        // keep serving at its configured precision across the swap.
        let service = TopKService::start(
            snapshot(23),
            ServeConfig {
                precision: Precision::I8,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        service.publish(snapshot(24));
        let swapped = service.snapshot();
        assert_eq!(swapped.items().precision(), Precision::I8);
        assert!(
            swapped.items().segments()[0].encoded().is_some(),
            "published catalog must carry a compressed slab"
        );
        let client = service.client();
        assert_eq!(client.recommend(3, 5, &[]).unwrap().len(), 5);
    }

    #[test]
    fn per_segment_overrides_keep_the_hot_head_exact() {
        // Store default I8, head segment pinned to F32: the mixed catalog
        // serves, and an item-appending delta's tail encodes at the store
        // default (cold tails quantize, the hot head stays exact).
        let service = TopKService::start(
            snapshot(25),
            ServeConfig {
                precision: Precision::I8,
                precision_overrides: vec![(0, Precision::F32)],
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        let items = service.snapshot();
        assert_eq!(items.items().precision(), Precision::I8);
        assert_eq!(items.items().segments()[0].precision(), Precision::F32);
        let mut delta = items.delta();
        delta.append_items(&FactorMatrix::random(30, 8, 1.0, 77));
        service.publish_delta(&delta).unwrap();
        let after = service.snapshot();
        assert_eq!(after.items().segments()[0].precision(), Precision::F32);
        assert_eq!(
            after.items().segments().last().unwrap().precision(),
            Precision::I8,
            "appended tail must encode at the store default"
        );
        let client = service.client();
        assert_eq!(client.recommend(2, 8, &[]).unwrap().len(), 8);
    }

    /// The panic budget is pool-wide: restarts on different workers draw
    /// from the same budget, and a healthy pool keeps serving meanwhile.
    #[test]
    fn restart_budget_is_shared_across_the_pool() {
        let fault: super::FaultHook = Arc::new(|q: &Query| q.user >= 1000);
        let service = TopKService::start_with_fault(
            snapshot(10),
            ServeConfig {
                workers: 3,
                panic_budget: 4,
                max_delay: Duration::from_millis(1),
                cache_capacity: 0,
                ..Default::default()
            },
            Some(fault),
        );
        let client = service.client();
        for round in 0..4u32 {
            let _ = client.recommend(1000 + round, 3, &[]);
            assert_eq!(client.recommend(round % 40, 3, &[]).unwrap().len(), 3);
        }
        assert_eq!(service.poisoned(), None);
        assert_eq!(service.metrics().worker_restarts, 4);
    }
}

/// Model-checked regression for the PR 3 shutdown-vs-enqueue race.
///
/// The race: a request enqueued concurrently with the drop path's shutdown
/// markers can land *behind* the marker in the MPMC queue; the worker exits
/// at the marker, so the request is never popped and — before PR 3 — its
/// client waited on the reply channel forever.  The fix gave clients the
/// [`PoolState`] liveness signal ([`PoolState::dead`]): once the pool can
/// no longer serve, the timeout loop bails.
///
/// The model abstracts the crossbeam channel as a loom-`Mutex`ed FIFO (the
/// channel itself is uninstrumented and FIFO is its only property used
/// here) but runs the **real** [`PoolState`]/[`AliveGuard`] liveness
/// machinery.  One thread races the client's enqueue; the other plays the
/// drop path: marker enqueue, worker drain-until-marker, worker exit,
/// closed flag.  At quiescence the client is exactly in the state the wait
/// loop would be stuck in, so the pinned invariant is:
/// `reply_received || dead()` — no interleaving may leave a client with
/// no reply *and* no liveness signal.
#[cfg(all(test, cumf_model_check))]
mod model_tests {
    use super::PoolState;
    use crate::sync::atomic::{AtomicBool, Ordering};
    use crate::sync::{Arc, Mutex};
    use loom::thread;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Item {
        Request,
        ShutdownMarker,
    }

    /// Runs the scenario; `liveness_signal` gates whether the client gets
    /// to consult [`PoolState::dead`] (true = PR 3 behaviour, false = the
    /// pre-fix client that only ever waits for a reply).
    fn run_shutdown_scenario(liveness_signal: bool) -> loom::Stats {
        loom::Builder::new().preemption_bound(3).check(move || {
            let state = Arc::new(PoolState::default());
            state.alive_workers.store(1, Ordering::Release);
            let queue: Arc<Mutex<Vec<Item>>> = Arc::new(Mutex::new(Vec::new()));
            let reply_received = Arc::new(AtomicBool::new(false));

            let (q2, s2, r2) = (
                Arc::clone(&queue),
                Arc::clone(&state),
                Arc::clone(&reply_received),
            );
            // Drop path + worker: marker in, drain to the marker (serving
            // anything queued ahead of it), worker exit, closed flag.
            let shutdown = thread::spawn(move || {
                q2.lock().expect("model queue").push(Item::ShutdownMarker);
                let drained = std::mem::take(&mut *q2.lock().expect("model queue"));
                for item in drained {
                    match item {
                        Item::Request => r2.store(true, Ordering::Release),
                        Item::ShutdownMarker => break,
                    }
                }
                s2.alive_workers.fetch_sub(1, Ordering::AcqRel); // AliveGuard drop
                s2.closed.store(true, Ordering::Release);
            });

            // Client: enqueue races the marker; then observe the terminal
            // state of the wait loop.
            queue.lock().expect("model queue").push(Item::Request);
            // Two bounded wait-loop polls (the real client's timeout ticks)
            // racing the drop path's flag writes — mid-shutdown reads of
            // `dead()` are part of the explored window, not just its final
            // value at quiescence.
            for _ in 0..2 {
                if reply_received.load(Ordering::Acquire) || (liveness_signal && state.dead()) {
                    break;
                }
            }
            shutdown.join().expect("model thread");
            let got_reply = reply_received.load(Ordering::Acquire);
            let can_bail = liveness_signal && state.dead();
            assert!(
                got_reply || can_bail,
                "client stranded: no reply and no liveness signal"
            );
        })
    }

    #[test]
    fn shutdown_race_clients_always_get_reply_or_liveness_signal() {
        let stats = run_shutdown_scenario(true);
        assert!(
            stats.interleavings >= 100,
            "scenario explored only {} interleavings",
            stats.interleavings
        );
        assert!(!stats.nondeterminism);
    }

    /// Mutation direction: strip the liveness signal (the pre-PR 3 client)
    /// and the checker must find a stranding interleaving — proving the
    /// scenario actually exercises the race rather than vacuously passing.
    #[test]
    fn checker_finds_stranded_client_without_liveness_signal() {
        let result = std::panic::catch_unwind(|| run_shutdown_scenario(false));
        let payload = result.expect_err("pre-PR 3 client must strand in some interleaving");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("failure carries a message");
        assert!(
            message.contains("client stranded"),
            "unexpected failure: {message}"
        );
    }
}

//! Statistical guarantees of approximate retrieval.
//!
//! The contract under test: at the **default** [`ApproxPolicy`], measured
//! recall@k stays at or above the policy's `target_recall` on both a
//! skewed-norm catalog (where early termination fires hard) and a uniform
//! one (where it barely fires and recall should be near-perfect) — and a
//! live [`TopKService`] mixing exact and approximate traffic never lets one
//! mode's results leak into the other's.  Degenerate inputs — a zero-norm
//! user, `k` at or past the catalog size — must come back complete and
//! exact even under an aggressive policy.

use cumf_linalg::FactorMatrix;
use cumf_serve::{
    measure_recall, ApproxPolicy, FactorSnapshot, ItemLayout, Query, ScoreKind, ServeConfig,
    TopKIndex, TopKService,
};
use std::sync::Arc;
use std::time::Duration;

/// Item factors whose norms follow a skewed multiplicative profile: a few
/// heavy hitters, a long cheap tail — the regime norm-descending layout and
/// early termination are built for.
fn skewed_theta(n: usize, f: usize, seed: u64) -> FactorMatrix {
    let mut theta = FactorMatrix::random(n, f, 1.0, seed);
    for v in 0..n {
        let h = (v as u32).wrapping_mul(2654435761) % 64;
        let scale = if h == 0 { 4.0 } else { 0.01 + 0.001 * h as f32 };
        for x in theta.vector_mut(v) {
            *x *= scale;
        }
    }
    theta
}

fn snapshot(x: FactorMatrix, theta: FactorMatrix) -> Arc<FactorSnapshot> {
    Arc::new(FactorSnapshot::from_factors_with_layout(
        x,
        theta,
        ItemLayout::NormDescending,
    ))
}

fn service_config(approx: Option<ApproxPolicy>) -> ServeConfig {
    ServeConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        workers: 2,
        shards: 2,
        approx,
        ..ServeConfig::default()
    }
}

/// The headline statistical guarantee: at the default policy, mean
/// recall@k ≥ `target_recall` on a skewed catalog *while scanning
/// measurably fewer blocks*, and ≥ the same floor on a uniform catalog.
#[test]
fn default_policy_meets_target_recall_on_skewed_and_uniform_catalogs() {
    let policy = ApproxPolicy::default();
    let queries: Vec<Query> = (0..64u32).map(|u| Query::new(u, 10)).collect();

    // Skewed: termination fires — require the saving AND the recall floor.
    let skewed = snapshot(
        FactorMatrix::random(64, 8, 1.0, 900),
        skewed_theta(8192, 8, 901),
    );
    let report = measure_recall(&skewed, &queries, 512, ScoreKind::Dot, 2, &policy);
    assert!(
        report.mean_recall >= policy.target_recall,
        "skewed catalog recall below target: {report}"
    );
    assert!(
        report.approx_stats.blocks_scored < report.exact_stats.blocks_scored,
        "approximation saved nothing on the skewed catalog: {report}"
    );
    assert!(
        report.approx_stats.blocks_terminated > 0,
        "no early termination on the skewed catalog: {report}"
    );

    // Uniform: little to terminate, so recall must stay at least as high.
    let uniform = snapshot(
        FactorMatrix::random(64, 8, 1.0, 902),
        FactorMatrix::random(8192, 8, 1.0, 903),
    );
    let report = measure_recall(&uniform, &queries, 512, ScoreKind::Dot, 2, &policy);
    assert!(
        report.mean_recall >= policy.target_recall,
        "uniform catalog recall below target: {report}"
    );
}

/// Recall holds across shard counts — sharding re-partitions the scan but
/// must not change what the policy is allowed to skip.
#[test]
fn default_policy_recall_holds_for_every_shard_count() {
    let policy = ApproxPolicy::default();
    let snap = snapshot(
        FactorMatrix::random(32, 8, 1.0, 910),
        skewed_theta(4096, 8, 911),
    );
    let queries: Vec<Query> = (0..32u32).map(|u| Query::new(u, 10)).collect();
    for shards in [1usize, 3, 8] {
        let report = measure_recall(&snap, &queries, 512, ScoreKind::Dot, shards, &policy);
        assert!(
            report.mean_recall >= policy.target_recall,
            "shards {shards}: {report}"
        );
    }
}

/// A live service under a service-wide approximate policy: exact-mode
/// requests return ground truth bit-for-bit, inherit-mode requests are
/// full-length and within the recall floor, and an `epsilon = 0` override
/// equals exact — even though all three interleave on the same workers,
/// queue, and cache.
#[test]
fn live_service_exact_and_approx_traffic_do_not_cross_contaminate() {
    // Aggressive epsilon so approximate answers actually diverge; if exact
    // traffic ever rode in an approximate micro-batch or cache slot, the
    // ground-truth comparison below would catch it.
    let policy = ApproxPolicy {
        epsilon: 0.5,
        ..ApproxPolicy::default()
    };
    let x = FactorMatrix::random(48, 8, 1.0, 920);
    let theta = skewed_theta(4096, 8, 921);
    let snap = snapshot(x.clone(), theta.clone());
    let truth = TopKIndex::new(Arc::clone(&snap), 512, ScoreKind::Dot);

    let service = TopKService::start(
        FactorSnapshot::from_factors_with_layout(x, theta, ItemLayout::NormDescending),
        service_config(Some(policy)),
    );
    let client = service.client();

    for u in 0..48u32 {
        let expect = truth.query_batch(&[Query::new(u, 10)]).remove(0);
        let exact = client.recommend_exact(u, 10, &[]).unwrap();
        assert_eq!(exact, expect, "exact request contaminated for user {u}");
        let eps0 = client
            .recommend_approx(u, 10, &[], ApproxPolicy::exact())
            .unwrap();
        assert_eq!(eps0, expect, "epsilon-0 override diverged for user {u}");
        let approx = client.recommend(u, 10, &[]).unwrap();
        assert_eq!(approx.len(), 10, "approximate list came back short");
    }
    let m = service.metrics();
    assert_eq!(
        m.approx_requests, 48,
        "only the inherit-mode requests are approximate"
    );
    // The approximate path really ran: scans terminated early, yet every
    // exact-mode answer above still matched ground truth bit-for-bit.
    assert!(
        m.blocks_terminated > 0,
        "epsilon 0.5 never terminated a scan — approximate path idle: {m:?}"
    );
}

/// Degenerate inputs stay exact under an aggressive policy: a zero-norm
/// user (bound pins at 0, termination can never fire) and `k ≥ catalog`
/// (heaps never fill, so neither termination nor the block budget may
/// shorten the scan).
#[test]
fn zero_norm_user_and_oversized_k_return_full_exact_results() {
    let n = 700;
    let mut x = FactorMatrix::random(8, 8, 1.0, 930);
    for v in x.vector_mut(0) {
        *v = 0.0;
    }
    let theta = skewed_theta(n, 8, 931);
    let snap = snapshot(x.clone(), theta.clone());
    let truth = TopKIndex::new(Arc::clone(&snap), 64, ScoreKind::Dot);

    let aggressive = ApproxPolicy {
        epsilon: 0.9,
        max_blocks: 1,
        ..ApproxPolicy::default()
    };
    let service = TopKService::start(
        FactorSnapshot::from_factors_with_layout(x, theta, ItemLayout::NormDescending),
        service_config(Some(aggressive)),
    );
    let client = service.client();

    // Zero-norm user: every score is 0, the threshold pins at 0, and the
    // strict `bound < threshold` comparison never fires — full exact scan.
    let expect = truth.query_batch(&[Query::new(0, 10)]).remove(0);
    let got = client.recommend(0, 10, &[]).unwrap();
    assert_eq!(got, expect, "zero-norm user must get exact results");
    assert_eq!(got.len(), 10);
    assert!(got.iter().all(|&(_, s)| s == 0.0));

    // k ≥ catalog: the heap never fills, so the whole catalog comes back
    // in exact order despite epsilon 0.9 and a 1-block budget.
    let expect = truth.query_batch(&[Query::new(1, n + 50)]).remove(0);
    let got = client.recommend(1, n + 50, &[]).unwrap();
    assert_eq!(got.len(), n);
    assert_eq!(
        got, expect,
        "oversized k must return the full exact catalog"
    );
}

//! End-to-end engine benchmarks: one full ALS iteration of the reference
//! engine, MO-ALS (with and without memory optimizations — the wall-clock
//! companion of Figures 7/8) and SU-ALS on 1–4 simulated GPUs (the
//! wall-clock companion of Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cumf_core::als::su::{SuAlsConfig, SuAlsEngine};
use cumf_core::als::{BaseAls, MoAlsEngine};
use cumf_core::config::{AlsConfig, MemoryOptConfig};
use cumf_core::reduce::ReductionScheme;
use cumf_data::synth::SyntheticConfig;
use cumf_gpu_sim::GpuCluster;
use cumf_sparse::Csr;
use std::hint::black_box;

fn ratings() -> Csr {
    SyntheticConfig {
        m: 3_000,
        n: 800,
        nnz: 120_000,
        rank: 8,
        seed: 5,
        ..Default::default()
    }
    .generate()
    .to_csr()
}

fn config(opts: MemoryOptConfig) -> AlsConfig {
    AlsConfig {
        f: 32,
        lambda: 0.05,
        iterations: 1,
        memory_opt: opts,
        track_rmse: false,
        ..Default::default()
    }
}

fn bench_reference_iteration(c: &mut Criterion) {
    let r = ratings();
    let mut group = c.benchmark_group("engine_iteration");
    group.sample_size(10);
    group.bench_function("reference_als", |b| {
        b.iter(|| {
            let mut engine = BaseAls::new(config(MemoryOptConfig::optimized()), r.clone());
            engine.iterate();
            black_box(engine.train_rmse());
        });
    });
    group.finish();
}

fn bench_mo_als_ablation(c: &mut Criterion) {
    // Figures 7/8 wall-clock companion: the numerics are identical, so the
    // wall time is flat across configurations — the *simulated* time (what
    // `repro fig7`/`fig8` prints) is where the paper's effect shows up.
    let r = ratings();
    let mut group = c.benchmark_group("fig7_fig8_mo_als");
    group.sample_size(10);
    for (name, opts) in [
        ("optimized", MemoryOptConfig::optimized()),
        ("no_registers", MemoryOptConfig::without_registers()),
        ("no_texture", MemoryOptConfig::without_texture()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| {
                let mut engine = MoAlsEngine::on_titan_x(config(opts), r.clone());
                black_box(engine.iterate());
            });
        });
    }
    group.finish();
}

fn bench_su_als_scaling(c: &mut Criterion) {
    // Figure 9 wall-clock companion: the host CPU does the same numerics
    // regardless of the simulated GPU count; the simulated speedup is
    // reported by `repro fig9`.
    let r = ratings();
    let mut group = c.benchmark_group("fig9_su_als");
    group.sample_size(10);
    for &n_gpus in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_gpus),
            &n_gpus,
            |b, &n_gpus| {
                b.iter(|| {
                    let cluster = GpuCluster::titan_x_flat(n_gpus);
                    let cfg = SuAlsConfig::with_plan(
                        config(MemoryOptConfig::optimized()),
                        ReductionScheme::OnePhase,
                        n_gpus,
                        2,
                    );
                    let mut engine = SuAlsEngine::new(cfg, r.clone(), cluster);
                    black_box(engine.iterate());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    engines,
    bench_reference_iteration,
    bench_mo_als_ablation,
    bench_su_als_scaling
);
criterion_main!(engines);

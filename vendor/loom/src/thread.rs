//! Model-aware thread spawn/join.
//!
//! [`spawn`] registers a new **model thread** with the active execution:
//! the OS thread it starts does not run until the scheduler hands it the
//! token, and every handoff is a recorded scheduling decision.  Calling
//! [`spawn`] outside [`crate::model`] panics — unlike the instrumented
//! sync types (which degrade to plain std behaviour), an uninstrumented
//! free-running thread inside a model would silently void the exploration
//! guarantee, so the API refuses instead.

use crate::rt::{Execution, Resource};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread (join is an instrumented blocking
/// point, like std's).
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<Execution>,
    slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os_handle: Option<std::thread::JoinHandle<()>>,
}

/// Spawns a model thread running `f` under the active execution's
/// scheduler.  Panics if no model is running.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, spawner) =
        Execution::current().expect("loom::thread::spawn requires an active loom::model execution");
    let tid = exec.register_thread();
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let os_handle = {
        let exec = Arc::clone(&exec);
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            exec.enter(tid);
            // The scheduler wait is inside the catch: a teardown unwind
            // raised there must still reach `finish_thread`, or the
            // execution would never observe this thread as done.
            let result = catch_unwind(AssertUnwindSafe(|| {
                exec.wait_until_scheduled(tid);
                f()
            }));
            match result {
                Ok(value) => {
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(value));
                }
                Err(payload) => {
                    exec.record_abort(payload);
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Err(Box::new(
                        "model thread panicked",
                    )
                        as Box<dyn std::any::Any + Send>));
                }
            }
            exec.finish_thread(tid);
            Execution::exit();
        })
    };
    // The spawn itself is an instrumented step: the new thread may be
    // scheduled before the spawner's next operation.
    exec.yield_point(spawner);
    JoinHandle {
        tid,
        exec,
        slot,
        os_handle: Some(os_handle),
    }
}

impl<T> JoinHandle<T> {
    /// Waits (model-blocking) for the thread to finish and returns its
    /// result.  A panicking model thread aborts the whole model, so the
    /// `Err` arm is reachable only during teardown.
    pub fn join(mut self) -> std::thread::Result<T> {
        let (exec, me) = Execution::current()
            .expect("JoinHandle::join requires an active loom::model execution");
        loop {
            exec.yield_point(me);
            if self.exec.is_finished(self.tid) {
                break;
            }
            exec.block_on(me, Resource::Thread(self.tid));
        }
        if let Some(h) = self.os_handle.take() {
            let _ = h.join();
        }
        self.slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .unwrap_or_else(|| Err(Box::new("model thread produced no result")))
    }
}

/// An instrumented scheduling point with no memory effect — a model-aware
/// `std::thread::yield_now`.
pub fn yield_now() {
    crate::rt::yield_point();
}

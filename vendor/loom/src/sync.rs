//! Instrumented drop-in replacements for the `std::sync` surface the
//! workspace's facades cover.
//!
//! Every operation is a scheduler yield point; because only one model
//! thread runs at a time the values themselves stay sequentially
//! consistent, and the exploration comes from *where* the scheduler
//! interleaves the threads.  Lock acquisition blocks model-aware (the
//! scheduler knows the thread cannot progress, enabling deadlock
//! detection) rather than OS-blocking.
//!
//! Outside a [`crate::model`] execution every type degrades to plain std
//! behaviour (the yield points no-op), so a test binary compiled with the
//! model-check cfg can still run its non-model tests.

use crate::rt::{self, Execution, Resource};
use std::sync::{LockResult, TryLockError};

pub use std::sync::Arc;

/// Instrumented atomics.
pub mod atomic {
    use super::rt;
    pub use std::sync::atomic::Ordering;

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ty, $value:ty) => {
            /// An instrumented atomic: every access is a model scheduling
            /// point; the value itself is sequentially consistent.
            #[derive(Debug, Default)]
            pub struct $name(pub(crate) $std);

            impl $name {
                /// Creates a new atomic (const, so statics work).
                pub const fn new(v: $value) -> Self {
                    Self(<$std>::new(v))
                }

                /// Instrumented load.
                pub fn load(&self, order: Ordering) -> $value {
                    rt::yield_point();
                    self.0.load(order)
                }

                /// Instrumented store.
                pub fn store(&self, v: $value, order: Ordering) {
                    rt::yield_point();
                    self.0.store(v, order);
                }

                /// Instrumented swap.
                pub fn swap(&self, v: $value, order: Ordering) -> $value {
                    rt::yield_point();
                    self.0.swap(v, order)
                }

                /// Instrumented compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    rt::yield_point();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Instrumented compare-exchange (spuriously-failing form;
                /// the shim's never fails spuriously, which only prunes
                /// retry interleavings).
                pub fn compare_exchange_weak(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    rt::yield_point();
                    self.0.compare_exchange_weak(current, new, success, failure)
                }

                /// Instrumented fetch-update loop.
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$value, $value>
                where
                    F: FnMut($value) -> Option<$value>,
                {
                    rt::yield_point();
                    self.0.fetch_update(set_order, fetch_order, f)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $value {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! instrumented_arith {
        ($name:ident, $value:ty) => {
            impl $name {
                /// Instrumented fetch_add.
                pub fn fetch_add(&self, v: $value, order: Ordering) -> $value {
                    rt::yield_point();
                    self.0.fetch_add(v, order)
                }

                /// Instrumented fetch_sub.
                pub fn fetch_sub(&self, v: $value, order: Ordering) -> $value {
                    rt::yield_point();
                    self.0.fetch_sub(v, order)
                }

                /// Instrumented fetch_max.
                pub fn fetch_max(&self, v: $value, order: Ordering) -> $value {
                    rt::yield_point();
                    self.0.fetch_max(v, order)
                }

                /// Instrumented fetch_min.
                pub fn fetch_min(&self, v: $value, order: Ordering) -> $value {
                    rt::yield_point();
                    self.0.fetch_min(v, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    instrumented_atomic!(AtomicIsize, std::sync::atomic::AtomicIsize, isize);
    instrumented_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    instrumented_arith!(AtomicU64, u64);
    instrumented_arith!(AtomicUsize, usize);
    instrumented_arith!(AtomicIsize, isize);
    instrumented_arith!(AtomicU32, u32);

    impl AtomicBool {
        /// Instrumented fetch_or.
        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            rt::yield_point();
            self.0.fetch_or(v, order)
        }

        /// Instrumented fetch_and.
        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            rt::yield_point();
            self.0.fetch_and(v, order)
        }
    }
}

/// A model-aware mutex: contended acquisition blocks in the *scheduler*
/// (visible to deadlock detection), not the OS.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; releasing wakes model-blocked
/// waiters.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    resource: usize,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (const, so statics work).
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn resource_id(&self) -> usize {
        self as *const _ as *const () as usize
    }

    /// Instrumented, model-blocking lock.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let resource = self.resource_id();
        if std::thread::panicking() {
            // During an abort unwind the scheduler must not be re-entered;
            // other threads are concurrently unwinding and will release.
            return match self.0.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    resource,
                }),
                Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    resource,
                })),
            };
        }
        loop {
            rt::yield_point();
            match self.0.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        inner: Some(g),
                        resource,
                    });
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(std::sync::PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        resource,
                    }));
                }
                Err(TryLockError::WouldBlock) => {
                    if let Some((exec, tid)) = Execution::current() {
                        exec.block_on(tid, Resource::Lock(resource));
                    } else {
                        // Outside a model: degrade to a real blocking lock.
                        return match self.0.lock() {
                            Ok(g) => Ok(MutexGuard {
                                inner: Some(g),
                                resource,
                            }),
                            Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                                inner: Some(p.into_inner()),
                                resource,
                            })),
                        };
                    }
                }
            }
        }
    }

    /// Instrumented try_lock.
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        rt::yield_point();
        let resource = self.resource_id();
        match self.0.try_lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                resource,
            }),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => Err(TryLockError::Poisoned(
                std::sync::PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    resource,
                }),
            )),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock first, then wake model waiters.
        self.inner.take();
        if let Some((exec, _)) = Execution::current() {
            exec.unblock(Resource::Lock(self.resource));
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}

/// A model-aware reader-writer lock (same blocking discipline as
/// [`Mutex`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    resource: usize,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    resource: usize,
}

impl<T> RwLock<T> {
    /// Creates a new lock (const, so statics work).
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn resource_id(&self) -> usize {
        self as *const _ as *const () as usize
    }

    /// Instrumented, model-blocking shared acquisition.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let resource = self.resource_id();
        if std::thread::panicking() {
            return match self.0.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    resource,
                }),
                Err(p) => Err(std::sync::PoisonError::new(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    resource,
                })),
            };
        }
        loop {
            rt::yield_point();
            match self.0.try_read() {
                Ok(g) => {
                    return Ok(RwLockReadGuard {
                        inner: Some(g),
                        resource,
                    });
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(std::sync::PoisonError::new(RwLockReadGuard {
                        inner: Some(p.into_inner()),
                        resource,
                    }));
                }
                Err(TryLockError::WouldBlock) => {
                    if let Some((exec, tid)) = Execution::current() {
                        exec.block_on(tid, Resource::Lock(resource));
                    } else {
                        return match self.0.read() {
                            Ok(g) => Ok(RwLockReadGuard {
                                inner: Some(g),
                                resource,
                            }),
                            Err(p) => Err(std::sync::PoisonError::new(RwLockReadGuard {
                                inner: Some(p.into_inner()),
                                resource,
                            })),
                        };
                    }
                }
            }
        }
    }

    /// Instrumented, model-blocking exclusive acquisition.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let resource = self.resource_id();
        if std::thread::panicking() {
            return match self.0.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    resource,
                }),
                Err(p) => Err(std::sync::PoisonError::new(RwLockWriteGuard {
                    inner: Some(p.into_inner()),
                    resource,
                })),
            };
        }
        loop {
            rt::yield_point();
            match self.0.try_write() {
                Ok(g) => {
                    return Ok(RwLockWriteGuard {
                        inner: Some(g),
                        resource,
                    });
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(std::sync::PoisonError::new(RwLockWriteGuard {
                        inner: Some(p.into_inner()),
                        resource,
                    }));
                }
                Err(TryLockError::WouldBlock) => {
                    if let Some((exec, tid)) = Execution::current() {
                        exec.block_on(tid, Resource::Lock(resource));
                    } else {
                        return match self.0.write() {
                            Ok(g) => Ok(RwLockWriteGuard {
                                inner: Some(g),
                                resource,
                            }),
                            Err(p) => Err(std::sync::PoisonError::new(RwLockWriteGuard {
                                inner: Some(p.into_inner()),
                                resource,
                            })),
                        };
                    }
                }
            }
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, _)) = Execution::current() {
            exec.unblock(Resource::Lock(self.resource));
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, _)) = Execution::current() {
            exec.unblock(Resource::Lock(self.resource));
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}

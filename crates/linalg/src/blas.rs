//! BLAS-like kernels on small dense operands.
//!
//! These are the CPU stand-ins for the device code in the paper's Listing 1:
//! the rank-1 symmetric update that accumulates `A_u += θ_v·θ_vᵀ` and the
//! small matrix-vector products used to form `B_u = Θᵀ·R_{u*}ᵀ`.

/// Dot product of two equal-length vectors, accumulated in `f64` for
/// stability (the Hermitian systems are ill-conditioned for large `n_{x_u}`).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (*x as f64) * (*y as f64);
    }
    acc as f32
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place: `x *= alpha`.
#[inline]
pub fn scal(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Symmetric rank-1 update of a full `f × f` row-major matrix:
/// `a += x·xᵀ`.
///
/// The full (not triangular) matrix is updated because the downstream
/// Cholesky solver reads both triangles — this matches the paper's remark
/// that `f²` elements are written "if the downstream solver does not
/// appreciate symmetricity".
#[inline]
pub fn syr_full(a: &mut [f32], x: &[f32]) {
    let f = x.len();
    debug_assert_eq!(a.len(), f * f);
    for i in 0..f {
        let xi = x[i];
        if xi == 0.0 {
            continue;
        }
        let row = &mut a[i * f..(i + 1) * f];
        for (j, aij) in row.iter_mut().enumerate() {
            *aij += xi * x[j];
        }
    }
}

/// Fused Hermitian-assembly step with explicit four-lane inner loops:
/// `a += x·xᵀ` and `b += val·x` in one call — the per-rating body of the
/// ALS `get_hermitian` phase ([`syr_full`] + [`axpy`]) with the same manual
/// vectorization as the serving scan's [`crate::batch::score_dot`], so the
/// compiler keeps the FMA pipeline full instead of bounds-checking one
/// element at a time.
///
/// **Bit-identical** to `syr_full(a, x); axpy(val, x, b);`: every output
/// element receives exactly one multiply-add per call, so unrolling the
/// loop four wide reorders no floating-point reduction (unlike a dot
/// product, there is nothing to reassociate).  The zero-`x[i]` row skip is
/// preserved for the same reason.
#[inline]
pub fn syr_axpy(a: &mut [f32], b: &mut [f32], x: &[f32], val: f32) {
    let f = x.len();
    debug_assert_eq!(a.len(), f * f);
    debug_assert_eq!(b.len(), f);
    let (x4, x_tail) = x.split_at(f & !3);
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = &mut a[i * f..(i + 1) * f];
        let (r4, r_tail) = row.split_at_mut(x4.len());
        for (rc, xc) in r4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
            rc[0] += xi * xc[0];
            rc[1] += xi * xc[1];
            rc[2] += xi * xc[2];
            rc[3] += xi * xc[3];
        }
        for (r, xj) in r_tail.iter_mut().zip(x_tail.iter()) {
            *r += xi * xj;
        }
    }
    let (b4, b_tail) = b.split_at_mut(x4.len());
    for (bc, xc) in b4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
        bc[0] += val * xc[0];
        bc[1] += val * xc[1];
        bc[2] += val * xc[2];
        bc[3] += val * xc[3];
    }
    for (bi, xj) in b_tail.iter_mut().zip(x_tail.iter()) {
        *bi += val * xj;
    }
}

/// Symmetric rank-1 update touching only the upper triangle (including the
/// diagonal): `a[i][j] += x[i]*x[j]` for `j ≥ i`.
///
/// This is the `f(f+1)/2` multiply variant from Table 3.
#[inline]
pub fn syr_upper(a: &mut [f32], x: &[f32]) {
    let f = x.len();
    debug_assert_eq!(a.len(), f * f);
    for i in 0..f {
        let xi = x[i];
        if xi == 0.0 {
            continue;
        }
        for j in i..f {
            a[i * f + j] += xi * x[j];
        }
    }
}

/// Mirrors the upper triangle of a row-major `f × f` matrix into the lower
/// triangle, completing a matrix accumulated with [`syr_upper`].
#[inline]
pub fn symmetrize_upper(a: &mut [f32], f: usize) {
    debug_assert_eq!(a.len(), f * f);
    for i in 0..f {
        for j in (i + 1)..f {
            a[j * f + i] = a[i * f + j];
        }
    }
}

/// Adds `lambda` to the diagonal of a row-major `f × f` matrix
/// (the `+ λ·n_{x_u}·I` regularization term of equation (2)).
#[inline]
pub fn add_diagonal(a: &mut [f32], f: usize, lambda: f32) {
    debug_assert_eq!(a.len(), f * f);
    for i in 0..f {
        a[i * f + i] += lambda;
    }
}

/// General matrix-vector product `y = A·x` for a row-major `rows × cols`
/// matrix.
#[inline]
pub fn gemv(a: &[f32], rows: usize, cols: usize, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for i in 0..rows {
        y[i] = dot(&a[i * cols..(i + 1) * cols], x);
    }
}

/// Small general matrix-matrix product `C = A·B` with row-major operands.
/// `A` is `m × k`, `B` is `k × n`, `C` is `m × n`.
pub fn gemm_small(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aip * b[p * n + j];
            }
        }
    }
}

/// Squared Euclidean norm of a vector.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_and_scal() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn syr_full_matches_outer_product() {
        let x = [1.0, 2.0, 3.0];
        let mut a = vec![0.0; 9];
        syr_full(&mut a, &x);
        let expected = [1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 3.0, 6.0, 9.0];
        assert_eq!(a, expected);
        // Accumulation: applying again doubles everything.
        syr_full(&mut a, &x);
        assert_eq!(a[4], 8.0);
    }

    #[test]
    fn syr_axpy_is_bit_identical_to_syr_full_plus_axpy() {
        use crate::FactorMatrix;
        // Ranks off the 4-lane grid exercise the unroll tail; zeros
        // exercise the row skip.  Bit-identity (==, not tolerance): the
        // fused kernel performs the same multiply-adds in the same places.
        for f in [1usize, 3, 4, 7, 8, 13, 32] {
            let gen = FactorMatrix::random(6, f, 1.0, 90 + f as u64);
            let mut a_ref = vec![0.0f32; f * f];
            let mut b_ref = vec![0.0f32; f];
            let mut a_new = vec![0.0f32; f * f];
            let mut b_new = vec![0.0f32; f];
            for r in 0..6 {
                let mut x = gen.vector(r).to_vec();
                if r % 2 == 0 {
                    x[r % f] = 0.0;
                }
                let val = 0.5 - r as f32;
                syr_full(&mut a_ref, &x);
                axpy(val, &x, &mut b_ref);
                syr_axpy(&mut a_new, &mut b_new, &x, val);
            }
            assert_eq!(a_ref, a_new, "rank {f} Hermitian diverged");
            assert_eq!(b_ref, b_new, "rank {f} rhs diverged");
        }
    }

    #[test]
    fn syr_upper_plus_symmetrize_equals_syr_full() {
        let x = [0.5, -1.0, 2.0, 3.0];
        let mut full = vec![0.0; 16];
        syr_full(&mut full, &x);
        let mut upper = vec![0.0; 16];
        syr_upper(&mut upper, &x);
        symmetrize_upper(&mut upper, 4);
        assert_eq!(full, upper);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = vec![0.0; 9];
        add_diagonal(&mut a, 3, 0.5);
        assert_eq!(a[0], 0.5);
        assert_eq!(a[4], 0.5);
        assert_eq!(a[8], 0.5);
        assert_eq!(a.iter().filter(|&&x| x != 0.0).count(), 3);
    }

    #[test]
    fn gemv_matches_manual() {
        // A = [[1,2],[3,4],[5,6]]
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv(&a, 3, 2, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn gemm_small_matches_dense_matmul() {
        use crate::dense::DenseMatrix;
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let expected = a.matmul(&b);
        let mut c = vec![0.0; 4];
        gemm_small(a.data(), b.data(), &mut c, 2, 3, 2);
        assert_eq!(c, expected.data());
    }
}

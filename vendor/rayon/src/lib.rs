//! Sequential, API-compatible shim for [rayon](https://docs.rs/rayon).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *interface* of the external crates it depends
//! on.  This shim exposes the subset of rayon's parallel-iterator API that
//! `cumf-rs` uses — `par_iter`, `par_iter_mut`, `into_par_iter`,
//! `par_chunks_mut`, and the adapters `map` / `zip` / `enumerate` / `filter`
//! / `for_each` / `collect` / `sum` / `count` / rayon-style two-argument
//! `reduce` — executing everything **sequentially** on the calling thread.
//!
//! Correctness is unaffected: rayon's contract is that parallel execution is
//! observationally equivalent to sequential execution for the pure
//! operations used here.  Wall-clock scaling measurements are deferred until
//! the real crate can be pulled; swap the `[workspace.dependencies]` entry
//! in the root `Cargo.toml` from the `vendor/rayon` path to a crates.io
//! version and everything compiles unchanged.

use std::iter::{Enumerate, Filter, FilterMap, FlatMap, Map, Zip};

/// Sequential stand-in for rayon's `ParallelIterator`.
///
/// Wraps a standard [`Iterator`] and re-exposes the adapter set with rayon's
/// signatures (notably [`ParIter::reduce`], which takes an identity closure,
/// unlike [`Iterator::reduce`]).
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Wraps any iterator as a "parallel" iterator.
    pub fn new(inner: I) -> Self {
        ParIter(inner)
    }

    /// Applies `f` to each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Pairs items with another parallel iterator.
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<Zip<I, J::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Pairs items with their indices.
    pub fn enumerate(self) -> ParIter<Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Keeps items for which `f` returns true.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Filters and maps in one pass.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(self, f: F) -> ParIter<FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to an iterator and flattens the result.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> ParIter<FlatMap<I, O, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Consumes the iterator, applying `f` to each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Rayon-style reduction: folds every item into `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Rayon `min`/`max` need `Ord`; same here.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// No-op in the sequential shim (rayon uses it to bound task splitting).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Converts `self` into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Iter = C::IntoIter;
    type Item = C::Item;

    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter()` for shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: 'data;
    /// Iterates `&self` "in parallel".
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter_mut()` for mutable references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a mutable reference).
    type Item: 'data;
    /// Iterates `&mut self` "in parallel".
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    type Item = <&'data mut C as IntoIterator>::Item;

    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_chunks` / `par_chunks_mut` on slices.
pub trait ParallelSlice<T> {
    /// Non-overlapping chunks of `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable chunked access on slices.
pub trait ParallelSliceMut<T> {
    /// Non-overlapping mutable chunks of `chunk_size` items.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// Runs two closures ("in parallel" — sequentially here) and returns both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of "worker threads" — 1 in the sequential shim.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    //! Rayon's prelude: the traits that add `par_iter` & friends to
    //! standard collections.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let par: u64 = v.par_iter().map(|&x| x * x).sum();
        let seq: u64 = v.iter().map(|&x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_uses_identity() {
        let total = (1..=4u32).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
    }

    #[test]
    fn chunks_mut_zip_writes_through() {
        let mut a = vec![0f32; 6];
        let b = vec![1f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        a.par_chunks_mut(2)
            .zip(b.par_chunks(2))
            .for_each(|(ca, cb)| {
                ca.copy_from_slice(cb);
            });
        assert_eq!(a, b);
    }
}

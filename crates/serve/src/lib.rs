//! # cumf-serve — batched, cached top-k retrieval over factor snapshots
//!
//! Training produces factors; traffic wants rankings.  This crate turns a
//! fitted [`cumf_core::trainer::MatrixFactorizer`] (or a saved
//! [`cumf_core::checkpoint::Checkpoint`]) into a production-shaped
//! retrieval service, reusing the paper's central trick — batch many small
//! independent problems into one regular blocked kernel — at serving time:
//!
//! * [`itemstore::ItemStore`] — the item factors Θ as block-aligned,
//!   `Arc`-shared **segments** (base + appended tails), each with its own
//!   precomputed norms and block-max pruning tables, optionally stored
//!   **norm-descending** ([`itemstore::ItemLayout`]) with an id remap on
//!   output so block pruning fires systematically; `compact()` folds tails
//!   back into one base.
//! * [`snapshot::FactorSnapshot`] — an immutable, generation-stamped view
//!   of the factors: `Arc`-shared copy-on-write user blocks over a
//!   segmented item store; [`snapshot::SnapshotStore`] hot-swaps snapshots
//!   (`Arc` pointer swap) so a retrain publishes under load without
//!   stalling in-flight batches, and
//!   [`snapshot::SnapshotStore::publish_delta`] publishes an incremental
//!   [`snapshot::SnapshotDelta`] copying only `O(u·f)` bytes for `u`
//!   changed users and `O(a·f)` (one tail segment) for `a` appended items.
//! * [`topk::TopKIndex`] — scores micro-batches of requests as blocked
//!   matrix-vector products ([`cumf_linalg::batch_score_segment`]) with a
//!   bounded heap per user and seen-item exclusion; the catalog's blocks —
//!   spanning every segment — can be partitioned into item **shards**
//!   scored in parallel and merged ([`cumf_linalg::merge_top_k`]) with
//!   bit-identical results, whole low-scoring blocks are skipped via
//!   norm-bound threshold pruning, and every skip/score decision is
//!   counted ([`cumf_linalg::PruneStats`]).
//! * [`batcher::TopKService`] — a pool of `workers` scorer threads
//!   coalescing concurrent requests into size- and deadline-bounded
//!   micro-batches (identical in-flight requests are scored once), fronted
//!   by a sharded, byte-budgeted LRU result cache
//!   ([`cache::ShardedResultCache`]) invalidated by snapshot generation.
//!   A panicking worker fails its batch with
//!   [`batcher::ServeError::WorkerPanicked`] and restarts within the
//!   pool-wide [`batcher::ServeConfig::panic_budget`]; past the budget the
//!   pool poisons.  Item-appending deltas auto-compact past
//!   [`batcher::ServeConfig::max_item_segments`].
//! * [`metrics::ServeMetrics`] — request counts, batch-size histogram,
//!   cache hit rate, swap/delta/compaction counts, worker panics and
//!   restarts, block-pruning and early-termination counters — plus, via
//!   [`cumf_obs`], wait-free latency **histograms** for every pipeline
//!   [`metrics::Stage`] (queue-wait → coalesce → score → merge → reply,
//!   summing exactly to the end-to-end request latency), windowed
//!   since-last-poll reports ([`metrics::ServeMetrics::window_report`]),
//!   batcher queue-depth high-water tracking, 1-in-N sampled per-request
//!   traces ([`batcher::Tracer`],
//!   [`batcher::TopKService::traces_jsonl`]), and a Prometheus/JSON
//!   [`metrics::MetricsReport::exporter`].
//! * **Approximate retrieval** — an opt-in
//!   [`cumf_linalg::ApproxPolicy`] (service-wide via
//!   [`batcher::ServeConfig::approx`], per request via
//!   [`batcher::ServeClient::recommend_approx`]) lets the scorer stop a
//!   norm-descending segment scan once the discounted Cauchy–Schwarz
//!   bound says nothing left can improve the heap by more than `epsilon`;
//!   requests under different policies never share a micro-batch or cache
//!   entry, and [`recall::measure_recall`] reports the measured
//!   recall@k/blocks-scanned tradeoff against exact ground truth.
//! * [`online::OnlineLoop`] — the **closed online loop**: drains
//!   time-ordered rating mini-batches from a
//!   [`cumf_data::stream::StreamBatcher`], updates the touched users
//!   incrementally (segment-aware fold-in through any
//!   [`cumf_core::IncrementalEngine`], or streaming SGD via
//!   [`cumf_core::sgd::SgdEngine::absorb`]) and publishes each batch as a
//!   [`snapshot::SnapshotDelta`] under live traffic, recording every
//!   rating's ingest→publish **freshness** into the `serve_freshness_*`
//!   histogram.
//!
//! ## Quick start
//!
//! ```
//! use cumf_core::config::AlsConfig;
//! use cumf_core::trainer::{Backend, MatrixFactorizer};
//! use cumf_data::synth::SyntheticConfig;
//! use cumf_serve::{FactorSnapshot, ServeConfig, TopKService};
//!
//! let data = SyntheticConfig { m: 200, n: 100, nnz: 4000, ..Default::default() }.generate();
//! let train = data.to_csr();
//! let mut model = MatrixFactorizer::new(
//!     AlsConfig { f: 8, iterations: 3, ..Default::default() },
//!     Backend::Reference,
//! );
//! model.fit(&train, &[]);
//!
//! let service = TopKService::start(FactorSnapshot::from_trainer(&model), ServeConfig::default());
//! let client = service.client();
//! let (seen, _) = train.row(0);
//! let recs = client.recommend(0, 10, seen).unwrap();
//! assert_eq!(recs.len(), 10);
//! assert!(recs.iter().all(|(item, _)| !seen.contains(item)));
//! ```

#![forbid(unsafe_code)]
pub mod batcher;
pub mod cache;
pub mod itemstore;
pub mod metrics;
pub mod online;
pub mod recall;
pub mod snapshot;
pub mod sync;
pub mod topk;

pub use batcher::{RequestMode, ServeClient, ServeConfig, ServeError, TopKService, Tracer};
pub use cache::{CacheKey, ResultCache, ShardedResultCache};
pub use cumf_linalg::{ApproxPolicy, PruneStats, DEFAULT_APPROX_EPSILON};
pub use cumf_obs::{Exporter, Histogram, HistogramSnapshot, Trace, TraceEvent};
pub use itemstore::{ItemLayout, ItemSegment, ItemStore};
pub use metrics::{MetricsReport, ServeMetrics, Stage, WindowedReport};
pub use online::{DeltaPublisher, OnlineLoop, OnlineLoopConfig, OnlineReport, StepOutcome};
pub use recall::{measure_recall, recall_at_k, report_from_lists, RecallReport};
pub use snapshot::{
    DeltaError, DeltaStats, FactorSnapshot, SnapshotDelta, SnapshotStore, USER_COW_ROWS,
};
pub use topk::{Query, ScoreKind, TopKIndex};

//! HOGWILD!-style lock-free parallel SGD.
//!
//! HOGWILD! (Niu et al., cited as the inspiration for the CPU SGD systems in
//! §6.2) runs SGD from many threads over shared factors *without locking*,
//! accepting occasional lost updates because sparse problems make conflicts
//! rare.  To stay within safe Rust, each `f32` is stored as an `AtomicU32`
//! and updated with relaxed loads/stores — the same "racy but memory-safe"
//! semantics HOGWILD! relies on, without undefined behaviour.

use crate::als_util;
use cumf_core::{Engine, TrainMetrics};
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};
use rand::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Hyper-parameters of the HOGWILD solver.
#[derive(Debug, Clone, PartialEq)]
pub struct HogwildConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub lambda: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub decay: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HogwildConfig {
    fn default() -> Self {
        Self {
            f: 32,
            learning_rate: 0.02,
            lambda: 0.05,
            decay: 0.9,
            seed: 42,
        }
    }
}

/// A factor matrix whose elements are individually atomic.
struct AtomicFactors {
    n: usize,
    f: usize,
    data: Vec<AtomicU32>,
}

impl AtomicFactors {
    fn from_factor_matrix(m: &FactorMatrix) -> Self {
        Self {
            n: m.len(),
            f: m.rank(),
            data: m
                .data()
                .iter()
                .map(|&v| AtomicU32::new(v.to_bits()))
                .collect(),
        }
    }

    fn to_factor_matrix(&self) -> FactorMatrix {
        FactorMatrix::from_vec(
            self.n,
            self.f,
            self.data
                .iter()
                .map(|a| f32::from_bits(a.load(Ordering::Relaxed))) // relaxed-ok: Hogwild! reads are racy by design; SGD tolerates stale components
                .collect(),
        )
    }

    #[inline]
    fn load(&self, row: usize, k: usize) -> f32 {
        f32::from_bits(self.data[row * self.f + k].load(Ordering::Relaxed)) // relaxed-ok: Hogwild! reads are racy by design; SGD tolerates stale components
    }

    #[inline]
    fn store(&self, row: usize, k: usize, v: f32) {
        self.data[row * self.f + k].store(v.to_bits(), Ordering::Relaxed); // relaxed-ok: Hogwild! lock-free write; lost updates are the algorithm's stated trade
    }
}

/// HOGWILD!-style lock-free SGD solver.
pub struct HogwildSgd {
    config: HogwildConfig,
    entries: Vec<Entry>,
    x_atomic: AtomicFactors,
    theta_atomic: AtomicFactors,
    // Cached snapshots for the `Engine` accessors.
    x_snapshot: FactorMatrix,
    theta_snapshot: FactorMatrix,
    epoch: usize,
}

impl HogwildSgd {
    /// Builds the solver from a ratings matrix.
    pub fn new(config: HogwildConfig, r: &Csr) -> Self {
        let mean = als_util::mean_rating(r);
        let x = als_util::init_factors_to_mean(r.n_rows() as usize, config.f, config.seed, mean);
        let theta =
            als_util::init_factors_to_mean(r.n_cols() as usize, config.f, config.seed ^ 0x77, mean);
        let mut entries: Vec<Entry> = r.iter().collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for i in (1..entries.len()).rev() {
            let j = rng.random_range(0..=i);
            entries.swap(i, j);
        }
        Self {
            x_atomic: AtomicFactors::from_factor_matrix(&x),
            theta_atomic: AtomicFactors::from_factor_matrix(&theta),
            x_snapshot: x,
            theta_snapshot: theta,
            entries,
            config,
            epoch: 0,
        }
    }

    /// One lock-free epoch over all ratings.
    pub fn epoch(&mut self) {
        let alpha = self.config.learning_rate * self.config.decay.powi(self.epoch as i32);
        let lambda = self.config.lambda;
        let f = self.config.f;
        let x = &self.x_atomic;
        let theta = &self.theta_atomic;

        self.entries.par_iter().for_each(|e| {
            let u = e.row as usize;
            let v = e.col as usize;
            // Racy read of both vectors (HOGWILD semantics).
            let mut err = e.val;
            for k in 0..f {
                err -= x.load(u, k) * theta.load(v, k);
            }
            for k in 0..f {
                let xk = x.load(u, k);
                let tk = theta.load(v, k);
                x.store(u, k, xk + alpha * (err * tk - lambda * xk));
                theta.store(v, k, tk + alpha * (err * xk - lambda * tk));
            }
        });

        self.epoch += 1;
        self.x_snapshot = self.x_atomic.to_factor_matrix();
        self.theta_snapshot = self.theta_atomic.to_factor_matrix();
    }
}

impl Engine for HogwildSgd {
    fn name(&self) -> &'static str {
        "HOGWILD! SGD"
    }

    fn train_sweep(&mut self) -> f64 {
        self.epoch();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x_snapshot
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta_snapshot
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(
            x.len(),
            self.x_snapshot.len(),
            "X has the wrong number of rows"
        );
        assert_eq!(
            theta.len(),
            self.theta_snapshot.len(),
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x_atomic = AtomicFactors::from_factor_matrix(&x);
        self.theta_atomic = AtomicFactors::from_factor_matrix(&theta);
        self.x_snapshot = x;
        self.theta_snapshot = theta;
    }

    fn attach_metrics(&mut self, _metrics: Arc<TrainMetrics>) {}

    fn train_rmse(&self) -> f64 {
        self.rmse(&self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 200,
            n: 120,
            nnz: 8000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn hogwild_converges_despite_races() {
        let r = ratings();
        let mut solver = HogwildSgd::new(
            HogwildConfig {
                f: 8,
                ..Default::default()
            },
            &r,
        );
        let before = solver.train_rmse();
        for _ in 0..10 {
            solver.train_sweep();
        }
        let after = solver.train_rmse();
        assert!(
            after < before * 0.7,
            "HOGWILD should converge: {before} -> {after}"
        );
    }

    #[test]
    fn factors_are_finite_after_training() {
        let r = ratings();
        let mut solver = HogwildSgd::new(
            HogwildConfig {
                f: 8,
                ..Default::default()
            },
            &r,
        );
        for _ in 0..5 {
            solver.train_sweep();
        }
        assert!(solver.x().data().iter().all(|v| v.is_finite()));
        assert!(solver.theta().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn snapshot_reflects_updates() {
        let r = ratings();
        let mut solver = HogwildSgd::new(
            HogwildConfig {
                f: 4,
                ..Default::default()
            },
            &r,
        );
        let before = solver.x().clone();
        solver.train_sweep();
        assert!(solver.x().max_abs_diff(&before) > 0.0);
    }

    #[test]
    fn atomic_roundtrip_preserves_values() {
        let m = FactorMatrix::random(7, 3, 1.0, 5);
        let a = AtomicFactors::from_factor_matrix(&m);
        assert_eq!(a.to_factor_matrix(), m);
    }
}

//! Seeded-fixture codec module: unjustified narrowing casts.

pub fn encode(x: f32, scale: f32) -> i8 {
    (x / scale).round() as i8
}

pub fn decode(c: i8, scale: f32) -> f32 {
    c as f32 * scale
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_cast_is_exempt() {
        let _ = 3.0f64 as f32; // IN_TEST_MOD
    }
}

//! Schedule-exploring model checks for the serving tier's lock-free
//! structures: the `SnapshotStore` CAS publish, the generation-stamped
//! result cache (the PR 4 regression), and the queue-depth gauge.
//!
//! Compiled only under `--cfg cumf_model_check` (see
//! `crates/serve/src/sync.rs`).  Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg cumf_model_check" CARGO_TARGET_DIR=target/model \
//!     cargo test -p cumf-serve --test model_check
//! ```
#![cfg(cumf_model_check)]

use cumf_linalg::FactorMatrix;
use cumf_serve::metrics::ServeMetrics;
use cumf_serve::snapshot::{DeltaError, FactorSnapshot, SnapshotStore};
use cumf_serve::{CacheKey, ShardedResultCache};
use loom::sync::Arc;
use loom::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn tiny_snapshot(seed: u64) -> FactorSnapshot {
    FactorSnapshot::from_factors(
        FactorMatrix::random(4, 3, 1.0, seed),
        FactorMatrix::random(6, 3, 1.0, seed + 1),
    )
}

/// Invariant: `publish_if_current` is an atomic compare-and-swap on the
/// generation — two publishers racing from the same base can never both
/// win, and the loser's work is reported stale rather than silently
/// clobbering the winner's.
#[test]
fn publish_if_current_has_exactly_one_winner() {
    let stats = loom::Builder::new().preemption_bound(3).check(|| {
        let store = Arc::new(SnapshotStore::new(tiny_snapshot(7)));
        // Both publishers derive their work from the SAME base — the
        // delta-apply / compaction pattern the CAS protects.
        let base_generation = store.load().generation();
        let store2 = Arc::clone(&store);
        let t =
            thread::spawn(move || store2.publish_if_current(tiny_snapshot(100), base_generation));
        // A concurrent query: the generation counter is bumped under the
        // same write lock as the pointer swap, so a load() issued after
        // reading the counter can never observe an *older* snapshot.
        let store3 = Arc::clone(&store);
        let reader = thread::spawn(move || {
            let seen = store3.generation();
            let snap = store3.load();
            assert!(
                snap.generation() >= seen,
                "load() returned generation {} after generation() read {}",
                snap.generation(),
                seen
            );
        });
        let mine = store.publish_if_current(tiny_snapshot(200), base_generation);
        let theirs = t.join().expect("model thread");
        reader.join().expect("model thread");
        let outcomes = [&mine, &theirs];
        let wins = outcomes.iter().filter(|r| r.is_ok()).count();
        assert_eq!(
            wins, 1,
            "CAS publish must have exactly one winner: {mine:?} vs {theirs:?}"
        );
        for r in outcomes {
            match r {
                Ok(generation) => assert_eq!(*generation, 2),
                Err(DeltaError::StaleBase { delta, current }) => {
                    assert_eq!((*delta, *current), (1, 2));
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert_eq!(store.generation(), 2);
    });
    assert!(
        stats.interleavings >= 100,
        "scenario explored only {} interleavings",
        stats.interleavings
    );
}

/// PR 4 regression, model-checked: an in-flight batch that computed its
/// result against an **older** snapshot generation must not clobber a
/// fresher cached result, in any interleaving of the two inserts.  The
/// generation guard in `ResultCache::insert` is what makes the stale
/// insert lose; before PR 4 the last writer won unconditionally.
#[test]
fn stale_inflight_batch_never_clobbers_newer_cache_entry() {
    let old_result = vec![(1u32, 0.5f32)];
    let new_result = vec![(2u32, 0.9f32)];
    let stats = loom::Builder::new().preemption_bound(3).check(|| {
        let cache = Arc::new(ShardedResultCache::new(1, 64, usize::MAX));
        let cache2 = Arc::clone(&cache);
        let old2 = old_result.clone();
        // The straggler: a batch scored against generation 1, completing
        // after a hot-swap already published generation 2 results.
        let t = thread::spawn(move || {
            cache2.insert(CacheKey::new(1, 1, &[]), 1, old2);
        });
        // A generation-2 lookup racing both inserts: a miss is fine, the
        // stale list is not.
        let cache3 = Arc::clone(&cache);
        let old3 = old_result.clone();
        let racer = thread::spawn(move || {
            let mid_race = cache3.get(&CacheKey::new(1, 1, &[]), 2);
            assert_ne!(
                mid_race.as_ref(),
                Some(&old3),
                "mid-race generation-2 lookup served a generation-1 result"
            );
        });
        cache.insert(CacheKey::new(1, 1, &[]), 2, new_result.clone());
        t.join().expect("model thread");
        racer.join().expect("model thread");
        let served = cache.get(&CacheKey::new(1, 1, &[]), 2);
        assert_ne!(
            served.as_ref(),
            Some(&old_result),
            "generation-2 lookup served a generation-1 result"
        );
        // A miss (stale insert landed last and was rejected, or evicted the
        // slot) is acceptable — serving the *old* list is the bug.
    });
    assert!(stats.interleavings >= 100);
}

/// Mutation direction for the PR 4 regression: the same race run against a
/// guard-less last-writer-wins cache (the pre-PR 4 behaviour, modeled
/// inline) must be *caught* by the checker — and caught deterministically,
/// failing on the same interleaving with the same schedule trace across
/// runs.
#[test]
fn checker_catches_guardless_cache_and_reproduces_deterministically() {
    let run = || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            loom::model(|| {
                // Pre-PR 4 model: generation ignored, last insert wins.
                let slot = Arc::new(loom::sync::Mutex::new((0u64, 0u32)));
                let slot2 = Arc::clone(&slot);
                let t = thread::spawn(move || {
                    *slot2.lock().expect("model mutex") = (1, 10); // stale batch
                });
                *slot.lock().expect("model mutex") = (2, 20); // fresh batch
                t.join().expect("model thread");
                let (generation, value) = *slot.lock().expect("model mutex");
                assert!(
                    !(generation == 1 && value == 10),
                    "stale generation-1 result clobbered the fresh one"
                );
            });
        }));
        let payload = result.expect_err("guard-less cache must fail the model");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("failure carries a message")
    };
    let first = run();
    let second = run();
    assert!(first.contains("clobbered"), "wrong failure: {first}");
    assert!(
        first.contains("schedule trace"),
        "failure must carry its trace: {first}"
    );
    assert_eq!(first, second, "found race must reproduce bit-for-bit");
}

/// Invariant: the queue-depth gauge balances to zero once every enter has
/// a matching exit, and the high-water mark brackets the true concurrent
/// occupancy (each enter publishes its own post-increment depth via
/// `fetch_max`, so the mark can neither miss a peak nor exceed the number
/// of concurrent requests).
#[test]
fn queue_gauge_balances_and_high_water_brackets_occupancy() {
    let stats = loom::Builder::new().preemption_bound(3).check(|| {
        let metrics = Arc::new(ServeMetrics::new());
        let m2 = Arc::clone(&metrics);
        let t = thread::spawn(move || {
            m2.record_queue_enter();
            m2.record_queue_exit();
            m2.record_queue_enter();
            m2.record_queue_exit();
        });
        metrics.record_queue_enter();
        // A mid-flight gauge read must stay inside the occupancy envelope
        // (no transient underflow wrap, no phantom occupants).
        let depth = metrics.queue_depth();
        assert!(depth <= 2, "transient depth {depth} outside envelope");
        metrics.record_queue_exit();
        t.join().expect("model thread");
        assert_eq!(metrics.queue_depth(), 0, "gauge leaked");
        let hwm = metrics.report().queue_depth_high_water;
        assert!(
            (1..=2).contains(&hwm),
            "high-water {hwm} outside the 1..=2 occupancy envelope"
        );
    });
    assert!(stats.interleavings >= 100);
}

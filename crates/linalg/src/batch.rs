//! Batched Hermitian solves — the CPU stand-in for cuBLAS's batched
//! POTRF/POTRS used by the paper's `batch_solve` phase.
//!
//! Each of the `m_b` systems in a batch is independent, which is exactly the
//! property the paper exploits to fill the GPU with thread blocks; here the
//! same independence is exploited with rayon's work-stealing threads.

use crate::cholesky::{cholesky_solve, CholeskyError};
use rayon::prelude::*;

/// Result of a batched solve: per-system error positions (empty when all
/// systems succeeded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSolveReport {
    /// Indices of systems whose Hermitian matrix was not positive definite.
    pub failed: Vec<usize>,
    /// Number of systems solved.
    pub solved: usize,
}

impl BatchSolveReport {
    /// True when every system in the batch solved successfully.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Solves `batch` independent `f × f` SPD systems in parallel.
///
/// * `hermitians` — concatenated row-major `A_u` matrices, `batch · f²` long;
///   overwritten with their Cholesky factors.
/// * `rhs` — concatenated right-hand sides `B_u`, `batch · f` long;
///   overwritten with the solutions `x_u`.
///
/// Systems that fail to factor (non-SPD, which for ALS can only happen with
/// `λ = 0` and an empty row) leave their right-hand side untouched and are
/// reported in the returned [`BatchSolveReport`].
pub fn batch_solve(hermitians: &mut [f32], rhs: &mut [f32], f: usize) -> BatchSolveReport {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(
        hermitians.len() % (f * f),
        0,
        "hermitian buffer not a multiple of f*f"
    );
    assert_eq!(rhs.len() % f, 0, "rhs buffer not a multiple of f");
    let batch = hermitians.len() / (f * f);
    assert_eq!(rhs.len() / f, batch, "hermitian and rhs batch sizes differ");

    let results: Vec<Result<(), CholeskyError>> = hermitians
        .par_chunks_mut(f * f)
        .zip(rhs.par_chunks_mut(f))
        .map(|(a, b)| cholesky_solve(a, f, b))
        .collect();

    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    BatchSolveReport {
        solved: batch - failed.len(),
        failed,
    }
}

/// Sequential reference implementation of [`batch_solve`], used by tests to
/// check that parallel execution does not change results.
pub fn batch_solve_seq(hermitians: &mut [f32], rhs: &mut [f32], f: usize) -> BatchSolveReport {
    let batch = hermitians.len() / (f * f);
    let mut failed = Vec::new();
    for i in 0..batch {
        let a = &mut hermitians[i * f * f..(i + 1) * f * f];
        let b = &mut rhs[i * f..(i + 1) * f];
        if cholesky_solve(a, f, b).is_err() {
            failed.push(i);
        }
    }
    BatchSolveReport {
        solved: batch - failed.len(),
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{add_diagonal, syr_full};
    use crate::cholesky::residual_norm;

    use rand::prelude::*;

    fn random_batch(batch: usize, f: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hermitians = vec![0.0f32; batch * f * f];
        let mut rhs = vec![0.0f32; batch * f];
        for i in 0..batch {
            let a = &mut hermitians[i * f * f..(i + 1) * f * f];
            for _ in 0..(2 * f) {
                let x: Vec<f32> = (0..f).map(|_| rng.random::<f32>() - 0.5).collect();
                syr_full(a, &x);
            }
            add_diagonal(a, f, 0.2);
            for b in rhs[i * f..(i + 1) * f].iter_mut() {
                *b = rng.random::<f32>() - 0.5;
            }
        }
        (hermitians, rhs)
    }

    #[test]
    fn solves_a_batch_with_small_residuals() {
        let (orig_a, orig_b) = random_batch(32, 12, 3);
        let mut a = orig_a.clone();
        let mut b = orig_b.clone();
        let report = batch_solve(&mut a, &mut b, 12);
        assert!(report.all_ok());
        assert_eq!(report.solved, 32);
        for i in 0..32 {
            let res = residual_norm(
                &orig_a[i * 144..(i + 1) * 144],
                12,
                &b[i * 12..(i + 1) * 12],
                &orig_b[i * 12..(i + 1) * 12],
            );
            assert!(res < 1e-3, "system {i} residual {res}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a0, b0) = random_batch(64, 8, 11);
        let (mut a1, mut b1) = (a0.clone(), b0.clone());
        let (mut a2, mut b2) = (a0, b0);
        let r1 = batch_solve(&mut a1, &mut b1, 8);
        let r2 = batch_solve_seq(&mut a2, &mut b2, 8);
        assert_eq!(r1, r2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn reports_failed_systems_and_leaves_rhs() {
        let f = 4;
        // Two systems: first is identity (fine), second is all zeros (fails).
        let mut a = vec![0.0f32; 2 * f * f];
        add_diagonal(&mut a[..f * f], f, 1.0);
        let mut b = vec![1.0f32; 2 * f];
        let report = batch_solve(&mut a, &mut b, f);
        assert_eq!(report.failed, vec![1]);
        assert_eq!(report.solved, 1);
        assert!(!report.all_ok());
        // Failed system's rhs is untouched (still all ones).
        assert!(b[f..].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn empty_batch_is_ok() {
        let mut a: Vec<f32> = vec![];
        let mut b: Vec<f32> = vec![];
        let report = batch_solve(&mut a, &mut b, 5);
        assert!(report.all_ok());
        assert_eq!(report.solved, 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn mismatched_buffers_panic() {
        let mut a = vec![0.0f32; 10];
        let mut b = vec![0.0f32; 3];
        batch_solve(&mut a, &mut b, 3);
    }
}

//! Per-user LRU result cache with snapshot-generation invalidation and
//! byte-budgeted eviction.
//!
//! Recommendation traffic is heavily skewed (the same Zipf skew the data
//! generator models), so a small cache in front of the scorer absorbs the
//! hottest users.  Entries are stamped with the snapshot generation they
//! were computed against; a hot-swap therefore invalidates the whole cache
//! *lazily* — stale entries are dropped on first touch, with no stop-the-
//! world purge on the publish path.
//!
//! Capacity is bounded twice: by entry count and by **bytes** — each entry
//! is charged `k · 8` result bytes plus `4` per excluded item, so heavy-`k`
//! or heavy-exclusion traffic evicts proportionally more entries instead of
//! growing memory without bound.
//!
//! The implementation is a classic intrusive doubly-linked LRU over a slab,
//! so `get`/`insert` are O(1) and eviction is exact (oldest-touched first).
//! [`ShardedResultCache`] wraps `N` independently-locked instances behind a
//! key hash so a scorer worker pool shares one logical cache without
//! serializing on a single mutex.

use crate::sync::Mutex;
use std::collections::{HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};

/// Cache key: the full identity of a request, exclusion list included —
/// two requests for the same user with different exclusions must never
/// share a result, so the list is stored verbatim rather than hashed down
/// to a collidable digest.  Equality is order-sensitive; callers pass the
/// seen-item list as stored (CSR order), which is stable for a given user,
/// so a permuted list merely misses and rescores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    user: u32,
    k: usize,
    exclude: Box<[u32]>,
    /// Approximate-retrieval discriminator: `(epsilon.to_bits(), max_blocks)`
    /// of the effective [`cumf_linalg::ApproxPolicy`], `None` for exact.
    /// An approximate result must never be served to an exact request (or to
    /// a request with a different epsilon) from the cache — the policies
    /// produce different lists by design.  `target_recall` is advisory and
    /// deliberately excluded: it cannot change a result.
    approx: Option<(u32, usize)>,
    /// Storage-precision discriminator ([`cumf_linalg::Precision::code`] of
    /// the snapshot's item store).  A list scored against a quantized
    /// catalog is exact-ranked only within its over-fetched candidate set,
    /// so it must never answer a request served at a different precision —
    /// generation stamping alone does not cover this because a re-encoded
    /// snapshot keeps its generation.
    precision: u8,
}

impl CacheKey {
    /// Builds the key for an **exact** `(user, k, exclude)` request.
    pub fn new(user: u32, k: usize, exclude: &[u32]) -> Self {
        Self {
            user,
            k,
            exclude: exclude.into(),
            approx: None,
            precision: 0,
        }
    }

    /// Builds the key for a request scored under an approximate policy.
    /// `epsilon` and `max_blocks` are the result-affecting knobs; two
    /// requests agreeing on them (and on user/k/exclusions) may share a
    /// cached list.
    pub fn new_approx(
        user: u32,
        k: usize,
        exclude: &[u32],
        epsilon: f32,
        max_blocks: usize,
    ) -> Self {
        Self {
            user,
            k,
            exclude: exclude.into(),
            approx: Some((epsilon.to_bits(), max_blocks)),
            precision: 0,
        }
    }

    /// Stamps the storage precision the request will be scored against
    /// ([`cumf_linalg::Precision::code`]); keys built by [`CacheKey::new`] /
    /// [`CacheKey::new_approx`] default to exact f32 (code 0).
    pub fn with_precision(mut self, code: u8) -> Self {
        self.precision = code;
        self
    }

    /// Placeholder left in a slab slot after its entry is removed, so the
    /// real key (and its boxed exclusion list) is freed immediately rather
    /// than lingering until the slot is reused.  The empty box does not
    /// allocate.
    fn tombstone() -> Self {
        Self {
            user: u32::MAX,
            k: 0,
            exclude: Box::new([]),
            approx: None,
            precision: 0,
        }
    }

    /// Bytes this key charges against a cache budget (its exclusion list).
    fn cost(&self) -> usize {
        self.exclude.len() * std::mem::size_of::<u32>()
    }
}

const NIL: usize = usize::MAX;

/// Bytes a cached result list charges against the budget.
fn value_cost(value: &[(u32, f32)]) -> usize {
    std::mem::size_of_val(value)
}

#[derive(Debug)]
struct Node {
    key: CacheKey,
    generation: u64,
    value: Vec<(u32, f32)>,
    prev: usize,
    next: usize,
}

/// Bounded LRU of ranked result lists.  `capacity == 0` disables caching
/// (every `get` misses, every `insert` is dropped); `budget_bytes` bounds
/// the summed entry costs (`usize::MAX` = entry-count bound only).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    budget_bytes: usize,
    bytes: usize,
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results with no byte
    /// budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_budget(capacity, usize::MAX)
    }

    /// Creates a cache bounded by `capacity` entries **and** `budget_bytes`
    /// total entry cost (`k·8` result bytes + `4` per excluded item each).
    /// A `budget_bytes` of 0 disables caching, like a zero capacity.
    pub fn with_budget(capacity: usize, budget_bytes: usize) -> Self {
        Self {
            capacity,
            budget_bytes,
            bytes: 0,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of live entries (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured byte budget (`usize::MAX` = unbudgeted).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Looks up `key`, requiring the entry to come from `generation`.
    /// An entry from an **older** generation is stale — it is removed and
    /// the lookup misses.  An entry from a **newer** generation only misses:
    /// the requester is an in-flight batch still scoring against a
    /// pre-publish snapshot, and evicting the entry would undo the targeted
    /// retention a delta publish just performed (see
    /// [`ResultCache::invalidate_users`]).
    pub fn get(&mut self, key: &CacheKey, generation: u64) -> Option<&Vec<(u32, f32)>> {
        let &idx = self.map.get(key)?;
        if self.slab[idx].generation != generation {
            if self.slab[idx].generation < generation {
                self.remove_slot(idx);
            }
            return None;
        }
        self.touch(idx);
        Some(&self.slab[idx].value)
    }

    /// Inserts (or refreshes) a result computed against `generation`,
    /// evicting least-recently-used entries while either bound is exceeded.
    /// An entry whose cost alone exceeds the budget is not cached.
    pub fn insert(&mut self, key: CacheKey, generation: u64, value: Vec<(u32, f32)>) {
        if self.capacity == 0 || self.budget_bytes == 0 {
            return;
        }
        let cost = key.cost() + value_cost(&value);
        if let Some(&idx) = self.map.get(&key) {
            if self.slab[idx].generation > generation {
                // A worker finishing a batch against a pre-publish snapshot
                // must not clobber an entry already valid for the current
                // generation (e.g. one retained by a delta publish).
                return;
            }
            if cost > self.budget_bytes {
                // The refreshed entry alone exceeds the budget; drop it
                // rather than keep serving the outdated value.
                self.remove_slot(idx);
                return;
            }
            let old = value_cost(&self.slab[idx].value);
            self.bytes = self.bytes - old + value_cost(&value);
            self.slab[idx].generation = generation;
            self.slab[idx].value = value;
            // MRU first, so a refresh that outgrew the budget evicts cold
            // tail entries — never the (hot, just-refreshed) entry itself.
            self.touch(idx);
            while self.bytes > self.budget_bytes {
                debug_assert_ne!(self.tail, idx);
                self.remove_slot(self.tail);
            }
            return;
        }
        if cost > self.budget_bytes {
            return;
        }
        while self.map.len() >= self.capacity || self.bytes + cost > self.budget_bytes {
            debug_assert_ne!(self.tail, NIL);
            self.remove_slot(self.tail);
        }
        self.bytes += cost;
        let node = Node {
            key: key.clone(),
            generation,
            value,
            prev: NIL,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.attach_front(idx);
        self.map.insert(key, idx);
    }

    /// Targeted invalidation for a **delta publish**: entries whose user is
    /// in `changed` are dropped (their factors moved), while entries of
    /// unchanged users computed at `from_generation` are re-stamped to
    /// `to_generation` — their results are bit-identical under the new
    /// snapshot (same user row, same catalog), so they keep serving instead
    /// of being lazily evicted by the generation check.  Returns
    /// `(removed, retained)`.
    pub fn invalidate_users(
        &mut self,
        changed: &HashSet<u32>,
        from_generation: u64,
        to_generation: u64,
    ) -> (usize, usize) {
        let slots: Vec<usize> = self.map.values().copied().collect();
        let (mut removed, mut retained) = (0, 0);
        for idx in slots {
            if changed.contains(&self.slab[idx].key.user) {
                self.remove_slot(idx);
                removed += 1;
            } else if self.slab[idx].generation == from_generation {
                self.slab[idx].generation = to_generation;
                retained += 1;
            }
        }
        (removed, retained)
    }

    /// Removes one entry; returns whether it existed.
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        let Some(&idx) = self.map.get(key) else {
            return false;
        };
        self.remove_slot(idx);
        true
    }

    /// Frees slot `idx`: unlinks it, takes the key out of the node (freeing
    /// its boxed exclusion list now, not when the slot is reused), removes
    /// the map entry through that owned key — no clone — and returns the
    /// slot to the free list.
    fn remove_slot(&mut self, idx: usize) {
        self.detach(idx);
        let key = std::mem::replace(&mut self.slab[idx].key, CacheKey::tombstone());
        let value = std::mem::take(&mut self.slab[idx].value);
        self.bytes -= key.cost() + value_cost(&value);
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.bytes = 0;
        self.head = NIL;
        self.tail = NIL;
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// `N` independently-locked [`ResultCache`]s behind a key hash: the shared
/// result cache of a scorer worker pool.  Capacity and budget are split
/// evenly across shards, so the configured totals hold globally while two
/// workers touching different keys almost never contend on the same lock.
#[derive(Debug)]
pub struct ShardedResultCache {
    shards: Vec<Mutex<ResultCache>>,
}

impl ShardedResultCache {
    /// Creates `shards` cache shards sharing `capacity` entries and
    /// `budget_bytes` (`usize::MAX` = unbudgeted) between them.
    pub fn new(shards: usize, capacity: usize, budget_bytes: usize) -> Self {
        let n = shards.max(1);
        let per_capacity = capacity.div_ceil(n);
        let per_budget = if budget_bytes == usize::MAX {
            usize::MAX
        } else {
            budget_bytes.div_ceil(n)
        };
        Self {
            shards: (0..n)
                .map(|_| Mutex::new(ResultCache::with_budget(per_capacity, per_budget)))
                .collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<ResultCache> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Locks one shard; a shard poisoned by a panicking worker keeps
    /// serving — every cache operation leaves the LRU structure consistent,
    /// so the contents are still valid.
    fn lock(shard: &Mutex<ResultCache>) -> crate::sync::MutexGuard<'_, ResultCache> {
        shard
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Generation-checked lookup; clones the hit out, bounding the lock to
    /// the map probe plus one `k`-element copy (no caller-side borrow keeps
    /// the shard locked).
    pub fn get(&self, key: &CacheKey, generation: u64) -> Option<Vec<(u32, f32)>> {
        Self::lock(self.shard(key)).get(key, generation).cloned()
    }

    /// Inserts a result into the owning shard.
    pub fn insert(&self, key: CacheKey, generation: u64, value: Vec<(u32, f32)>) {
        let shard = self.shard(&key);
        Self::lock(shard).insert(key, generation, value);
    }

    /// [`ResultCache::invalidate_users`] across every shard (each locked in
    /// turn — a delta publish never stops the world).  Returns the summed
    /// `(removed, retained)` counts.
    pub fn invalidate_users(
        &self,
        changed: &HashSet<u32>,
        from_generation: u64,
        to_generation: u64,
    ) -> (usize, usize) {
        let (mut removed, mut retained) = (0, 0);
        for shard in &self.shards {
            let (r, k) =
                Self::lock(shard).invalidate_users(changed, from_generation, to_generation);
            removed += r;
            retained += k;
        }
        (removed, retained)
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes charged across all shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).bytes()).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32) -> CacheKey {
        CacheKey::new(user, 10, &[])
    }

    fn val(v: u32) -> Vec<(u32, f32)> {
        vec![(v, 1.0)]
    }

    #[test]
    fn get_after_insert_hits_same_generation_only() {
        let mut c = ResultCache::new(4);
        c.insert(key(1), 1, val(7));
        assert_eq!(c.get(&key(1), 1), Some(&val(7)));
        // A published generation invalidates lazily.
        assert_eq!(c.get(&key(1), 2), None);
        assert!(c.is_empty(), "stale entry is dropped on touch");
        assert_eq!(c.bytes(), 0, "stale entry refunds its bytes");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(3);
        for u in 0..3 {
            c.insert(key(u), 1, val(u));
        }
        // Touch 0 so 1 becomes the LRU.
        assert!(c.get(&key(0), 1).is_some());
        c.insert(key(3), 1, val(3));
        assert_eq!(c.len(), 3);
        assert!(c.get(&key(1), 1).is_none(), "LRU entry evicted");
        assert!(c.get(&key(0), 1).is_some());
        assert!(c.get(&key(2), 1).is_some());
        assert!(c.get(&key(3), 1).is_some());
    }

    #[test]
    fn approx_and_exact_keys_do_not_collide() {
        // Same user/k/exclusions, different retrieval policy: three distinct
        // cache identities — exact, epsilon 0.1, epsilon 0.2 — plus a
        // budget-only variant.  A cached approximate list must never answer
        // an exact request and vice versa.
        let exact = CacheKey::new(1, 10, &[2, 3]);
        let eps1 = CacheKey::new_approx(1, 10, &[2, 3], 0.1, 0);
        let eps2 = CacheKey::new_approx(1, 10, &[2, 3], 0.2, 0);
        let budget = CacheKey::new_approx(1, 10, &[2, 3], 0.1, 16);
        assert_ne!(exact, eps1);
        assert_ne!(eps1, eps2);
        assert_ne!(eps1, budget);
        let mut cache = ResultCache::new(8);
        cache.insert(eps1.clone(), 1, val(7));
        assert!(
            cache.get(&exact, 1).is_none(),
            "approx result leaked to exact"
        );
        assert!(cache.get(&eps2, 1).is_none());
        assert_eq!(cache.get(&eps1, 1), Some(&val(7)));
        // Same policy parameters rebuild an equal key.
        assert_eq!(eps1, CacheKey::new_approx(1, 10, &[2, 3], 0.1, 0));
    }

    #[test]
    fn precision_stamped_keys_do_not_collide() {
        // Same request at f32 (code 0), f16 (1), and i8 (2): three cache
        // identities.  A list ranked within a quantized scan's over-fetched
        // candidates must never answer full-precision traffic, and the
        // precision axis composes with the approx discriminator.
        let f32_key = CacheKey::new(4, 6, &[9]);
        let f16_key = CacheKey::new(4, 6, &[9]).with_precision(1);
        let i8_key = CacheKey::new(4, 6, &[9]).with_precision(2);
        assert_ne!(f32_key, f16_key);
        assert_ne!(f16_key, i8_key);
        assert_eq!(f32_key, CacheKey::new(4, 6, &[9]).with_precision(0));
        let approx_f16 = CacheKey::new_approx(4, 6, &[9], 0.1, 0).with_precision(1);
        assert_ne!(approx_f16, f16_key);
        let mut cache = ResultCache::new(8);
        cache.insert(f16_key.clone(), 1, val(3));
        assert!(
            cache.get(&f32_key, 1).is_none(),
            "quantized result leaked to exact-precision traffic"
        );
        assert!(cache.get(&i8_key, 1).is_none());
        assert_eq!(cache.get(&f16_key, 1), Some(&val(3)));
    }

    #[test]
    fn different_exclusions_do_not_collide() {
        let a = CacheKey::new(1, 10, &[1, 2, 3]);
        let b = CacheKey::new(1, 10, &[1, 2, 4]);
        let c = CacheKey::new(1, 10, &[]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        let mut cache = ResultCache::new(4);
        cache.insert(a, 1, val(1));
        assert!(cache.get(&b, 1).is_none());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), 1, val(1));
        c.insert(key(2), 1, val(2));
        c.insert(key(1), 1, val(9)); // refresh → key 2 is now LRU
        c.insert(key(3), 1, val(3));
        assert_eq!(c.get(&key(1), 1), Some(&val(9)));
        assert!(c.get(&key(2), 1).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(1), 1, val(1));
        assert!(c.get(&key(1), 1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut c = ResultCache::with_budget(100, 0);
        c.insert(key(1), 1, val(1));
        assert!(c.get(&key(1), 1).is_none());
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c = ResultCache::new(2);
        for round in 0..100u32 {
            c.insert(key(round), 1, val(round));
        }
        assert_eq!(c.len(), 2);
        assert!(c.slab.len() <= 3, "slab grew: {}", c.slab.len());
    }

    #[test]
    fn removed_slots_drop_their_key_exclusions() {
        // A heavy exclusion list must be charged while cached and refunded
        // (key freed, not parked in the slab) the moment it is removed.
        let heavy = CacheKey::new(1, 10, &(0..1000).collect::<Vec<u32>>());
        let mut c = ResultCache::new(4);
        c.insert(heavy.clone(), 1, val(1));
        assert_eq!(c.bytes(), 1000 * 4 + 8);
        assert!(c.remove(&heavy));
        assert_eq!(c.bytes(), 0);
        assert!(c.slab[0].key.exclude.is_empty(), "evicted key still boxed");
        assert!(c.slab[0].value.is_empty(), "evicted value still alive");
        // The tombstoned slot is reusable.
        c.insert(key(2), 1, val(2));
        assert_eq!(c.get(&key(2), 1), Some(&val(2)));
    }

    #[test]
    fn byte_budget_evicts_oldest_entries() {
        // Each entry: k=10 key with empty exclusions, value of 3 pairs →
        // 24 bytes.  Budget of 80 holds 3 entries, not 4.
        let entry = |u: u32| (key(u), vec![(u, 1.0f32), (u + 1, 1.0), (u + 2, 1.0)]);
        let mut c = ResultCache::with_budget(100, 80);
        for u in 0..4 {
            let (k, v) = entry(u);
            c.insert(k, 1, v);
        }
        assert_eq!(c.len(), 3);
        assert!(c.bytes() <= 80);
        assert!(c.get(&key(0), 1).is_none(), "oldest entry evicted first");
        assert!(c.get(&key(3), 1).is_some());
    }

    #[test]
    fn heavy_exclusion_entries_charge_their_keys() {
        // One entry whose exclusion list dominates its cost: a 60-byte
        // budget fits the 8-byte value plus a 48-byte exclusion list once,
        // so a second such entry evicts the first.
        let heavy = |u: u32| CacheKey::new(u, 1, &[0; 12]);
        let mut c = ResultCache::with_budget(100, 60);
        c.insert(heavy(1), 1, val(1));
        assert_eq!(c.bytes(), 48 + 8);
        c.insert(heavy(2), 1, val(2));
        assert_eq!(c.len(), 1, "budget holds one heavy entry");
        assert!(c.get(&heavy(2), 1).is_some());
        assert!(c.get(&heavy(1), 1).is_none());
    }

    #[test]
    fn oversized_entry_is_not_cached() {
        let mut c = ResultCache::with_budget(100, 16);
        c.insert(key(1), 1, vec![(0, 1.0); 10]); // 80 bytes > 16
        assert!(c.is_empty());
        // A fitting entry still caches fine afterwards.
        c.insert(key(2), 1, val(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refresh_that_alone_exceeds_the_budget_drops_the_entry() {
        let mut c = ResultCache::with_budget(100, 24);
        c.insert(key(1), 1, val(1));
        assert_eq!(c.len(), 1);
        c.insert(key(1), 2, vec![(0, 1.0); 10]); // 80 bytes > 24
        assert!(c.is_empty(), "stale small value must not survive");
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn refresh_that_outgrows_the_budget_evicts_cold_entries_not_itself() {
        // Three 8-byte entries under a 40-byte budget; refreshing the
        // oldest to 32 bytes must evict the now-coldest entry (key 2), not
        // the refreshed hot one.
        let mut c = ResultCache::with_budget(100, 40);
        for u in 1..=3 {
            c.insert(key(u), 1, val(u));
        }
        let fat = vec![(9, 1.0f32); 4]; // 32 bytes
        c.insert(key(1), 1, fat.clone());
        assert!(c.bytes() <= 40);
        assert_eq!(c.get(&key(1), 1), Some(&fat), "hot entry survives");
        assert!(c.get(&key(2), 1).is_none(), "coldest entry evicted");
        assert!(c.get(&key(3), 1).is_some());
    }

    #[test]
    fn invalidate_users_drops_changed_and_restamps_the_rest() {
        let mut c = ResultCache::new(8);
        for u in 0..4 {
            c.insert(key(u), 1, val(u));
        }
        let changed: HashSet<u32> = [1, 3].into_iter().collect();
        let (removed, retained) = c.invalidate_users(&changed, 1, 2);
        assert_eq!((removed, retained), (2, 2));
        // Changed users miss at the new generation; unchanged users hit.
        assert!(c.get(&key(1), 2).is_none());
        assert!(c.get(&key(3), 2).is_none());
        assert_eq!(c.get(&key(0), 2), Some(&val(0)));
        assert_eq!(c.get(&key(2), 2), Some(&val(2)));
        // And the re-stamped entries no longer serve the old generation.
        assert!(c.get(&key(0), 1).is_none());
    }

    #[test]
    fn stragglers_from_older_generations_cannot_evict_or_clobber_newer_entries() {
        // An in-flight batch that captured its snapshot before a delta
        // publish races the publish's targeted retention: its lookups and
        // inserts carry the old generation.  They must neither evict nor
        // overwrite the retained (newer-generation) entry.
        let mut c = ResultCache::new(4);
        c.insert(key(1), 2, val(9)); // retained at the current generation
        assert_eq!(c.get(&key(1), 1), None, "old-gen lookup misses");
        assert_eq!(c.len(), 1, "newer entry survives the old-gen lookup");
        c.insert(key(1), 1, val(3)); // straggler insert with the old result
        assert_eq!(
            c.get(&key(1), 2),
            Some(&val(9)),
            "newer entry not clobbered"
        );
    }

    #[test]
    fn invalidate_users_leaves_other_generations_alone() {
        // An entry from an older generation is not upgraded — it was
        // computed against factors two publishes back.
        let mut c = ResultCache::new(8);
        c.insert(key(0), 1, val(0));
        c.insert(key(1), 2, val(1));
        let (removed, retained) = c.invalidate_users(&HashSet::new(), 2, 3);
        assert_eq!((removed, retained), (0, 1));
        assert_eq!(c.get(&key(1), 3), Some(&val(1)));
        assert!(c.get(&key(0), 3).is_none(), "gen-1 entry stays stale");
    }

    #[test]
    fn sharded_invalidate_users_spans_all_shards() {
        let c = ShardedResultCache::new(4, 64, usize::MAX);
        for u in 0..32 {
            c.insert(key(u), 1, val(u));
        }
        let changed: HashSet<u32> = (0..8).collect();
        let (removed, retained) = c.invalidate_users(&changed, 1, 2);
        assert_eq!((removed, retained), (8, 24));
        for u in 0..8 {
            assert_eq!(c.get(&key(u), 2), None, "changed user {u}");
        }
        for u in 8..32 {
            assert_eq!(c.get(&key(u), 2), Some(val(u)), "retained user {u}");
        }
    }

    #[test]
    fn sharded_cache_totals_and_isolation() {
        let c = ShardedResultCache::new(4, 64, 1 << 20);
        assert_eq!(c.shard_count(), 4);
        for u in 0..32 {
            c.insert(key(u), 1, val(u));
        }
        assert_eq!(c.len(), 32);
        assert!(c.bytes() > 0);
        for u in 0..32 {
            assert_eq!(c.get(&key(u), 1), Some(val(u)), "user {u}");
        }
        // Generation mismatch invalidates lazily through the shards too.
        assert_eq!(c.get(&key(0), 2), None);
        assert_eq!(c.len(), 31);
    }

    #[test]
    fn sharded_cache_is_shared_across_threads() {
        let c = std::sync::Arc::new(ShardedResultCache::new(8, 1024, usize::MAX));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..64 {
                        c.insert(key(t * 64 + i), 1, val(i));
                    }
                });
            }
        });
        assert_eq!(c.len(), 256);
    }
}

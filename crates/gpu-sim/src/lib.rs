//! GPU performance-model simulator for `cumf-rs`.
//!
//! The cuMF paper runs on NVIDIA Titan X / K80 cards; this reproduction has
//! no GPU, so the hardware is replaced by a *performance model* that captures
//! exactly the architectural characteristics the paper's optimizations are
//! about:
//!
//! * [`device`] — device specifications (SM count, cores, clock, register
//!   file, shared memory, global memory size and bandwidth, texture cache),
//!   with presets for the Titan X and GK210/K80 used in the paper.
//! * [`mem`] — a device-memory allocator with capacity tracking, so that the
//!   partition planner's out-of-memory conditions are real errors.
//! * [`traffic`] — per-kernel FLOP and byte counters (global / texture /
//!   shared / register traffic), the quantities Table 3 of the paper accounts.
//! * [`occupancy`] — the CUDA occupancy calculation (blocks per SM limited by
//!   threads, registers and shared memory), which is what the paper's
//!   `bin`-size trade-off in §3.3 is about.
//! * [`timing`] — a roofline timing model turning traffic + occupancy into
//!   simulated kernel time.
//! * [`topology`] — the PCIe interconnect (flat root or dual-socket) with
//!   full-duplex links and contention, used by the topology-aware reduction.
//! * [`stream`] — CUDA-stream-like timelines with separate copy and compute
//!   engines, so transfer/compute overlap (out-of-core prefetch) is modelled.
//! * [`multi`] — a [`multi::GpuCluster`] bundling several devices, their
//!   allocators, timelines and the interconnect.
//! * [`profiler`] — a timeline of simulated events for reporting.
//!
//! The *numerics* of the algorithms built on top of this crate run on the
//! host CPU; only *time* is simulated.  This preserves the paper's
//! experimental shape (which optimization wins, by what factor) without the
//! physical card.

#![forbid(unsafe_code)]
pub mod device;
pub mod mem;
pub mod multi;
pub mod occupancy;
pub mod profiler;
pub mod stream;
pub mod timing;
pub mod topology;
pub mod traffic;

pub use device::{DeviceSpec, MemoryKind, MemoryTableRow};
pub use mem::{AllocId, DeviceAllocator, OutOfMemory};
pub use multi::GpuCluster;
pub use occupancy::Occupancy;
pub use profiler::{EventKind, ProfileEvent, Profiler};
pub use stream::DeviceTimeline;
pub use timing::{KernelTiming, TimingModel};
pub use topology::{Endpoint, PcieTopology, TopologyKind, Transfer};
pub use traffic::KernelTraffic;

/// Number of bytes in one GiB, used throughout the simulator.
pub const GIB: u64 = 1 << 30;

/// Number of bytes in a single-precision float.
pub const F32_BYTES: u64 = 4;

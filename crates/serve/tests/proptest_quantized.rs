//! Property pin for the quantized-segment acceptance criterion: a store
//! re-encoded at [`Precision::F32`] served through the rerank-capable index
//! with an `epsilon = 0` policy is **bit-identical** to the pre-quantization
//! exact path — across random segmentations (delta-appended tails), both
//! item layouts, shard counts, and blockings.  F32 really is the identity
//! codec, not merely a close approximation.

use cumf_linalg::{FactorMatrix, Precision};
use cumf_serve::{ApproxPolicy, FactorSnapshot, ItemLayout, Query, ScoreKind, TopKIndex};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a snapshot over `n` base items plus up to two delta-appended
/// tails, so the store is genuinely multi-segment when the tails are
/// non-empty.
fn segmented_snapshot(
    n: usize,
    f: usize,
    seed: u64,
    layout: ItemLayout,
    tails: &[usize],
) -> FactorSnapshot {
    let x = FactorMatrix::random(24, f, 1.0, seed);
    let theta = FactorMatrix::random(n, f, 1.0, seed + 1);
    let mut snap = FactorSnapshot::from_factors_with_layout(x, theta, layout);
    for (i, &tail) in tails.iter().enumerate() {
        if tail == 0 {
            continue;
        }
        let mut delta = snap.delta();
        delta.append_items(&FactorMatrix::random(tail, f, 1.0, seed + 2 + i as u64));
        snap = snap.apply_delta(&delta).expect("delta applies").0;
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn f32_precision_and_epsilon_zero_match_the_exact_path_bit_for_bit(
        n in 60usize..300,
        f in 3usize..9,
        seed in 0u64..500,
        tail_a in 0usize..40,
        tail_b in 0usize..40,
        k in 1usize..12,
        layout_sel in 0usize..2,
        shards in 1usize..5,
        block_sel in 0usize..3,
    ) {
        let item_block = [16usize, 33, 64][block_sel];
        let layout = [ItemLayout::CatalogOrder, ItemLayout::NormDescending][layout_sel];
        let snap = Arc::new(segmented_snapshot(n, f, seed, layout, &[tail_a, tail_b]));
        // Round-tripping through the codec layer at F32 must be the
        // identity on the store.
        let re = Arc::new(snap.reencoded(Precision::F32));
        prop_assert_eq!(re.items().precision(), Precision::F32);
        prop_assert!(re.items().segments().iter().all(|s| s.encoded().is_none()));

        let queries: Vec<Query> = (0..24u32)
            .map(|u| Query {
                user: u,
                k,
                // A deterministic sprinkle of exclusions per user.
                exclude: (0..n as u32).filter(|v| (v + u) % 37 == 0).collect(),
            })
            .collect();
        for score in [ScoreKind::Dot, ScoreKind::Cosine] {
            // The pre-quantization path: plain sharded exact index.
            let exact = TopKIndex::with_shards(Arc::clone(&snap), item_block, score, shards);
            let (want, want_stats) = exact.query_batch_stats(&queries);
            // The new path: rerank-capable index over the re-encoded store
            // with a zero-slack policy and an over-fetch factor armed.
            let quant = TopKIndex::with_rerank(
                Arc::clone(&re),
                item_block,
                score,
                shards,
                Some(ApproxPolicy::exact()),
                2.0,
            );
            let (got, got_stats) = quant.query_batch_stats(&queries);
            prop_assert_eq!(
                &got, &want,
                "diverged: layout={:?} shards={} block={} k={} score={:?}",
                layout, shards, item_block, k, score
            );
            // Identity means identical work too: same blocks scored, no
            // rerank pass, and no quantized bytes on an all-f32 store.
            prop_assert_eq!(got_stats.blocks_scored, want_stats.blocks_scored);
            prop_assert_eq!(got_stats.rerank_candidates, 0);
            prop_assert_eq!(got_stats.bytes_scanned, want_stats.bytes_scanned);
        }
    }
}

//! Train/test splitting of a rating matrix.
//!
//! The paper's convergence figures (6–10) plot *test* RMSE, so every
//! convergence experiment holds out a fraction of the ratings before
//! training.

use cumf_sparse::{Coo, Csr, Entry};
use rand::prelude::*;

/// A train/test split of a rating matrix.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training ratings in CSR form.
    pub train: Csr,
    /// Held-out test ratings.
    pub test: Vec<Entry>,
}

impl TrainTest {
    /// Fraction of all ratings that ended up in the test set.
    pub fn test_fraction(&self) -> f64 {
        let total = self.train.nnz() + self.test.len();
        if total == 0 {
            0.0
        } else {
            self.test.len() as f64 / total as f64
        }
    }
}

/// Randomly splits `ratings` into a training matrix and a held-out test set.
///
/// Each entry lands in the test set independently with probability
/// `test_frac`, except that the *first* rating of every row and of every
/// column is always kept in training, so no user or item is entirely unseen
/// at training time (the usual protocol for rating prediction).
pub fn train_test_split(ratings: &Coo, test_frac: f64, seed: u64) -> TrainTest {
    assert!(
        (0.0..1.0).contains(&test_frac),
        "test fraction must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Coo::with_capacity(ratings.n_rows(), ratings.n_cols(), ratings.nnz());
    let mut test = Vec::new();
    let mut row_seen = vec![false; ratings.n_rows() as usize];
    let mut col_seen = vec![false; ratings.n_cols() as usize];
    for e in ratings.entries() {
        let must_train = !row_seen[e.row as usize] || !col_seen[e.col as usize];
        if must_train || rng.random::<f64>() >= test_frac {
            train
                .push(e.row, e.col, e.val)
                .expect("entry indices already validated");
            row_seen[e.row as usize] = true;
            col_seen[e.col as usize] = true;
        } else {
            test.push(*e);
        }
    }
    TrainTest {
        train: train.to_csr(),
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticConfig;

    fn sample() -> Coo {
        SyntheticConfig {
            m: 300,
            n: 120,
            nnz: 9000,
            ..Default::default()
        }
        .generate()
        .ratings
    }

    #[test]
    fn split_partitions_all_entries() {
        let ratings = sample();
        let tt = train_test_split(&ratings, 0.2, 1);
        assert_eq!(tt.train.nnz() + tt.test.len(), ratings.nnz());
    }

    #[test]
    fn test_fraction_is_close_to_requested() {
        let ratings = sample();
        let tt = train_test_split(&ratings, 0.2, 2);
        let frac = tt.test_fraction();
        assert!(frac > 0.12 && frac < 0.25, "fraction = {frac}");
    }

    #[test]
    fn zero_fraction_keeps_everything_in_train() {
        let ratings = sample();
        let tt = train_test_split(&ratings, 0.0, 3);
        assert!(tt.test.is_empty());
        assert_eq!(tt.train.nnz(), ratings.nnz());
    }

    #[test]
    fn every_row_and_col_with_ratings_appears_in_train() {
        let ratings = sample();
        let tt = train_test_split(&ratings, 0.5, 4);
        let train_rows: std::collections::HashSet<u32> = tt.train.iter().map(|e| e.row).collect();
        let train_cols: std::collections::HashSet<u32> = tt.train.iter().map(|e| e.col).collect();
        let all_rows: std::collections::HashSet<u32> =
            ratings.entries().iter().map(|e| e.row).collect();
        let all_cols: std::collections::HashSet<u32> =
            ratings.entries().iter().map(|e| e.col).collect();
        assert_eq!(train_rows, all_rows);
        assert_eq!(train_cols, all_cols);
    }

    #[test]
    fn split_is_deterministic_in_the_seed() {
        let ratings = sample();
        let a = train_test_split(&ratings, 0.3, 9);
        let b = train_test_split(&ratings, 0.3, 9);
        assert_eq!(a.test, b.test);
        let c = train_test_split(&ratings, 0.3, 10);
        assert_ne!(a.test, c.test);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn invalid_fraction_panics() {
        train_test_split(&sample(), 1.0, 0);
    }
}

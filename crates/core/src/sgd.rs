//! Stochastic gradient descent reference (equation (4) of the paper).
//!
//! cuMF deliberately chooses ALS over SGD because SGD's updates to the same
//! row conflict and are hard to spread over thousands of GPU cores (§2.1).
//! This sequential SGD exists as a numerical reference: tests use it to
//! confirm that ALS reaches comparable training error in far fewer
//! iterations, and the baseline crate builds its parallel SGD variants on
//! the same update rule.

use crate::loss;
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_sparse::Csr;
use rand::prelude::*;

/// Hyper-parameters of the SGD reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Learning rate `α`.
    pub learning_rate: f32,
    /// Regularization `λ` (plain L2, as in equation (4)).
    pub lambda: f32,
    /// Number of epochs (full passes over the ratings).
    pub epochs: usize,
    /// Multiplicative learning-rate decay applied after every epoch.
    pub decay: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            f: 32,
            learning_rate: 0.01,
            lambda: 0.05,
            epochs: 20,
            decay: 0.95,
            seed: 42,
        }
    }
}

/// A plain sequential SGD matrix factorizer.
#[derive(Debug, Clone)]
pub struct SgdReference {
    config: SgdConfig,
    r: Csr,
    x: FactorMatrix,
    theta: FactorMatrix,
}

impl SgdReference {
    /// Creates the factorizer with random initial factors.
    pub fn new(config: SgdConfig, r: Csr) -> Self {
        let scale = 1.0 / (config.f as f32).sqrt();
        let x = FactorMatrix::random(r.n_rows() as usize, config.f, scale, config.seed);
        let theta =
            FactorMatrix::random(r.n_cols() as usize, config.f, scale, config.seed ^ 0xABCD);
        Self {
            config,
            r,
            x,
            theta,
        }
    }

    /// Current user factors.
    pub fn x(&self) -> &FactorMatrix {
        &self.x
    }

    /// Current item factors.
    pub fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    /// Runs one epoch (a shuffled pass over every rating) and returns the
    /// learning rate that was used.
    pub fn epoch(&mut self, epoch_index: usize) -> f32 {
        let alpha = self.config.learning_rate * self.config.decay.powi(epoch_index as i32);
        let lambda = self.config.lambda;
        let f = self.config.f;

        // Shuffle the visit order of all ratings.
        let mut order: Vec<(u32, u32, f32)> =
            self.r.iter().map(|e| (e.row, e.col, e.val)).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (epoch_index as u64 + 1));
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }

        for (u, v, r_uv) in order {
            let (u, v) = (u as usize, v as usize);
            let err = r_uv - dot(self.x.vector(u), self.theta.vector(v));
            for k in 0..f {
                let xu = self.x.vector(u)[k];
                let tv = self.theta.vector(v)[k];
                self.x.vector_mut(u)[k] = xu + alpha * (err * tv - lambda * xu);
                self.theta.vector_mut(v)[k] = tv + alpha * (err * xu - lambda * tv);
            }
        }
        alpha
    }

    /// Runs all configured epochs.
    pub fn run(&mut self) {
        for e in 0..self.config.epochs {
            self.epoch(e);
        }
    }

    /// Training RMSE of the current factors.
    pub fn train_rmse(&self) -> f64 {
        loss::rmse_csr(&self.x, &self.theta, &self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::BaseAls;
    use crate::config::AlsConfig;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 150,
            n: 80,
            nnz: 5000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn sgd_reduces_training_error() {
        let mut sgd = SgdReference::new(
            SgdConfig {
                f: 8,
                epochs: 15,
                ..Default::default()
            },
            ratings(),
        );
        let before = sgd.train_rmse();
        sgd.run();
        let after = sgd.train_rmse();
        assert!(
            after < before * 0.7,
            "SGD should make progress: {before} -> {after}"
        );
    }

    #[test]
    fn learning_rate_decays() {
        let mut sgd = SgdReference::new(
            SgdConfig {
                f: 4,
                epochs: 2,
                ..Default::default()
            },
            ratings(),
        );
        let a0 = sgd.epoch(0);
        let a5 = sgd.epoch(5);
        assert!(a5 < a0);
    }

    #[test]
    fn als_needs_fewer_iterations_than_sgd() {
        // §2.1/§6: ALS converges in fewer iterations than SGD — one ALS
        // iteration should beat several SGD epochs on training RMSE.
        let r = ratings();
        let mut als = BaseAls::new(
            AlsConfig {
                f: 8,
                iterations: 1,
                ..Default::default()
            },
            r.clone(),
        );
        let mut sgd = SgdReference::new(
            SgdConfig {
                f: 8,
                epochs: 3,
                ..Default::default()
            },
            r,
        );
        als.iterate();
        for e in 0..3 {
            sgd.epoch(e);
        }
        assert!(
            als.train_rmse() < sgd.train_rmse(),
            "1 ALS iteration ({}) should beat 3 SGD epochs ({})",
            als.train_rmse(),
            sgd.train_rmse()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r = ratings();
        let mut a = SgdReference::new(
            SgdConfig {
                f: 4,
                epochs: 2,
                ..Default::default()
            },
            r.clone(),
        );
        let mut b = SgdReference::new(
            SgdConfig {
                f: 4,
                epochs: 2,
                ..Default::default()
            },
            r,
        );
        a.run();
        b.run();
        assert_eq!(a.x().max_abs_diff(b.x()), 0.0);
    }
}

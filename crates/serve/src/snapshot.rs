//! Immutable factor snapshots, the atomically hot-swappable store, and the
//! incremental delta-publication path.
//!
//! A [`FactorSnapshot`] freezes the trained factors at one point in time:
//! user factors `X`, item factors `Θ` (row-major, so every `θ_v` is
//! contiguous for the blocked scorer), the precomputed item L2 norms, and a
//! `generation` number.  Snapshots are immutable by construction — the
//! serving path never mutates one, so any number of in-flight batches can
//! share it behind an [`Arc`].
//!
//! Internally the user factors are stored as fixed-size **copy-on-write
//! blocks** ([`USER_COW_ROWS`] rows each, `Arc`-shared between snapshots).
//! A full snapshot owns all of its blocks; a snapshot built by
//! [`FactorSnapshot::apply_delta`] shares every block the delta did not
//! touch with its base, so folding in `u` users copies `O(u·f)` factor
//! bytes instead of the `O(m·f)` a full republication moves.  The item side
//! is a segmented [`ItemStore`] (see [`crate::itemstore`]): a delta that
//! leaves the catalog untouched shares every segment via `Arc`, and a delta
//! that **appends** `a` items pushes one new `a`-row segment — `O(a·f)`
//! bytes, norms computed only for the appended rows — instead of copying Θ
//! whole.  [`FactorSnapshot::compacted`] merges accumulated tail segments
//! back into one base so segment count stays bounded under sustained
//! appends; [`SnapshotStore::compact_items`] republishes the result through
//! the ordinary swap.
//!
//! [`SnapshotStore`] is the publication point: a retrain (or a checkpoint
//! restore) builds a fresh snapshot and [`SnapshotStore::publish`]es it,
//! while an incremental fold-in goes through
//! [`SnapshotStore::publish_delta`].  Either way the swap is an `Arc`
//! pointer replacement under a briefly-held lock — readers clone the `Arc`
//! and then score against an immutable object, so a publish never stalls
//! in-flight batches and a batch can never observe two generations.

use crate::itemstore::{ItemLayout, ItemStore};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, RwLock};
use cumf_core::checkpoint::Checkpoint;
use cumf_core::trainer::MatrixFactorizer;
use cumf_linalg::{retrieve_top_k_segments, FactorMatrix, PruneStats};
use std::collections::{HashMap, HashSet};

/// Rows per copy-on-write user-factor block.  Small enough that updating one
/// user copies at most `USER_COW_ROWS · f` floats (the `O(u·f)` bound of a
/// delta publish), large enough that a million-user snapshot is ~16k `Arc`s,
/// not a pointer per row.
pub const USER_COW_ROWS: usize = 64;

/// User factors as `Arc`-shared fixed-size row blocks: the structural-
/// sharing half of delta publication.  Logically identical to a row-major
/// `FactorMatrix`; physically, consecutive snapshots share every block that
/// no delta between them touched.
#[derive(Debug, Clone, PartialEq)]
struct UserFactors {
    n: usize,
    f: usize,
    /// `ceil(n / USER_COW_ROWS)` blocks of `USER_COW_ROWS · f` floats (the
    /// last one possibly partial).
    blocks: Vec<Arc<Vec<f32>>>,
}

impl UserFactors {
    fn from_matrix(m: &FactorMatrix) -> Self {
        let f = m.rank();
        let blocks = m
            .data()
            .chunks(USER_COW_ROWS * f.max(1))
            .map(|b| Arc::new(b.to_vec()))
            .collect();
        Self {
            n: m.len(),
            f,
            blocks,
        }
    }

    #[inline]
    fn vector(&self, u: usize) -> &[f32] {
        let block = &self.blocks[u / USER_COW_ROWS];
        let r = u % USER_COW_ROWS;
        &block[r * self.f..(r + 1) * self.f]
    }

    /// Copy-on-write update: returns a new `UserFactors` where blocks
    /// containing a changed user are copied (and overwritten) and every
    /// other block is `Arc`-shared with `self`; `appended` rows extend the
    /// matrix (copying the partial last block once, if any).  Also returns
    /// the factor bytes that were physically copied.
    fn apply(
        &self,
        changed: &[(u32, &[f32])],
        appended: Option<&FactorMatrix>,
    ) -> (UserFactors, usize) {
        let f = self.f;
        let mut blocks = self.blocks.clone();
        let mut copied: HashMap<usize, Vec<f32>> = HashMap::new();
        for &(user, row) in changed {
            let b = user as usize / USER_COW_ROWS;
            let staged = copied
                .entry(b)
                .or_insert_with(|| blocks[b].as_ref().clone());
            let r = user as usize % USER_COW_ROWS;
            staged[r * f..(r + 1) * f].copy_from_slice(row);
        }
        let mut bytes = copied.len() * USER_COW_ROWS * f * 4;
        // The partial tail block (if the user count is not block-aligned)
        // is smaller; correct the accounting for it.
        if let Some(staged) = copied.get(&(self.blocks.len().saturating_sub(1))) {
            if !self.blocks.is_empty() {
                bytes -= (USER_COW_ROWS * f - staged.len().min(USER_COW_ROWS * f)) * 4;
            }
        }
        let mut n = self.n;
        if let Some(app) = appended {
            bytes += app.data().len() * 4;
            let mut tail: Vec<f32> = if !n.is_multiple_of(USER_COW_ROWS) {
                // Copy the partial last block once to extend it in place.
                // lint-ok: serve-unwrap n % USER_COW_ROWS != 0 guarantees a block
                let last = blocks.pop().expect("partial tail implies a block");
                let staged = copied.remove(&blocks.len());
                let tail = staged.unwrap_or_else(|| {
                    bytes += last.len() * 4;
                    last.as_ref().clone()
                });
                tail
            } else {
                Vec::new()
            };
            for row in app.data().chunks(f.max(1)) {
                tail.extend_from_slice(row);
                if tail.len() == USER_COW_ROWS * f {
                    blocks.push(Arc::new(std::mem::take(&mut tail)));
                }
            }
            if !tail.is_empty() {
                blocks.push(Arc::new(tail));
            }
            n += app.len();
        }
        for (b, staged) in copied {
            blocks[b] = Arc::new(staged);
        }
        (UserFactors { n, f, blocks }, bytes)
    }

    /// True when row block `b` is physically the same allocation in both —
    /// the structural-sharing invariant the tests pin.
    #[cfg(test)]
    fn shares_block_with(&self, other: &UserFactors, b: usize) -> bool {
        Arc::ptr_eq(&self.blocks[b], &other.blocks[b])
    }
}

/// A generation-chained incremental update: changed user rows, optional
/// appended user rows (fold-in of brand-new users) and optional appended
/// item rows.  Built against the generation it is based on
/// ([`SnapshotDelta::base_generation`]); applying it to any other
/// generation fails with [`DeltaError::StaleBase`], so a delta can never
/// silently clobber a concurrent publish.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    base_generation: u64,
    f: usize,
    changed_ids: Vec<u32>,
    changed_rows: Vec<f32>,
    index: HashMap<u32, usize>,
    appended_users: Option<FactorMatrix>,
    appended_items: Option<FactorMatrix>,
}

impl SnapshotDelta {
    /// An empty delta chained onto `base_generation`, carrying rank-`f`
    /// factor rows.
    pub fn new(base_generation: u64, f: usize) -> Self {
        assert!(f > 0, "latent rank must be positive");
        Self {
            base_generation,
            f,
            changed_ids: Vec::new(),
            changed_rows: Vec::new(),
            index: HashMap::new(),
            appended_users: None,
            appended_items: None,
        }
    }

    /// The generation this delta chains from.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Latent rank of the carried rows.
    pub fn rank(&self) -> usize {
        self.f
    }

    /// Replaces user `user`'s factor vector (last update per user wins).
    ///
    /// # Panics
    /// Panics if `row.len() != rank()`.
    pub fn update_user(&mut self, user: u32, row: &[f32]) -> &mut Self {
        assert_eq!(row.len(), self.f, "user row has the wrong rank");
        match self.index.get(&user) {
            Some(&i) => self.changed_rows[i * self.f..(i + 1) * self.f].copy_from_slice(row),
            None => {
                self.index.insert(user, self.changed_ids.len());
                self.changed_ids.push(user);
                self.changed_rows.extend_from_slice(row);
            }
        }
        self
    }

    /// Appends brand-new users (they get the next ids after the base
    /// snapshot's user count, in row order).
    ///
    /// # Panics
    /// Panics if `rows.rank() != rank()`.
    pub fn append_users(&mut self, rows: &FactorMatrix) -> &mut Self {
        assert_eq!(rows.rank(), self.f, "appended users have the wrong rank");
        match &mut self.appended_users {
            Some(existing) => existing.append_rows(rows),
            None => self.appended_users = Some(rows.clone()),
        }
        self
    }

    /// Appends new catalog items (they get the next ids after the base
    /// snapshot's item count, in row order).  Note that appending items
    /// invalidates every cached ranking — a new item may enter anyone's
    /// top-k — so the targeted cache-retention fast path does not apply.
    ///
    /// # Panics
    /// Panics if `rows.rank() != rank()`.
    pub fn append_items(&mut self, rows: &FactorMatrix) -> &mut Self {
        assert_eq!(rows.rank(), self.f, "appended items have the wrong rank");
        match &mut self.appended_items {
            Some(existing) => existing.append_rows(rows),
            None => self.appended_items = Some(rows.clone()),
        }
        self
    }

    /// Ids of the users whose rows this delta replaces.
    pub fn changed_users(&self) -> &[u32] {
        &self.changed_ids
    }

    /// Number of appended (brand-new) users.
    pub fn appended_user_count(&self) -> usize {
        self.appended_users.as_ref().map_or(0, FactorMatrix::len)
    }

    /// Number of appended catalog items.
    pub fn appended_item_count(&self) -> usize {
        self.appended_items.as_ref().map_or(0, FactorMatrix::len)
    }

    /// True when the delta touches the item catalog (cached rankings of
    /// *all* users become stale).
    pub fn touches_items(&self) -> bool {
        self.appended_items.is_some()
    }

    /// True when the delta carries no changes at all.
    pub fn is_empty(&self) -> bool {
        self.changed_ids.is_empty()
            && self.appended_users.is_none()
            && self.appended_items.is_none()
    }
}

/// Byte accounting of one [`FactorSnapshot::apply_delta`]: what was
/// physically copied versus structurally shared.  The acceptance invariant
/// of the delta path is `user_factor_bytes_copied = O(u·f)` for `u` changed
/// users — asserted by tests, reported by the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Users whose rows were replaced.
    pub changed_users: usize,
    /// Brand-new users appended.
    pub appended_users: usize,
    /// Catalog items appended.
    pub appended_items: usize,
    /// User count of the base snapshot (appended users got ids starting
    /// here).
    pub user_base: usize,
    /// User-factor bytes physically copied (touched COW blocks + appended
    /// rows); every other user block is shared with the base snapshot.
    pub user_factor_bytes_copied: usize,
    /// User COW blocks shared untouched with the base snapshot.
    pub user_blocks_shared: usize,
    /// Item-factor bytes physically copied — `O(a·f)` for `a` appended
    /// items (the new tail segment); every pre-existing segment is shared
    /// by `Arc`, never copied.
    pub item_factor_bytes_copied: usize,
    /// Item norms recomputed (appended items only; existing norms are
    /// reused).
    pub norms_recomputed: usize,
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta chains from a generation that is no longer current — a
    /// full or delta publish intervened.  Rebuild the delta against the
    /// current snapshot and retry.
    StaleBase {
        /// Generation the delta was built against.
        delta: u64,
        /// Generation actually published.
        current: u64,
    },
    /// The delta's rows have a different latent rank than the snapshot.
    RankMismatch {
        /// The snapshot's rank.
        snapshot: usize,
        /// The delta's rank.
        delta: usize,
    },
    /// A changed-user id is outside the base snapshot (use
    /// [`SnapshotDelta::append_users`] for new users).
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// User count of the base snapshot.
        n_users: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::StaleBase { delta, current } => write!(
                f,
                "delta chains from generation {delta} but generation {current} is published"
            ),
            DeltaError::RankMismatch { snapshot, delta } => {
                write!(f, "delta rank {delta} != snapshot rank {snapshot}")
            }
            DeltaError::UserOutOfRange { user, n_users } => write!(
                f,
                "changed user {user} outside the base snapshot ({n_users} users); \
                 append new users instead"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// An immutable, generation-stamped view of trained factors.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorSnapshot {
    generation: u64,
    x: UserFactors,
    /// The segmented (optionally norm-ordered) item catalog; each segment
    /// carries its own precomputed norms and block maxima so the
    /// threshold-pruned retrieval paths never rescan norms per request or
    /// per micro-batch.
    items: ItemStore,
}

impl FactorSnapshot {
    /// Builds a snapshot from factor matrices (generation 0 until
    /// published), storing the catalog in the default serving layout —
    /// [`ItemLayout::NormDescending`] since the approximate-retrieval PR.
    /// Exact results are bit-identical across layouts (pinned by the
    /// segment proptests); callers that need catalog-row storage pass
    /// [`ItemLayout::CatalogOrder`] to
    /// [`FactorSnapshot::from_factors_with_layout`] explicitly.
    ///
    /// # Panics
    /// Panics if the two matrices disagree on the latent rank.
    pub fn from_factors(x: FactorMatrix, theta: FactorMatrix) -> Self {
        Self::from_factors_with_layout(x, theta, ItemLayout::default())
    }

    /// [`FactorSnapshot::from_factors`] with an explicit item layout.
    /// [`ItemLayout::NormDescending`] stores each catalog segment sorted by
    /// item norm (id-remapped on output) so block threshold pruning fires
    /// systematically; results are bit-identical to catalog order.
    ///
    /// # Panics
    /// Panics if the two matrices disagree on the latent rank.
    pub fn from_factors_with_layout(
        x: FactorMatrix,
        theta: FactorMatrix,
        layout: ItemLayout,
    ) -> Self {
        assert_eq!(x.rank(), theta.rank(), "factor rank mismatch");
        Self {
            generation: 0,
            x: UserFactors::from_matrix(&x),
            items: ItemStore::new(theta, layout),
        }
    }

    /// Snapshots a live, fitted trainer.
    ///
    /// # Panics
    /// Panics if [`MatrixFactorizer::fit`] has not been called.
    pub fn from_trainer(model: &MatrixFactorizer) -> Self {
        Self::from_factors(model.x().clone(), model.theta().clone())
    }

    /// [`FactorSnapshot::from_trainer`] with an explicit item layout.
    pub fn from_trainer_with_layout(model: &MatrixFactorizer, layout: ItemLayout) -> Self {
        Self::from_factors_with_layout(model.x().clone(), model.theta().clone(), layout)
    }

    /// Restores a snapshot from a saved checkpoint — the serving half of the
    /// paper's §4.4 fault-tolerance story: a retrain crash loses no serving
    /// capability, the last checkpoint serves on.
    pub fn from_checkpoint(checkpoint: &Checkpoint) -> Self {
        Self::from_factors(checkpoint.x.clone(), checkpoint.theta.clone())
    }

    /// [`FactorSnapshot::from_checkpoint`] with an explicit item layout.
    pub fn from_checkpoint_with_layout(checkpoint: &Checkpoint, layout: ItemLayout) -> Self {
        Self::from_factors_with_layout(checkpoint.x.clone(), checkpoint.theta.clone(), layout)
    }

    /// The publication generation (0 for never-published snapshots).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.x.n
    }

    /// Number of items in the catalog.
    pub fn n_items(&self) -> usize {
        self.items.n_items()
    }

    /// Latent rank `f`.
    pub fn rank(&self) -> usize {
        self.items.rank()
    }

    /// User factor vector `x_u`, or `None` for out-of-range users.
    pub fn user_vector(&self, user: u32) -> Option<&[f32]> {
        ((user as usize) < self.x.n).then(|| self.x.vector(user as usize))
    }

    /// The segmented item store backing this snapshot.
    pub fn items(&self) -> &ItemStore {
        &self.items
    }

    /// Factor vector `θ_v` of catalog item `v` (segment lookup + id remap),
    /// or `None` for out-of-range items.
    pub fn item_vector(&self, item: u32) -> Option<&[f32]> {
        ((item as usize) < self.items.n_items()).then(|| self.items.vector(item as usize))
    }

    /// Precomputed L2 norm `‖θ_v‖` of catalog item `v`, or `None` for
    /// out-of-range items.
    pub fn item_norm(&self, item: u32) -> Option<f32> {
        ((item as usize) < self.items.n_items()).then(|| self.items.norm(item as usize))
    }

    /// Materializes the catalog as one contiguous row-major matrix in
    /// catalog-id order — what a fold-in solve against frozen Θ wants.
    /// `O(n·f)`; retrieval never needs this.
    pub fn item_factors_matrix(&self) -> FactorMatrix {
        self.items.to_matrix()
    }

    /// A snapshot whose item segments are re-encoded at `precision`
    /// ([`ItemStore::reencode`]): every segment keeps its exact f32 rows
    /// (point lookups, fold-in, and the serving rerank still read full
    /// precision) and gains — or drops — the compressed slab the blocked
    /// scan streams.  User blocks are shared with `self`; segments already
    /// at `precision` are `Arc`-shared, not rebuilt.
    pub fn reencoded(&self, precision: cumf_linalg::Precision) -> FactorSnapshot {
        Self {
            generation: self.generation,
            x: self.x.clone(),
            items: self.items.reencode(precision),
        }
    }

    /// [`FactorSnapshot::reencoded`] with a per-segment precision choice —
    /// the hot-head-f32 / cold-tail-i8 split: `choose` sees each segment's
    /// index and contents and returns the precision it should scan at.
    /// Segments whose choice matches their current precision are shared.
    pub fn reencoded_with(
        &self,
        choose: impl FnMut(usize, &crate::itemstore::ItemSegment) -> cumf_linalg::Precision,
    ) -> FactorSnapshot {
        Self {
            generation: self.generation,
            x: self.x.clone(),
            items: self.items.reencode_with(choose),
        }
    }

    /// A snapshot whose item segments are merged back into one base segment
    /// ([`ItemStore::compact`]); user blocks are shared with `self`, and
    /// retrieval is bit-identical.  Publish the result through
    /// [`SnapshotStore::compact_items`] (or `publish`) to bound segment
    /// count under sustained item appends.
    pub fn compacted(&self) -> FactorSnapshot {
        Self {
            generation: self.generation,
            x: self.x.clone(),
            items: self.items.compact(),
        }
    }

    /// An empty [`SnapshotDelta`] chained onto this snapshot's generation
    /// and rank.
    pub fn delta(&self) -> SnapshotDelta {
        SnapshotDelta::new(self.generation, self.rank())
    }

    /// Builds the next snapshot from this one plus a delta, sharing every
    /// untouched user block and (when no items are appended) the whole item
    /// side.  The result carries this snapshot's generation until a store
    /// publishes it; byte accounting comes back in [`DeltaStats`].
    ///
    /// Retrieval against the result is bit-identical to a full rebuild
    /// ([`FactorSnapshot::from_factors`]) with the same post-delta factors —
    /// pinned by the delta proptests.
    pub fn apply_delta(
        &self,
        delta: &SnapshotDelta,
    ) -> Result<(FactorSnapshot, DeltaStats), DeltaError> {
        if delta.base_generation != self.generation {
            return Err(DeltaError::StaleBase {
                delta: delta.base_generation,
                current: self.generation,
            });
        }
        if delta.f != self.rank() {
            return Err(DeltaError::RankMismatch {
                snapshot: self.rank(),
                delta: delta.f,
            });
        }
        if let Some(&user) = delta
            .changed_ids
            .iter()
            .find(|&&u| (u as usize) >= self.x.n)
        {
            return Err(DeltaError::UserOutOfRange {
                user,
                n_users: self.x.n,
            });
        }

        let f = delta.f;
        let changed: Vec<(u32, &[f32])> = delta
            .changed_ids
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, &delta.changed_rows[i * f..(i + 1) * f]))
            .collect();
        let (x, user_bytes) = self.x.apply(&changed, delta.appended_users.as_ref());

        let mut stats = DeltaStats {
            changed_users: delta.changed_ids.len(),
            appended_users: delta.appended_user_count(),
            appended_items: delta.appended_item_count(),
            user_base: self.x.n,
            user_factor_bytes_copied: user_bytes,
            user_blocks_shared: 0,
            item_factor_bytes_copied: 0,
            norms_recomputed: 0,
        };
        stats.user_blocks_shared = self
            .x
            .blocks
            .iter()
            .zip(x.blocks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();

        // The item side: untouched catalogs share every segment by `Arc`;
        // an append pushes one new O(a·f) tail segment — never a full Θ
        // copy — with norms and block maxima computed only for the appended
        // rows.
        let items = match &delta.appended_items {
            None => self.items.clone(),
            Some(app) => {
                let (items, bytes) = self.items.append(app);
                stats.item_factor_bytes_copied = bytes;
                stats.norms_recomputed = app.len();
                items
            }
        };

        Ok((
            FactorSnapshot {
                generation: self.generation,
                x,
                items,
            },
            stats,
        ))
    }

    /// Predicted rating `x_u · θ_v`; `None` for out-of-range ids.
    pub fn predict(&self, user: u32, item: u32) -> Option<f32> {
        let x_u = self.user_vector(user)?;
        Some(cumf_linalg::blas::dot(x_u, self.item_vector(item)?))
    }

    /// Single-request top-`k` retrieval: the blocked-scoring + bounded-heap
    /// path a batch of size one takes, walking the item segments with
    /// whole-block threshold pruning driven by each segment's precomputed
    /// norms (results are identical to the unpruned path, for any segment
    /// count and layout).  Out-of-range users get an empty result (a
    /// serving layer must not panic on bad requests).
    pub fn recommend_one(&self, user: u32, k: usize, exclude: &[u32]) -> Vec<(u32, f32)> {
        let Some(x_u) = self.user_vector(user) else {
            return Vec::new();
        };
        let excluded: HashSet<u32> = exclude.iter().copied().collect();
        let mut stats = PruneStats::default();
        retrieve_top_k_segments(
            x_u,
            self.rank(),
            k,
            &self.items.views(),
            |v| excluded.contains(&v),
            &mut stats,
        )
    }
}

/// The hot-swappable publication point for [`FactorSnapshot`]s.
///
/// `load()` is a read-lock `Arc` clone; `publish()` stamps the next
/// generation and swaps the pointer under a write lock held for the
/// duration of one pointer assignment.  In-flight batches keep serving from
/// the `Arc` they already cloned.  [`SnapshotStore::publish_delta`] applies
/// a [`SnapshotDelta`] *outside* the lock (the copy is `O(u·f)` but still
/// work) and swaps only if the base generation is still current.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<FactorSnapshot>>,
    generation: AtomicU64,
}

impl SnapshotStore {
    /// Creates a store serving `initial` as generation 1.
    pub fn new(mut initial: FactorSnapshot) -> Self {
        initial.generation = 1;
        Self {
            current: RwLock::new(Arc::new(initial)),
            generation: AtomicU64::new(1),
        }
    }

    /// The snapshot to serve the next batch from.
    pub fn load(&self) -> Arc<FactorSnapshot> {
        // lint-ok: serve-unwrap poisoning means a publisher panicked mid-swap;
        // serving a possibly half-installed snapshot would be worse than dying
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Generation of the currently-published snapshot.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire) // ordering-ok: Acquire pairs with the AcqRel bump under the publishers' write lock
    }

    /// Publishes a new snapshot, returning its generation.  Queries that
    /// already captured the previous `Arc` finish on the old factors; every
    /// later `load()` observes the new ones.  The generation bump and the
    /// pointer swap happen under one write lock, so concurrent publishers
    /// serialize and generations can never be installed out of order.
    pub fn publish(&self, mut snapshot: FactorSnapshot) -> u64 {
        // lint-ok: serve-unwrap propagate a poisoned store rather than publish over it
        let mut current = self.current.write().expect("snapshot lock poisoned");
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1; // ordering-ok: AcqRel under the write lock; lock-free generation() readers see bumps in publish order
        snapshot.generation = generation;
        *current = Arc::new(snapshot);
        generation
    }

    /// Applies `delta` to the currently-published snapshot and publishes the
    /// result, returning the new generation and the copy accounting.  The
    /// `O(u·f)` copy-on-write happens outside the lock; the swap then only
    /// goes through if the published generation is still the delta's base —
    /// a concurrent publish in the window makes the delta
    /// [`DeltaError::StaleBase`] instead of silently overwriting it.
    pub fn publish_delta(&self, delta: &SnapshotDelta) -> Result<(u64, DeltaStats), DeltaError> {
        let base = self.load();
        let (next, stats) = base.apply_delta(delta)?;
        let generation = self.publish_if_current(next, base.generation)?;
        Ok((generation, stats))
    }

    /// Publishes `snapshot` only if `base_generation` is still the
    /// published generation — the compare-and-swap every derived publish
    /// (delta apply, item compaction) funnels through so a concurrent
    /// publish can never be silently overwritten.
    pub fn publish_if_current(
        &self,
        mut snapshot: FactorSnapshot,
        base_generation: u64,
    ) -> Result<u64, DeltaError> {
        // lint-ok: serve-unwrap propagate a poisoned store rather than publish over it
        let mut current = self.current.write().expect("snapshot lock poisoned");
        if current.generation != base_generation {
            return Err(DeltaError::StaleBase {
                delta: base_generation,
                current: current.generation,
            });
        }
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1; // ordering-ok: AcqRel under the write lock; lock-free generation() readers see bumps in publish order
        snapshot.generation = generation;
        *current = Arc::new(snapshot);
        Ok(generation)
    }

    /// Merges the published snapshot's item tail segments back into one
    /// base ([`FactorSnapshot::compacted`]) and republishes, bounding
    /// segment count under sustained item-appending deltas.  The `O(n·f)`
    /// merge runs outside the lock; the swap only goes through if no other
    /// publish intervened (otherwise the compaction is simply dropped —
    /// the intervening publisher owns the newer state).  Returns `Ok(None)`
    /// when the catalog is already a single segment, and
    /// `Ok(Some((base_generation, new_generation)))` on success — the base
    /// generation is what a cache-retention layer must re-stamp *from*.
    pub fn compact_items(&self) -> Result<Option<(u64, u64)>, DeltaError> {
        let base = self.load();
        if base.items().segment_count() <= 1 {
            return Ok(None);
        }
        let compacted = base.compacted();
        let generation = self.publish_if_current(compacted, base.generation)?;
        Ok(Some((base.generation, generation)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::blas::dot;

    fn snapshot(seed: u64) -> FactorSnapshot {
        FactorSnapshot::from_factors(
            FactorMatrix::random(20, 6, 1.0, seed),
            FactorMatrix::random(50, 6, 1.0, seed + 1),
        )
    }

    /// A snapshot big enough to span several COW blocks.
    fn blocky_snapshot(seed: u64) -> FactorSnapshot {
        FactorSnapshot::from_factors(
            FactorMatrix::random(USER_COW_ROWS * 5 + 13, 8, 1.0, seed),
            FactorMatrix::random(700, 8, 1.0, seed + 1),
        )
    }

    #[test]
    fn norms_match_theta_rows() {
        let s = snapshot(1);
        for v in 0..s.n_items() as u32 {
            let theta_v = s.item_vector(v).unwrap();
            let expect = dot(theta_v, theta_v).sqrt();
            assert!((s.item_norm(v).unwrap() - expect).abs() < 1e-6);
        }
        assert_eq!(s.item_norm(s.n_items() as u32), None);
    }

    #[test]
    fn recommend_one_excludes_and_sorts() {
        let s = snapshot(2);
        let exclude = vec![0, 1, 2, 3];
        let recs = s.recommend_one(5, 10, &exclude);
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|(v, _)| !exclude.contains(v)));
        assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn out_of_range_requests_are_empty_not_panics() {
        let s = snapshot(3);
        assert!(s.recommend_one(10_000, 5, &[]).is_empty());
        assert_eq!(s.predict(10_000, 0), None);
        assert_eq!(s.predict(0, 10_000), None);
        assert!(s.predict(0, 0).is_some());
    }

    #[test]
    fn store_publish_bumps_generation_and_swaps() {
        let store = SnapshotStore::new(snapshot(4));
        let first = store.load();
        assert_eq!(first.generation(), 1);
        let g2 = store.publish(snapshot(5));
        assert_eq!(g2, 2);
        assert_eq!(store.generation(), 2);
        let second = store.load();
        assert_eq!(second.generation(), 2);
        // The old Arc is still intact for in-flight readers.
        assert_eq!(first.generation(), 1);
    }

    #[test]
    #[should_panic(expected = "factor rank mismatch")]
    fn mismatched_ranks_panic() {
        FactorSnapshot::from_factors(FactorMatrix::zeros(2, 3), FactorMatrix::zeros(2, 4));
    }

    #[test]
    fn cow_user_vectors_round_trip() {
        let m = FactorMatrix::random(USER_COW_ROWS * 3 + 7, 5, 1.0, 9);
        let s = FactorSnapshot::from_factors(m.clone(), FactorMatrix::random(10, 5, 1.0, 10));
        for u in 0..m.len() {
            assert_eq!(s.user_vector(u as u32).unwrap(), m.vector(u), "user {u}");
        }
        assert_eq!(s.user_vector(m.len() as u32), None);
    }

    #[test]
    fn delta_updates_users_and_shares_untouched_blocks() {
        let base = blocky_snapshot(11);
        let f = base.rank();
        let row = vec![9.0f32; f];
        let mut delta = base.delta();
        // Two users in block 0, one in block 2.
        delta
            .update_user(1, &row)
            .update_user(3, &row)
            .update_user((2 * USER_COW_ROWS + 5) as u32, &row);
        let (next, stats) = base.apply_delta(&delta).unwrap();

        assert_eq!(next.user_vector(1).unwrap(), &row[..]);
        assert_eq!(next.user_vector(3).unwrap(), &row[..]);
        assert_eq!(
            next.user_vector((2 * USER_COW_ROWS + 5) as u32).unwrap(),
            &row[..]
        );
        // Untouched users keep their rows...
        assert_eq!(next.user_vector(0), base.user_vector(0));
        // ...and untouched blocks are the same allocation, not a copy.
        assert!(next.x.shares_block_with(&base.x, 1));
        assert!(next.x.shares_block_with(&base.x, 3));
        assert!(!next.x.shares_block_with(&base.x, 0));
        assert!(!next.x.shares_block_with(&base.x, 2));
        assert_eq!(stats.changed_users, 3);
        assert_eq!(stats.user_blocks_shared, 4);
        // 2 blocks copied: exactly 2 · USER_COW_ROWS · f · 4 bytes.
        assert_eq!(stats.user_factor_bytes_copied, 2 * USER_COW_ROWS * f * 4);
        // The item side is shared whole: same segment allocation.
        assert_eq!(stats.item_factor_bytes_copied, 0);
        assert!(next.items.shares_segment_with(&base.items, 0));
    }

    #[test]
    fn delta_appends_users_and_items() {
        let base = blocky_snapshot(13);
        let f = base.rank();
        let new_users = FactorMatrix::random(10, f, 1.0, 77);
        let new_items = FactorMatrix::random(9, f, 1.0, 78);
        let mut delta = base.delta();
        delta.append_users(&new_users).append_items(&new_items);
        let (next, stats) = base.apply_delta(&delta).unwrap();

        assert_eq!(next.n_users(), base.n_users() + 10);
        assert_eq!(next.n_items(), base.n_items() + 9);
        for i in 0..10 {
            assert_eq!(
                next.user_vector((base.n_users() + i) as u32).unwrap(),
                new_users.vector(i)
            );
        }
        for i in 0..9 {
            assert_eq!(
                next.item_vector((base.n_items() + i) as u32).unwrap(),
                new_items.vector(i)
            );
        }
        // Norms cover the appended items and match a full recompute.
        let full = FactorSnapshot::from_factors(
            FactorMatrix::from_vec(next.n_users(), f, {
                let mut d = Vec::new();
                for u in 0..next.n_users() {
                    d.extend_from_slice(next.user_vector(u as u32).unwrap());
                }
                d
            }),
            next.item_factors_matrix(),
        );
        for v in 0..next.n_items() as u32 {
            assert_eq!(next.item_norm(v), full.item_norm(v), "item {v}");
        }
        assert_eq!(stats.appended_users, 10);
        assert_eq!(stats.appended_items, 9);
        assert_eq!(stats.norms_recomputed, 9, "only appended norms computed");
        // The append is a new tail segment: exactly O(a·f) bytes, while the
        // base segment is shared untouched.
        assert_eq!(stats.item_factor_bytes_copied, 9 * f * 4);
        assert_eq!(next.items().segment_count(), 2);
        assert!(next.items.shares_segment_with(&base.items, 0));
        // Compaction folds the tail back in and changes nothing observable.
        let compacted = next.compacted();
        assert_eq!(compacted.items().segment_count(), 1);
        assert_eq!(
            compacted.recommend_one(0, 7, &[]),
            next.recommend_one(0, 7, &[])
        );
    }

    #[test]
    fn delta_update_user_last_write_wins() {
        let base = snapshot(21);
        let f = base.rank();
        let mut delta = base.delta();
        delta
            .update_user(2, &vec![1.0; f])
            .update_user(2, &vec![5.0; f]);
        assert_eq!(delta.changed_users(), &[2]);
        let (next, stats) = base.apply_delta(&delta).unwrap();
        assert_eq!(next.user_vector(2).unwrap(), &vec![5.0f32; f][..]);
        assert_eq!(stats.changed_users, 1);
    }

    #[test]
    fn delta_rejects_stale_base_rank_mismatch_and_bad_users() {
        let base = snapshot(22);
        let stale = SnapshotDelta::new(base.generation() + 7, base.rank());
        assert_eq!(
            base.apply_delta(&stale),
            Err(DeltaError::StaleBase {
                delta: base.generation() + 7,
                current: base.generation()
            })
        );
        let wrong_rank = SnapshotDelta::new(base.generation(), base.rank() + 1);
        assert!(matches!(
            base.apply_delta(&wrong_rank),
            Err(DeltaError::RankMismatch { .. })
        ));
        let mut bad_user = base.delta();
        bad_user.update_user(10_000, &vec![0.0; base.rank()]);
        assert_eq!(
            base.apply_delta(&bad_user),
            Err(DeltaError::UserOutOfRange {
                user: 10_000,
                n_users: base.n_users()
            })
        );
    }

    #[test]
    fn store_publish_delta_chains_generations() {
        let store = SnapshotStore::new(blocky_snapshot(31));
        let base = store.load();
        let f = base.rank();
        let mut delta = base.delta();
        delta.update_user(5, &vec![2.5; f]);
        let (generation, stats) = store.publish_delta(&delta).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(stats.changed_users, 1);
        let next = store.load();
        assert_eq!(next.generation(), 2);
        assert_eq!(next.user_vector(5).unwrap(), &vec![2.5f32; f][..]);
        // The base snapshot is untouched for in-flight readers.
        assert_ne!(base.user_vector(5).unwrap(), &vec![2.5f32; f][..]);

        // A delta rebuilt on the old generation is now stale.
        let mut stale = base.delta();
        stale.update_user(6, &vec![1.0; f]);
        assert_eq!(
            store.publish_delta(&stale),
            Err(DeltaError::StaleBase {
                delta: 1,
                current: 2
            })
        );
    }

    #[test]
    fn delta_on_partial_tail_block_appends_correctly() {
        // 13 users with USER_COW_ROWS = 64: one partial block.  Updating a
        // user and appending users must extend the tail without losing rows.
        let f = 4;
        let base = FactorSnapshot::from_factors(
            FactorMatrix::random(13, f, 1.0, 41),
            FactorMatrix::random(30, f, 1.0, 42),
        );
        let mut delta = base.delta();
        delta.update_user(12, &vec![7.0; f]);
        delta.append_users(&FactorMatrix::random(3, f, 1.0, 43));
        let (next, stats) = base.apply_delta(&delta).unwrap();
        assert_eq!(next.n_users(), 16);
        assert_eq!(next.user_vector(12).unwrap(), &vec![7.0f32; f][..]);
        for u in 0..12u32 {
            assert_eq!(next.user_vector(u), base.user_vector(u));
        }
        // Partial tail (13 rows) copied once + 3 appended rows.
        assert_eq!(stats.user_factor_bytes_copied, (13 + 3) * f * 4);
    }

    #[test]
    fn store_compact_items_republishes_identical_results() {
        let store = SnapshotStore::new(snapshot(61));
        // No tails yet: compaction is a no-op.
        assert_eq!(store.compact_items(), Ok(None));

        let base = store.load();
        let f = base.rank();
        let mut delta = base.delta();
        delta.append_items(&FactorMatrix::random(12, f, 1.0, 62));
        store.publish_delta(&delta).unwrap();
        let mut delta = store.load().delta();
        delta.append_items(&FactorMatrix::random(5, f, 1.0, 63));
        store.publish_delta(&delta).unwrap();

        let before = store.load();
        assert_eq!(before.items().segment_count(), 3);
        let expect: Vec<_> = (0..5u32).map(|u| before.recommend_one(u, 9, &[])).collect();

        let (base_gen, generation) = store.compact_items().unwrap().expect("tails to merge");
        assert_eq!((base_gen, generation), (3, 4));
        let after = store.load();
        assert_eq!(after.items().segment_count(), 1);
        assert_eq!(after.n_items(), before.n_items());
        for (u, e) in expect.iter().enumerate() {
            assert_eq!(&after.recommend_one(u as u32, 9, &[]), e, "user {u}");
        }

        // A compaction racing a publish loses cleanly: rebuild on a stale
        // base is rejected, not silently swapped in.
        let stale = before.compacted();
        assert!(matches!(
            store.publish_if_current(stale, before.generation()),
            Err(DeltaError::StaleBase { .. })
        ));
    }

    #[test]
    fn empty_delta_is_a_cheap_generation_bump() {
        let store = SnapshotStore::new(blocky_snapshot(51));
        let base = store.load();
        let delta = base.delta();
        assert!(delta.is_empty());
        let (generation, stats) = store.publish_delta(&delta).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(stats.user_factor_bytes_copied, 0);
        assert_eq!(stats.item_factor_bytes_copied, 0);
        let next = store.load();
        assert_eq!(next.recommend_one(0, 5, &[]), base.recommend_one(0, 5, &[]));
    }
}

//! NOMAD-style asynchronous SGD.
//!
//! NOMAD (Yun et al., VLDB 2014 — the paper's strongest CPU baseline)
//! partitions the *rows* of `R` across workers and circulates *column
//! ownership* as lightweight tokens: whichever worker holds item `v`'s token
//! may update `θ_v` together with its own rows' `x_u`, then passes the token
//! on.  No locks are needed because a column is only ever owned by one
//! worker at a time, and row factors are private to their worker.
//!
//! This implementation reproduces that structure with OS threads and
//! crossbeam channels arranged in a ring.

use crate::als_util;
use crossbeam::channel::{unbounded, Receiver, Sender};
use cumf_core::{Engine, TrainMetrics};
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{split_ranges, Csc, Csr, Entry};
use rand::prelude::*;
use std::sync::Arc;

/// Hyper-parameters of the NOMAD solver.
#[derive(Debug, Clone, PartialEq)]
pub struct NomadConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub lambda: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub decay: f32,
    /// Number of workers (threads).
    pub workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NomadConfig {
    fn default() -> Self {
        Self {
            f: 32,
            // 0.05 closes the init→mean gap of the recalibrated full-span
            // ratings in a handful of epochs (0.02 was tuned when ratings
            // concentrated near 2.0 and needed smaller steps).
            learning_rate: 0.05,
            lambda: 0.05,
            decay: 0.9,
            workers: 4,
            seed: 42,
        }
    }
}

/// A column token: the item index, its factor vector and how many workers it
/// has visited this epoch.
struct ColumnToken {
    col: u32,
    theta_v: Vec<f32>,
    hops: usize,
}

/// Per-worker static data: for each column, the ratings `(local_row, value)`
/// owned by this worker (row indices are local to the worker's contiguous
/// row range, whose offset lives in `NomadSgd::row_ranges`).
struct WorkerData {
    /// ratings_by_col[v] lists this worker's ratings in column v.
    ratings_by_col: Vec<Vec<(u32, f32)>>,
}

/// NOMAD-style asynchronous SGD solver.
pub struct NomadSgd {
    config: NomadConfig,
    train_entries: Vec<Entry>,
    workers_data: Vec<WorkerData>,
    row_ranges: Vec<(u32, u32)>,
    x: FactorMatrix,
    theta: FactorMatrix,
    epoch: usize,
}

impl NomadSgd {
    /// Builds the solver, assigning each worker a contiguous range of rows.
    pub fn new(config: NomadConfig, r: &Csr) -> Self {
        assert!(config.workers >= 1, "at least one worker required");
        let workers = config.workers.min(r.n_rows().max(1) as usize);
        let row_ranges = split_ranges(r.n_rows(), workers).expect("row partition");
        let csc = Csc::from_csr(r);

        let workers_data: Vec<WorkerData> = row_ranges
            .iter()
            .map(|&(start, end)| {
                let mut ratings_by_col = vec![Vec::new(); r.n_cols() as usize];
                for v in 0..r.n_cols() {
                    let (rows, vals) = csc.col(v);
                    for (&u, &val) in rows.iter().zip(vals.iter()) {
                        if u >= start && u < end {
                            ratings_by_col[v as usize].push((u - start, val));
                        }
                    }
                }
                WorkerData { ratings_by_col }
            })
            .collect();

        let mean = als_util::mean_rating(r);
        let x = als_util::init_factors_to_mean(r.n_rows() as usize, config.f, config.seed, mean);
        let theta =
            als_util::init_factors_to_mean(r.n_cols() as usize, config.f, config.seed ^ 0x99, mean);
        Self {
            config,
            train_entries: r.iter().collect(),
            workers_data,
            row_ranges,
            x,
            theta,
            epoch: 0,
        }
    }

    /// Number of workers actually used.
    pub fn n_workers(&self) -> usize {
        self.row_ranges.len()
    }

    /// One epoch: every column token makes one full circle around the ring,
    /// so every rating is visited exactly once.
    pub fn epoch(&mut self) {
        let workers = self.n_workers();
        let f = self.config.f;
        let alpha = self.config.learning_rate * self.config.decay.powi(self.epoch as i32);
        let lambda = self.config.lambda;

        // Ring channels plus a collector for finished tokens.
        let (senders, receivers): (Vec<Sender<ColumnToken>>, Vec<Receiver<ColumnToken>>) =
            (0..workers).map(|_| unbounded()).unzip();
        let (done_tx, done_rx) = unbounded::<ColumnToken>();

        // Seed tokens round-robin, starting at a rotating offset so columns
        // do not always start at the same worker.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (self.epoch as u64 + 1));
        for v in 0..self.theta.len() as u32 {
            let start = rng.random_range(0..workers);
            let token = ColumnToken {
                col: v,
                theta_v: self.theta.vector(v as usize).to_vec(),
                hops: 0,
            };
            senders[start].send(token).expect("ring channel open");
        }

        // Split X into per-worker mutable chunks.
        let x_chunks: Vec<&mut [f32]> = {
            let mut out = Vec::with_capacity(workers);
            let mut rest = self.x.data_mut();
            for &(start, end) in &self.row_ranges {
                let len = (end - start) as usize * f;
                let (head, tail) = rest.split_at_mut(len);
                out.push(head);
                rest = tail;
            }
            out
        };

        let n_cols = self.theta.len();
        std::thread::scope(|scope| {
            for (w, x_chunk) in x_chunks.into_iter().enumerate() {
                let rx = receivers[w].clone();
                let next_tx = senders[(w + 1) % workers].clone();
                let done_tx = done_tx.clone();
                let data = &self.workers_data[w];
                scope.spawn(move || {
                    // Every token visits every worker exactly once per epoch,
                    // so each worker processes exactly n_cols tokens and then
                    // exits — no shutdown signalling needed.
                    for _ in 0..n_cols {
                        let Ok(mut token) = rx.recv() else { break };
                        let ratings = &data.ratings_by_col[token.col as usize];
                        for &(local_row, val) in ratings {
                            let xo = local_row as usize * f;
                            let xu = &mut x_chunk[xo..xo + f];
                            let err = val - dot(xu, &token.theta_v);
                            for (x_k, t_k) in xu.iter_mut().zip(token.theta_v.iter_mut()) {
                                let (xk, tk) = (*x_k, *t_k);
                                *x_k = xk + alpha * (err * tk - lambda * xk);
                                *t_k = tk + alpha * (err * xk - lambda * tk);
                            }
                        }
                        token.hops += 1;
                        if token.hops >= workers {
                            done_tx.send(token).ok();
                        } else {
                            next_tx.send(token).ok();
                        }
                    }
                });
            }
            // Collector: once every column's token has completed its circle,
            // write the updated θ back and drop the senders so workers exit.
            let mut collected = 0usize;
            while collected < n_cols {
                let token = done_rx.recv().expect("all tokens eventually finish");
                self.theta
                    .vector_mut(token.col as usize)
                    .copy_from_slice(&token.theta_v);
                collected += 1;
            }
            drop(senders);
        });

        self.epoch += 1;
    }
}

impl Engine for NomadSgd {
    fn name(&self) -> &'static str {
        "NOMAD (async SGD)"
    }

    fn train_sweep(&mut self) -> f64 {
        self.epoch();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.x.len(), "X has the wrong number of rows");
        assert_eq!(
            theta.len(),
            self.theta.len(),
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x = x;
        self.theta = theta;
    }

    fn attach_metrics(&mut self, _metrics: Arc<TrainMetrics>) {}

    fn train_rmse(&self) -> f64 {
        self.rmse(&self.train_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 200,
            n: 100,
            nnz: 7000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn nomad_converges() {
        let r = ratings();
        let mut solver = NomadSgd::new(
            NomadConfig {
                f: 8,
                workers: 4,
                ..Default::default()
            },
            &r,
        );
        let before = solver.train_rmse();
        for _ in 0..10 {
            solver.train_sweep();
        }
        let after = solver.train_rmse();
        assert!(
            after < before * 0.7,
            "NOMAD should converge: {before} -> {after}"
        );
    }

    #[test]
    fn single_worker_matches_plain_sgd_behaviour() {
        let r = ratings();
        let mut solver = NomadSgd::new(
            NomadConfig {
                f: 8,
                workers: 1,
                ..Default::default()
            },
            &r,
        );
        for _ in 0..5 {
            solver.train_sweep();
        }
        assert!(solver.train_rmse() < 0.6);
        assert_eq!(solver.n_workers(), 1);
    }

    #[test]
    fn worker_count_is_clamped() {
        let r = SyntheticConfig {
            m: 3,
            n: 50,
            nnz: 100,
            ..Default::default()
        }
        .generate()
        .to_csr();
        let solver = NomadSgd::new(
            NomadConfig {
                workers: 64,
                ..Default::default()
            },
            &r,
        );
        assert!(solver.n_workers() <= 3);
    }

    #[test]
    fn every_rating_is_indexed_once() {
        let r = ratings();
        let solver = NomadSgd::new(
            NomadConfig {
                workers: 4,
                ..Default::default()
            },
            &r,
        );
        let total: usize = solver
            .workers_data
            .iter()
            .flat_map(|w| w.ratings_by_col.iter().map(|c| c.len()))
            .sum();
        assert_eq!(total, r.nnz());
    }

    #[test]
    fn factors_stay_finite() {
        let r = ratings();
        let mut solver = NomadSgd::new(
            NomadConfig {
                f: 8,
                workers: 3,
                ..Default::default()
            },
            &r,
        );
        for _ in 0..5 {
            solver.train_sweep();
        }
        assert!(solver.x().data().iter().all(|v| v.is_finite()));
        assert!(solver.theta().data().iter().all(|v| v.is_finite()));
    }
}

//! Row-major dense matrices and factor matrices.

use rand::prelude::*;

/// A general row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose (allocates).
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Dense matrix multiply `self · other` (naive triple loop; only used for
    /// small matrices and test oracles).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute element-wise difference to another matrix of the same
    /// shape.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

/// A factor matrix: `n` latent vectors of dimension `f`, stored row-major so
/// that row `v` is the contiguous vector `θ_v` (or `x_u`).
///
/// This corresponds to `X` (m × f) and `Θ` (n × f) in the paper; the paper's
/// `Θᵀ` (f × n) is the same data viewed column-wise, which on the simulated
/// GPU is what the texture cache gathers.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorMatrix {
    n: usize,
    f: usize,
    data: Vec<f32>,
}

impl FactorMatrix {
    /// Zero-initialized factor matrix.
    pub fn zeros(n: usize, f: usize) -> Self {
        Self {
            n,
            f,
            data: vec![0.0; n * f],
        }
    }

    /// Random initialization with entries uniform in `[0, scale)`, matching
    /// the paper's "feature matrices are initiated with random numbers in
    /// [0, 1]" (scaled by `1/√f` by callers that want unit-norm rows).
    pub fn random(n: usize, f: usize, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..n * f).map(|_| rng.random::<f32>() * scale).collect();
        Self { n, f, data }
    }

    /// Random initialization with entries uniform in
    /// `[-half_width, half_width)` — zero-mean, so dot products of two such
    /// matrices are symmetric around zero (used by the synthetic generator
    /// to spread ratings across the whole rating range).
    pub fn random_centered(n: usize, f: usize, half_width: f32, seed: u64) -> Self {
        let mut m = Self::random(n, f, 2.0 * half_width, seed);
        for v in m.data_mut() {
            *v -= half_width;
        }
        m
    }

    /// Builds a factor matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != n * f`.
    pub fn from_vec(n: usize, f: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * f, "factor matrix data length mismatch");
        Self { n, f, data }
    }

    /// Number of latent vectors (users or items).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Latent dimensionality `f`.
    pub fn rank(&self) -> usize {
        self.f
    }

    /// Latent vector `v` as a slice of length `f`.
    #[inline]
    pub fn vector(&self, v: usize) -> &[f32] {
        &self.data[v * self.f..(v + 1) * self.f]
    }

    /// Mutable latent vector `v`.
    #[inline]
    pub fn vector_mut(&mut self, v: usize) -> &mut [f32] {
        &mut self.data[v * self.f..(v + 1) * self.f]
    }

    /// Underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Splits the matrix into mutable row chunks of at most `chunk_rows`
    /// vectors each — used to hand disjoint partitions to worker threads.
    pub fn chunks_mut(&mut self, chunk_rows: usize) -> impl Iterator<Item = &mut [f32]> {
        self.data.chunks_mut(chunk_rows * self.f)
    }

    /// Predicted rating `x_uᵀ θ_v` given the two factor matrices.
    pub fn predict(x: &FactorMatrix, theta: &FactorMatrix, u: usize, v: usize) -> f32 {
        crate::blas::dot(x.vector(u), theta.vector(v))
    }

    /// Memory footprint in 4-byte words (`n·f`), as used by the partition
    /// planner (equation (8) of the paper).
    pub fn footprint_words(&self) -> usize {
        self.n * self.f
    }

    /// Copies the contents of `other` into `self` (shapes must match).
    pub fn copy_from(&mut self, other: &FactorMatrix) {
        assert_eq!(self.n, other.n);
        assert_eq!(self.f, other.f);
        self.data.copy_from_slice(&other.data);
    }

    /// Appends the rows of `other` in place (ranks must match) — the
    /// grow-the-matrix primitive of the incremental fold-in/delta paths.
    pub fn append_rows(&mut self, other: &FactorMatrix) {
        assert_eq!(self.f, other.f, "appended rows have the wrong rank");
        self.data.extend_from_slice(&other.data);
        self.n += other.n;
    }

    /// Maximum absolute element-wise difference to another factor matrix.
    pub fn max_abs_diff(&self, other: &FactorMatrix) -> f32 {
        assert_eq!(self.n, other.n);
        assert_eq!(self.f, other.f);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn get_set_row() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.set(1, 0, 7.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.row(1), &[7.0, 0.0]);
        m.row_mut(1)[1] = 9.0;
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    fn transpose_and_matmul() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.get(2, 1), 6.0);
        // A·Aᵀ is 2x2: [[14, 32], [32, 77]]
        let aat = a.matmul(&at);
        assert_eq!(aat.get(0, 0), 14.0);
        assert_eq!(aat.get(0, 1), 32.0);
        assert_eq!(aat.get(1, 1), 77.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn frobenius_and_diff() {
        let a = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = DenseMatrix::from_vec(1, 2, vec![3.0, 6.0]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn factor_matrix_random_is_deterministic_and_in_range() {
        let a = FactorMatrix::random(10, 4, 1.0, 42);
        let b = FactorMatrix::random(10, 4, 1.0, 42);
        let c = FactorMatrix::random(10, 4, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn factor_matrix_accessors() {
        let mut x = FactorMatrix::zeros(3, 2);
        assert_eq!(x.len(), 3);
        assert_eq!(x.rank(), 2);
        assert_eq!(x.footprint_words(), 6);
        x.vector_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(x.vector(1), &[1.0, 2.0]);
        assert_eq!(x.vector(0), &[0.0, 0.0]);
    }

    #[test]
    fn predict_is_dot_product() {
        let mut x = FactorMatrix::zeros(1, 3);
        let mut t = FactorMatrix::zeros(1, 3);
        x.vector_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        t.vector_mut(0).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(FactorMatrix::predict(&x, &t, 0, 0), 32.0);
    }

    #[test]
    fn chunks_mut_partitions_rows() {
        let mut x = FactorMatrix::zeros(5, 2);
        let sizes: Vec<usize> = x.chunks_mut(2).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn copy_from_and_diff() {
        let a = FactorMatrix::random(4, 3, 1.0, 7);
        let mut b = FactorMatrix::zeros(4, 3);
        b.copy_from(&a);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn append_rows_grows_in_place() {
        let mut a = FactorMatrix::random(4, 3, 1.0, 8);
        let top = a.clone();
        let b = FactorMatrix::random(2, 3, 1.0, 9);
        a.append_rows(&b);
        assert_eq!(a.len(), 6);
        for v in 0..4 {
            assert_eq!(a.vector(v), top.vector(v));
        }
        assert_eq!(a.vector(4), b.vector(0));
        assert_eq!(a.vector(5), b.vector(1));
    }

    #[test]
    #[should_panic(expected = "wrong rank")]
    fn append_rows_rejects_rank_mismatch() {
        FactorMatrix::zeros(2, 3).append_rows(&FactorMatrix::zeros(2, 4));
    }
}

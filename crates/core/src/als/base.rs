//! Algorithm 1: the baseline ALS update.
//!
//! This is the numerical reference every other engine is checked against.
//! It has no notion of GPUs or memory hierarchies — it simply alternates the
//! two normal-equation solves until the configured number of iterations is
//! reached.

use crate::als::kernels::solve_side_instrumented;
use crate::config::AlsConfig;
use crate::instrument::TrainMetrics;
use crate::loss;
use cumf_linalg::FactorMatrix;
use cumf_sparse::Csr;
use std::sync::Arc;

/// The reference ALS engine (Algorithm 1 of the paper).
#[derive(Debug, Clone)]
pub struct BaseAls {
    config: AlsConfig,
    r: Csr,
    r_t: Csr,
    x: FactorMatrix,
    theta: FactorMatrix,
    metrics: Option<Arc<TrainMetrics>>,
}

impl BaseAls {
    /// Creates an engine for the given ratings; factor matrices are
    /// initialized with uniform random numbers in `[0, 1/√f)` (the paper
    /// initializes in `[0, 1]`; the `1/√f` scaling keeps initial predictions
    /// in the rating range for any `f`).
    pub fn new(config: AlsConfig, r: Csr) -> Self {
        config.validate();
        let f = config.f;
        let scale = 1.0 / (f as f32).sqrt();
        let x = FactorMatrix::random(r.n_rows() as usize, f, scale, config.seed);
        let theta = FactorMatrix::random(r.n_cols() as usize, f, scale, config.seed ^ 0xDEAD_BEEF);
        let r_t = r.transpose();
        Self {
            config,
            r,
            r_t,
            x,
            theta,
            metrics: None,
        }
    }

    /// Attaches a shared [`TrainMetrics`] sink: every subsequent
    /// half-iteration records its per-row assembly/solve phases and whole
    /// `solve_side` latency there.
    pub fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AlsConfig {
        &self.config
    }

    /// Current user factors `X`.
    pub fn x(&self) -> &FactorMatrix {
        &self.x
    }

    /// Current item factors `Θ`.
    pub fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    /// The training ratings.
    pub fn ratings(&self) -> &Csr {
        &self.r
    }

    /// Replaces the current factors (used to resume from a checkpoint).
    pub fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(
            x.len(),
            self.r.n_rows() as usize,
            "X has the wrong number of rows"
        );
        assert_eq!(
            theta.len(),
            self.r.n_cols() as usize,
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x = x;
        self.theta = theta;
    }

    /// Runs one full ALS iteration: update `X` with `Θ` fixed, then update
    /// `Θ` with `X` fixed (both halves of Algorithm 1).
    pub fn iterate(&mut self) {
        self.update_x();
        self.update_theta();
    }

    /// Runs only the update-X half (used by equivalence tests).
    pub fn update_x(&mut self) {
        self.x = solve_side_instrumented(
            &self.r,
            &self.theta,
            self.config.lambda,
            self.metrics.as_deref(),
        );
    }

    /// Runs only the update-Θ half.
    pub fn update_theta(&mut self) {
        self.theta = solve_side_instrumented(
            &self.r_t,
            &self.x,
            self.config.lambda,
            self.metrics.as_deref(),
        );
    }

    /// Training RMSE of the current factors.
    pub fn train_rmse(&self) -> f64 {
        loss::rmse_csr(&self.x, &self.theta, &self.r)
    }

    /// The regularized objective `J` of equation (1).
    pub fn objective(&self) -> f64 {
        loss::objective(&self.x, &self.theta, &self.r, self.config.lambda)
    }
}

impl crate::engine::Engine for BaseAls {
    fn name(&self) -> &'static str {
        "base-als"
    }

    fn train_sweep(&mut self) -> f64 {
        self.iterate();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        BaseAls::set_factors(self, x, theta);
    }

    fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        BaseAls::attach_metrics(self, metrics);
    }

    fn metrics(&self) -> Option<&TrainMetrics> {
        self.metrics.as_deref()
    }

    fn train_rmse(&self) -> f64 {
        BaseAls::train_rmse(self)
    }
}

impl crate::engine::IncrementalEngine for BaseAls {
    fn fold_in_lambda(&self) -> f32 {
        self.config.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn engine(f: usize, iterations: usize) -> BaseAls {
        let data = SyntheticConfig {
            m: 200,
            n: 100,
            nnz: 6000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate();
        let config = AlsConfig {
            f,
            lambda: 0.05,
            iterations,
            track_rmse: true,
            ..Default::default()
        };
        BaseAls::new(config, data.to_csr())
    }

    #[test]
    fn objective_is_non_increasing_over_iterations() {
        let mut e = engine(8, 5);
        let mut prev = e.objective();
        for _ in 0..5 {
            e.iterate();
            let j = e.objective();
            assert!(
                j <= prev * (1.0 + 1e-6),
                "objective must not increase: {prev} -> {j}"
            );
            prev = j;
        }
    }

    #[test]
    fn training_rmse_drops_substantially() {
        let mut e = engine(8, 5);
        let before = e.train_rmse();
        for _ in 0..5 {
            e.iterate();
        }
        let after = e.train_rmse();
        assert!(
            after < before * 0.5,
            "RMSE should at least halve: {before} -> {after}"
        );
        assert!(
            after < 0.5,
            "absolute training RMSE should be small, got {after}"
        );
    }

    #[test]
    fn half_iterations_each_reduce_objective() {
        let mut e = engine(8, 2);
        let j0 = e.objective();
        e.update_x();
        let j1 = e.objective();
        assert!(j1 <= j0 * (1.0 + 1e-6));
        e.update_theta();
        let j2 = e.objective();
        assert!(j2 <= j1 * (1.0 + 1e-6));
    }

    #[test]
    fn set_factors_roundtrip() {
        let mut e = engine(8, 2);
        e.iterate();
        let x = e.x().clone();
        let theta = e.theta().clone();
        let mut e2 = engine(8, 2);
        e2.set_factors(x.clone(), theta.clone());
        assert_eq!(e2.x().max_abs_diff(&x), 0.0);
        assert_eq!(e2.theta().max_abs_diff(&theta), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong rank")]
    fn set_factors_validates_rank() {
        let mut e = engine(8, 2);
        e.set_factors(FactorMatrix::zeros(200, 4), FactorMatrix::zeros(100, 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = engine(6, 2);
        let mut b = engine(6, 2);
        a.iterate();
        b.iterate();
        assert!(a.x().max_abs_diff(b.x()) < 1e-6);
        assert!(a.theta().max_abs_diff(b.theta()) < 1e-6);
    }
}

//! A Netflix-like movie recommender built on the cumf-rs public API.
//!
//! This is the workload the cuMF paper's introduction motivates:
//! collaborative filtering for an e-commerce / streaming catalogue.  The
//! example generates a scaled-down instance of the Netflix data set
//! (Table 5 of the paper), trains with the paper's hyper-parameters, and
//! evaluates both RMSE and a simple top-N hit-rate.
//!
//! Run with:
//! ```text
//! cargo run --release --example movie_recommender
//! ```

use cumf_core::config::AlsConfig;
use cumf_core::trainer::{Backend, MatrixFactorizer};
use cumf_data::datasets::PaperDataset;
use cumf_data::synth::SyntheticConfig;
use cumf_data::train_test_split;
use std::collections::HashMap;

fn main() {
    // A 1/200-scale Netflix: ~2 400 users, ~90 movies-per-user on average.
    let spec = PaperDataset::Netflix.spec().scaled(0.005);
    println!(
        "scaled Netflix: m = {}, n = {}, Nz = {} (full scale: m = 480 189, n = 17 770, Nz = 99 M)",
        spec.m, spec.n, spec.nz
    );
    let data = SyntheticConfig {
        rank: 12,
        noise_std: 0.25,
        ..SyntheticConfig::from_spec(&spec, 2024)
    }
    .generate();
    let split = train_test_split(&data.ratings, 0.15, 11);

    // The paper's Netflix hyper-parameters are f = 100, λ = 0.05; a smaller
    // rank keeps the example fast while preserving the workflow.
    let config = AlsConfig {
        f: 32,
        lambda: 0.05,
        iterations: 10,
        ..Default::default()
    };
    let mut model = MatrixFactorizer::new(config, Backend::single_gpu());
    let report = model.fit(&split.train, &split.test);

    println!("\nconvergence (test RMSE vs simulated GPU time):");
    for rec in &report.iterations {
        println!(
            "  iter {:2}: test RMSE {:.4} @ {:.3} simulated s",
            rec.iteration, rec.test_rmse, rec.cumulative_sim_time_s
        );
    }

    // Top-N evaluation: for users whose held-out ratings fall in the top
    // quartile of the test set ("well-liked"), check how often one of those
    // movies appears in the top-10.  The cutoff is data-driven because the
    // generator's ratings concentrate near the low end of the scale; a fixed
    // 4.0 cutoff selects almost nothing.
    let mut vals: Vec<f32> = split.test.iter().map(|e| e.val).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let liked_cutoff = vals[(vals.len() * 3) / 4];
    let mut held_out: HashMap<u32, Vec<u32>> = HashMap::new();
    for e in &split.test {
        if e.val >= liked_cutoff {
            held_out.entry(e.row).or_default().push(e.col);
        }
    }
    let mut hits = 0usize;
    let mut evaluated = 0usize;
    for (&user, liked) in held_out.iter().take(500) {
        let (seen, _) = split.train.row(user);
        let recs = model.recommend(user, 10, seen);
        evaluated += 1;
        if recs.iter().any(|(item, _)| liked.contains(item)) {
            hits += 1;
        }
    }
    let hit_rate = if evaluated == 0 {
        0.0
    } else {
        hits as f64 / evaluated as f64
    };

    println!("\nfinal test RMSE: {:.4}", report.final_test_rmse());
    println!(
        "top-10 hit rate over {evaluated} users with well-liked held-out movies: {:.1} %",
        100.0 * hit_rate
    );

    // Show one user's profile: what they rated highly vs what we recommend.
    if let Some((&user, _)) = held_out.iter().next() {
        let (seen_items, seen_vals) = split.train.row(user);
        let mut rated: Vec<(u32, f32)> = seen_items
            .iter()
            .copied()
            .zip(seen_vals.iter().copied())
            .collect();
        rated.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!(
            "\nuser {user}: highest-rated training movies: {:?}",
            &rated[..rated.len().min(5)]
        );
        println!(
            "user {user}: top-5 recommendations: {:?}",
            model.recommend(user, 5, seen_items)
        );
    }
}

//! Synthetic rating-matrix generator.
//!
//! The generator follows the structure the paper's data sets share:
//!
//! * ratings are explained by a low-rank model plus noise (this is the whole
//!   premise of MF), so ALS on the synthetic data converges the way it does
//!   on the real data;
//! * item popularity and user activity follow power laws (the "skewed
//!   ratings" the paper warns about for SparkALS-style partial replication),
//!   controlled by Zipf exponents;
//! * the very large Table 5 workloads were themselves synthesized by the
//!   original authors by duplicating the Amazon Reviews data, so a synthetic
//!   stand-in is faithful to the paper's own methodology (§5.1).

use crate::datasets::DatasetSpec;
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Coo, Csr};
use rand::prelude::*;
use rayon::prelude::*;
use std::collections::HashSet;

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of users (rows of `R`).
    pub m: u32,
    /// Number of items (columns of `R`).
    pub n: u32,
    /// Target number of ratings; the generated count may differ by a few
    /// per cent because degrees are drawn per user.
    pub nnz: usize,
    /// Rank of the ground-truth model.
    pub rank: usize,
    /// Standard deviation of the additive Gaussian noise on each rating.
    pub noise_std: f32,
    /// Zipf exponent of item popularity (0 = uniform; ~1 = strongly skewed).
    pub item_zipf: f64,
    /// Zipf exponent of user activity.
    pub user_zipf: f64,
    /// Smallest possible rating value.
    pub rating_min: f32,
    /// Largest possible rating value.
    pub rating_max: f32,
    /// RNG seed; the same seed always produces the same data set.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            m: 1000,
            n: 500,
            nnz: 50_000,
            rank: 8,
            noise_std: 0.1,
            item_zipf: 0.8,
            user_zipf: 0.6,
            rating_min: 1.0,
            rating_max: 5.0,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// Builds a generator configuration from a (scaled) Table 5 descriptor.
    ///
    /// The descriptor's `m`, `n` and `Nz` are taken verbatim, so pass a
    /// [`DatasetSpec::scaled`] instance for anything larger than a few
    /// million ratings.
    pub fn from_spec(spec: &DatasetSpec, seed: u64) -> Self {
        Self {
            m: u32::try_from(spec.m).expect("scale the dataset down before generating"),
            n: u32::try_from(spec.n).expect("scale the dataset down before generating"),
            nnz: usize::try_from(spec.nz).expect("scale the dataset down before generating"),
            rank: 8,
            seed,
            ..Self::default()
        }
    }

    /// Generates the data set.
    pub fn generate(&self) -> SyntheticDataset {
        assert!(self.m > 0 && self.n > 0, "matrix must be non-empty");
        assert!(self.rank > 0, "ground-truth rank must be positive");
        assert!(
            self.nnz as u64 <= self.m as u64 * self.n as u64,
            "cannot place more ratings than cells"
        );

        // Zero-mean ground-truth factors sized so that `x·θ` has standard
        // deviation ≈ span/4: ratings center on the midpoint of
        // `[rating_min, rating_max]` and ±2σ reaches both ends of the range
        // (the tails clamp).  Earlier revisions anchored ratings at
        // `rating_min + E[x·θ]` ≈ 2.0, which left the upper range almost
        // unused and ranking metrics with near-empty relevant sets.
        let half_width = self.factor_half_width();
        let true_x = FactorMatrix::random_centered(
            self.m as usize,
            self.rank,
            half_width,
            self.seed ^ 0x9e37,
        );
        let true_theta = FactorMatrix::random_centered(
            self.n as usize,
            self.rank,
            half_width,
            self.seed ^ 0x7f4a_7c15,
        );

        // Per-user degrees proportional to Zipf weights over a shuffled rank
        // order (so user ids are not correlated with activity).
        let degrees = self.sample_degrees();

        // Item-popularity distribution as a Walker/Vose alias table: O(n)
        // to build once, O(1) per draw.  The per-user rejection loop below
        // draws up to 20× the row degree, so the draw cost dominates
        // generation; the binary search over a cumulative distribution this
        // replaces made every draw O(log n) and was the remaining serial
        // hot spot *within* each user's row of the integration suites.
        let item_dist = AliasTable::from_zipf(self.n as usize, self.item_zipf);

        // Generate each user's ratings independently over rayon
        // (deterministic per-row seeding keeps the result identical
        // regardless of thread count or split points).
        let rows: Vec<Vec<(u32, f32)>> = (0..self.m as usize)
            .into_par_iter()
            .map(|u| {
                let mut rng = StdRng::seed_from_u64(
                    self.seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let degree = degrees[u].min(self.n as usize);
                let mut cols: HashSet<u32> = HashSet::with_capacity(degree * 2);
                // Rejection-sample distinct columns from the popularity
                // table; fall back to uniform once the row is nearly full.
                let mut attempts = 0usize;
                while cols.len() < degree {
                    let v = if attempts < degree * 20 {
                        item_dist.sample(&mut rng)
                    } else {
                        rng.random_range(0..self.n)
                    };
                    cols.insert(v);
                    attempts += 1;
                    if attempts > degree * 40 + self.n as usize {
                        break;
                    }
                }
                // Sort the chosen columns before drawing noise so the result
                // is independent of HashSet iteration order.
                let mut chosen: Vec<u32> = cols.into_iter().collect();
                chosen.sort_unstable();
                chosen
                    .into_iter()
                    .map(|v| {
                        let mean =
                            self.mean_rating(dot(true_x.vector(u), true_theta.vector(v as usize)));
                        let noise = gaussian(&mut rng) * self.noise_std;
                        let r = (mean + noise).clamp(self.rating_min, self.rating_max);
                        (v, r)
                    })
                    .collect()
            })
            .collect();

        let mut coo = Coo::with_capacity(self.m, self.n, rows.iter().map(Vec::len).sum());
        for (u, row) in rows.iter().enumerate() {
            for &(v, r) in row {
                coo.push(u as u32, v, r)
                    .expect("generated indices are in range");
            }
        }

        SyntheticDataset {
            ratings: coo,
            true_x,
            true_theta,
            config: self.clone(),
        }
    }

    /// The rating implied by a ground-truth dot product, before noise and
    /// clamping: the midpoint of the rating range plus the (zero-mean) dot.
    pub fn mean_rating(&self, dot: f32) -> f32 {
        (self.rating_min + self.rating_max) / 2.0 + dot
    }

    /// Half-width of the centered uniform factor entries: chosen so the
    /// rank-term dot product has standard deviation ≈ a quarter of the
    /// rating span (entries uniform on `[-a, a)` give
    /// `Var(x·θ) = rank · a⁴ / 9`).
    pub(crate) fn factor_half_width(&self) -> f32 {
        let span = (self.rating_max - self.rating_min).max(1e-3);
        (3.0 * span / (4.0 * (self.rank as f32).sqrt())).sqrt()
    }

    /// Draws per-user degrees whose sum approximates `nnz`.
    fn sample_degrees(&self) -> Vec<usize> {
        let m = self.m as usize;
        let mut weights: Vec<f64> = (0..m)
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.user_zipf))
            .collect();
        // Shuffle so user id does not encode activity.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5);
        for i in (1..m).rev() {
            let j = rng.random_range(0..=i);
            weights.swap(i, j);
        }
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| {
                let d = (w / total * self.nnz as f64).round() as usize;
                d.clamp(1, self.n as usize)
            })
            .collect()
    }
}

/// A generated data set: the sparse ratings plus the ground truth that
/// produced them (useful for checking that MF recovers the model).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated ratings.
    pub ratings: Coo,
    /// Ground-truth user factors.
    pub true_x: FactorMatrix,
    /// Ground-truth item factors.
    pub true_theta: FactorMatrix,
    /// The configuration that generated this data set.
    pub config: SyntheticConfig,
}

impl SyntheticDataset {
    /// The ratings in CSR form.
    pub fn to_csr(&self) -> Csr {
        self.ratings.to_csr()
    }

    /// Root-mean-square error of the *ground-truth* model on the generated
    /// ratings — the noise floor no factorization can beat on average.
    pub fn noise_floor_rmse(&self) -> f64 {
        let mut se = 0.0f64;
        let mut count = 0usize;
        for e in self.ratings.entries() {
            let pred = self.config.mean_rating(dot(
                self.true_x.vector(e.row as usize),
                self.true_theta.vector(e.col as usize),
            ));
            let pred = pred.clamp(self.config.rating_min, self.config.rating_max);
            se += ((e.val - pred) as f64).powi(2);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            (se / count as f64).sqrt()
        }
    }
}

/// Walker/Vose alias table: draws from an arbitrary discrete distribution
/// in O(1) per sample (one uniform, one table probe) after an O(n) build.
///
/// Replaces inverse-CDF binary search on the generator's hot path; the two
/// methods sample the *same* distribution, though a given RNG stream maps
/// to different items, so regenerated data sets differ from pre-alias
/// revisions (determinism per seed is unaffected).
#[derive(Debug, Clone)]
pub(crate) struct AliasTable {
    /// Per-cell acceptance threshold in `[0, 1]`.
    prob: Vec<f64>,
    /// Donor index used when a cell rejects.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table for `weights` (need not be normalized; must be
    /// non-empty with a positive sum).
    pub(crate) fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs a positive weight sum");
        let mut scaled: Vec<f64> = weights.iter().map(|w| w / total * n as f64).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let Some(s) = small.pop() {
            let Some(l) = large.pop() else {
                // Numerical leftover: an effectively exactly-1 cell.
                prob[s as usize] = 1.0;
                continue;
            };
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining large cells are exactly-1 cells.
        for i in large {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// The table for a Zipf distribution over `n` items with the given
    /// exponent (0 = uniform).
    pub(crate) fn from_zipf(n: usize, exponent: f64) -> Self {
        let weights: Vec<f64> = (0..n)
            .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
            .collect();
        Self::new(&weights)
    }

    /// Draws one index using a single uniform: the integer part picks the
    /// cell, the fractional part decides cell-vs-alias.
    pub(crate) fn sample(&self, rng: &mut StdRng) -> u32 {
        let n = self.prob.len();
        let r = rng.random::<f64>() * n as f64;
        let i = (r as usize).min(n - 1);
        let frac = r - i as f64;
        if frac < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// A standard-normal sample via Box–Muller (avoids an extra dependency).
pub(crate) fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::PaperDataset;
    use cumf_sparse::stats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig {
            m: 200,
            n: 100,
            nnz: 4000,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.ratings.entries(), b.ratings.entries());
        assert_eq!(a.true_x, b.true_x);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig {
            m: 200,
            n: 100,
            nnz: 4000,
            ..Default::default()
        };
        let other = SyntheticConfig {
            seed: 7,
            ..cfg.clone()
        };
        assert_ne!(
            cfg.generate().ratings.entries(),
            other.generate().ratings.entries()
        );
    }

    #[test]
    fn nnz_is_close_to_target() {
        let cfg = SyntheticConfig {
            m: 500,
            n: 300,
            nnz: 20_000,
            ..Default::default()
        };
        let d = cfg.generate();
        let got = d.ratings.nnz() as f64;
        assert!(got > 15_000.0 && got < 25_000.0, "nnz = {got}");
    }

    #[test]
    fn ratings_are_within_range_and_indices_valid() {
        let cfg = SyntheticConfig {
            m: 300,
            n: 150,
            nnz: 9000,
            ..Default::default()
        };
        let d = cfg.generate();
        for e in d.ratings.entries() {
            assert!(e.row < cfg.m && e.col < cfg.n);
            assert!(e.val >= cfg.rating_min && e.val <= cfg.rating_max);
        }
    }

    #[test]
    fn no_duplicate_coordinates_within_a_row() {
        let cfg = SyntheticConfig {
            m: 100,
            n: 60,
            nnz: 3000,
            ..Default::default()
        };
        let csr = cfg.generate().to_csr();
        for u in 0..csr.n_rows() {
            let (cols, _) = csr.row(u);
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "duplicate or unsorted column in row {u}");
            }
        }
    }

    #[test]
    fn item_popularity_is_skewed() {
        let cfg = SyntheticConfig {
            m: 2000,
            n: 500,
            nnz: 60_000,
            item_zipf: 1.0,
            ..Default::default()
        };
        let csr = cfg.generate().to_csr();
        let degrees = stats::col_degrees(&csr);
        let max = *degrees.iter().max().unwrap() as f64;
        let mean = csr.nnz() as f64 / cfg.n as f64;
        assert!(
            max > 4.0 * mean,
            "max {max} vs mean {mean}: popularity should be skewed"
        );
    }

    #[test]
    fn every_user_has_at_least_one_rating() {
        let cfg = SyntheticConfig {
            m: 400,
            n: 200,
            nnz: 8000,
            ..Default::default()
        };
        let csr = cfg.generate().to_csr();
        let s = stats::row_stats(&csr);
        assert_eq!(s.empty, 0);
    }

    #[test]
    fn ratings_span_the_whole_rating_range() {
        let cfg = SyntheticConfig {
            m: 500,
            n: 250,
            nnz: 20_000,
            ..Default::default()
        };
        let d = cfg.generate();
        let vals: Vec<f32> = d.ratings.entries().iter().map(|e| e.val).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let mid = (cfg.rating_min + cfg.rating_max) / 2.0;
        let span = cfg.rating_max - cfg.rating_min;
        assert!(
            (mean - mid).abs() < 0.15 * span,
            "ratings should center on the midpoint: mean {mean} vs mid {mid}"
        );
        // Both the bottom and top quarters of the range are populated.
        let low = vals
            .iter()
            .filter(|&&v| v < cfg.rating_min + 0.25 * span)
            .count();
        let high = vals
            .iter()
            .filter(|&&v| v > cfg.rating_max - 0.25 * span)
            .count();
        let n = vals.len();
        assert!(low * 20 > n, "only {low}/{n} ratings in the bottom quarter");
        assert!(high * 20 > n, "only {high}/{n} ratings in the top quarter");
        // And the extremes are actually reachable.
        assert!(vals.contains(&cfg.rating_min));
        assert!(vals.contains(&cfg.rating_max));
    }

    #[test]
    fn noise_floor_tracks_noise_std() {
        let quiet = SyntheticConfig {
            m: 300,
            n: 150,
            nnz: 10_000,
            noise_std: 0.01,
            ..Default::default()
        };
        let loud = SyntheticConfig {
            m: 300,
            n: 150,
            nnz: 10_000,
            noise_std: 0.5,
            ..Default::default()
        };
        let rq = quiet.generate().noise_floor_rmse();
        let rl = loud.generate().noise_floor_rmse();
        assert!(rq < 0.05, "quiet noise floor {rq}");
        assert!(rl > rq * 3.0, "loud {rl} vs quiet {rq}");
    }

    #[test]
    fn from_spec_uses_scaled_dimensions() {
        let spec = PaperDataset::Netflix.spec().scaled(0.002);
        let cfg = SyntheticConfig::from_spec(&spec, 1);
        assert_eq!(cfg.m as u64, spec.m);
        assert_eq!(cfg.n as u64, spec.n);
        assert_eq!(cfg.nnz as u64, spec.nz);
        let d = cfg.generate();
        assert!(d.ratings.nnz() > 0);
    }

    #[test]
    fn alias_table_cells_are_consistent() {
        let table = AliasTable::from_zipf(100, 0.9);
        assert_eq!(table.prob.len(), 100);
        for (i, &p) in table.prob.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(&p), "cell {i}: {p}");
            assert!((table.alias[i] as usize) < 100);
        }
        // Per-cell masses reassemble the normalized weights exactly: cell i
        // contributes prob[i]/n to item i and (1-prob[i])/n to alias[i].
        let n = 100usize;
        let mut mass = vec![0.0f64; n];
        for i in 0..n {
            mass[i] += table.prob[i] / n as f64;
            mass[table.alias[i] as usize] += (1.0 - table.prob[i]) / n as f64;
        }
        let total: f64 = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(0.9)).sum();
        for (k, &m) in mass.iter().enumerate() {
            let expect = 1.0 / ((k + 1) as f64).powf(0.9) / total;
            assert!((m - expect).abs() < 1e-12, "item {k}: {m} vs {expect}");
        }
    }

    #[test]
    fn alias_sampling_tracks_the_zipf_weights() {
        let table = AliasTable::from_zipf(50, 1.0);
        let mut rng = StdRng::seed_from_u64(77);
        let mut counts = [0u32; 50];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = (0..50).map(|k| 1.0 / (k + 1) as f64).sum();
        for k in [0usize, 1, 5, 20] {
            let expect = 1.0 / (k + 1) as f64 / total * draws as f64;
            let got = counts[k] as f64;
            assert!(
                (got - expect).abs() < 0.1 * expect + 30.0,
                "item {k}: {got} draws vs expected {expect}"
            );
        }
        // Sampling is deterministic per RNG stream.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut a), table.sample(&mut b));
        }
    }

    #[test]
    fn alias_table_handles_degenerate_weights() {
        // A single item always wins; an all-equal table is uniform.
        let one = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(one.sample(&mut rng), 0);
        }
        let flat = AliasTable::new(&[1.0; 8]);
        for p in &flat.prob {
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place more ratings")]
    fn too_many_ratings_panics() {
        SyntheticConfig {
            m: 10,
            n: 10,
            nnz: 101,
            ..Default::default()
        }
        .generate();
    }
}

//! Seeded-fixture serve crate: panics on the request path.
pub mod cache;

pub fn lookup(v: &[u32], i: usize) -> u32 {
    *v.get(i).unwrap()
}

pub fn described(v: &[u32]) -> u32 {
    *v.first().expect("fixture: non-empty")
}

#[cfg(all(test, cumf_model_check))]
mod model_tests {
    #[test]
    fn model_only_unwrap_is_exempt() {
        let v = [1u32];
        let _ = *v.first().unwrap(); // IN_TEST_MOD
    }
}

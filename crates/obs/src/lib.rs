//! # cumf-obs — observability substrate for cumf-rs
//!
//! The source paper's speedups were found with a profiler: the Hermitian
//! assembly was memory-bound, the factor transfers aliased, and the fixes
//! followed from *measuring where time went*.  This crate is the
//! reproduction's equivalent substrate — the serving tier and the trainer
//! both stamp their stage timings into it, and every later performance or
//! freshness claim in the roadmap is measured through it.
//!
//! Three small, dependency-free modules:
//!
//! * [`histogram`] — wait-free, log-bucketed HDR-style histograms
//!   ([`Histogram::record_ns`] from any thread, `quantile(p)` within
//!   6.25 %, exact counts/sums/max, mergeable, windowed diffing via
//!   [`HistogramSnapshot::since`]).
//! * [`span`] — [`Span`] stage timers, per-request [`Trace`]s with
//!   origin-relative [`TraceEvent`]s, 1-in-N [`Sampler`] admission so hot
//!   paths stay allocation-free, and a ring-buffer [`TraceLog`] rendering
//!   JSONL.
//! * [`exporter`] — renders metric sets as Prometheus text or a flat JSON
//!   object with CI-assertable keys (`foo_p50_ns`, `foo_p99_ns`, …).

#![forbid(unsafe_code)]
pub mod exporter;
pub mod histogram;
pub mod span;
pub mod sync;

pub use exporter::{Exporter, MetricValue, EXPORT_QUANTILES};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS, SUB_BUCKET_BITS};
pub use span::{ns_between, Sampler, Span, Trace, TraceEvent, TraceLog};

//! Bounded top-k selection over scored items.
//!
//! Retrieval ranks every candidate item for a user but only ever returns the
//! `k` best.  Sorting all `n` scores costs `O(n log n)` and materializes the
//! whole score vector; the bounded min-heap here costs `O(n log k)` with
//! `O(k)` state, which is what makes blocked scoring over 100k+ item
//! catalogs cheap.  [`retrieve_top_k`] drives the heap over item blocks via
//! [`crate::batch::batch_score_block`] — this is the single-request serving
//! path that both `MatrixFactorizer::recommend` and the `cumf-serve` batch
//! scorer share.

use crate::batch::{batch_score_block, batch_score_segment, SegmentView};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of items scored per block in [`retrieve_top_k`].  512 vectors of
/// `f ≤ 128` floats keep the block within L2 while amortizing heap checks.
pub const DEFAULT_ITEM_BLOCK: usize = 512;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    item: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score = "greater" so BinaryHeap (a max-heap) keeps the
        // *worst* kept item at the top, ready for eviction.  Ties break
        // toward evicting the larger item id, so results prefer small ids —
        // deterministic regardless of scoring order.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded min-heap keeping the `k` highest-scored items seen so far.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Scored>,
}

impl TopK {
    /// Creates an accumulator for the best `k` items.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one scored item; keeps it only if it beats the current k-th
    /// best.  NaN scores are rejected.
    #[inline]
    pub fn push(&mut self, item: u32, score: f32) {
        if score.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Scored { score, item });
            return;
        }
        let worst = self.heap.peek().expect("heap is non-empty when full");
        let candidate = Scored { score, item };
        // `worst` sorts "greater" when its score is lower (see `Ord`).
        if *worst > candidate {
            self.heap.pop();
            self.heap.push(candidate);
        }
    }

    /// Lowest score currently kept, if the heap is full (useful for
    /// short-circuiting whole blocks of low-scoring candidates).
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|s| s.score)
        }
    }

    /// Number of items currently held (`≤ k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no item has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the heap, returning `(item, score)` sorted by score
    /// descending (ties by item id ascending).
    pub fn into_sorted_vec(self) -> Vec<(u32, f32)> {
        let mut v: Vec<Scored> = self.heap.into_vec();
        v.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
        v.into_iter().map(|s| (s.item, s.score)).collect()
    }
}

/// Relative slack applied to the Cauchy–Schwarz bound `‖x‖·max‖θ‖` before
/// comparing it against a heap [`TopK::threshold`].  The exact bound already
/// dominates every exact dot product in the block; the slack additionally
/// covers the `O(f·ε)` rounding of the four-lane f32 kernel (and of the
/// norms themselves), so a block is only ever skipped when **no** computed
/// score in it could enter the heap — pruning never changes results.
pub const NORM_BOUND_SLACK: f32 = 1.0 + 1e-3;

/// Per-block maxima of item L2 norms for `item_block`-sized blocks — the
/// precomputed side of threshold pruning ([`retrieve_top_k_pruned`]): block
/// `b` covers items `[b·item_block, (b+1)·item_block)` and no item in it can
/// score above `‖x_u‖ · block_max[b]`.
pub fn block_max_norms(item_norms: &[f32], item_block: usize) -> Vec<f32> {
    assert!(item_block > 0, "item block must be positive");
    item_norms
        .chunks(item_block)
        .map(|block| block.iter().fold(0.0f32, |m, &n| m.max(n)))
        .collect()
}

/// L2 norms of every row of a row-major factor table (`‖θ_v‖` per item).
pub fn item_norms(items: &[f32], f: usize) -> Vec<f32> {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(items.len() % f, 0, "item buffer not a multiple of f");
    items
        .chunks_exact(f)
        .map(|v| crate::blas::norm_sq(v).sqrt())
        .collect()
}

/// Effectiveness counters of whole-block threshold pruning: how many item
/// blocks were actually scored versus skipped on the Cauchy–Schwarz bound.
///
/// A norm-descending item layout clusters high-norm items into the first
/// blocks, so the heap threshold rises early and the long low-norm tail is
/// skipped **systematically**; in catalog order the same pruning is
/// data-dependent.  These counters make that difference measurable (and
/// testable) without changing a single result — pruning is exact either
/// way.
///
/// Approximate retrieval ([`retrieve_top_k_segments_approx`]) adds a third
/// outcome: blocks skipped because an [`ApproxPolicy`] **terminated** the
/// scan early.  Those skips may change results (that is the point of
/// approximation), so they are counted in their own field — an exact-mode
/// dashboard reading `pruned_fraction()` stays truthful when a deployment
/// mixes in approximate traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Item blocks whose factors were streamed and scored.
    pub blocks_scored: u64,
    /// Item blocks skipped whole on the norm bound — an **exact** decision
    /// that can never change results.
    pub blocks_pruned: u64,
    /// Item blocks skipped because an [`ApproxPolicy`] ended the scan early
    /// (epsilon slack or block budget) — an **approximate** decision; always
    /// 0 on the exact retrieval paths.
    pub blocks_terminated: u64,
    /// Factor bytes streamed from memory by the scan: f32 bytes for plain
    /// segments, encoded bytes (plus scales) for quantized ones, and the
    /// exact f32 rows re-read by the rerank pass.  The numerator of the
    /// bytes-per-query metric the quantized path exists to shrink.
    pub bytes_scanned: u64,
    /// Candidates rescored against exact f32 rows by a quantized scan's
    /// rerank pass; always 0 on full-precision paths.
    pub rerank_candidates: u64,
    /// Wall nanoseconds the rerank pass took (filled by the serving tier's
    /// scorer; 0 when no rerank ran).  Merging sums, so a batch-level value
    /// is the total rerank time across its tiles.
    pub rerank_ns: u64,
}

impl PruneStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &PruneStats) {
        self.blocks_scored += other.blocks_scored;
        self.blocks_pruned += other.blocks_pruned;
        self.blocks_terminated += other.blocks_terminated;
        self.bytes_scanned += other.bytes_scanned;
        self.rerank_candidates += other.rerank_candidates;
        self.rerank_ns += other.rerank_ns;
    }

    /// Every block the scan made a decision about (scored, pruned, or
    /// terminated).
    pub fn blocks_visited(&self) -> u64 {
        self.blocks_scored + self.blocks_pruned + self.blocks_terminated
    }

    /// Fraction of visited blocks skipped by **exact** threshold pruning
    /// (`0.0` when none were visited).  Early-terminated blocks count in
    /// the denominator but not the numerator — approximate skips do not
    /// inflate the exact-pruning rate.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.blocks_visited();
        if total == 0 {
            0.0
        } else {
            self.blocks_pruned as f64 / total as f64
        }
    }

    /// Fraction of visited blocks skipped by **approximate** early
    /// termination (`0.0` when none were visited).
    pub fn terminated_fraction(&self) -> f64 {
        let total = self.blocks_visited();
        if total == 0 {
            0.0
        } else {
            self.blocks_terminated as f64 / total as f64
        }
    }
}

/// Knobs of approximate top-k retrieval: trade a bounded score loss for an
/// early end to the block scan.
///
/// Exact retrieval must keep scanning until every remaining block's
/// Cauchy–Schwarz bound `‖x_u‖ · max‖θ_v‖` falls below the heap threshold
/// `t`.  Approximate retrieval discounts that bound by `1 − epsilon` before
/// comparing: the scan of a segment stops at the first block `b` where
///
/// ```text
/// ‖x_u‖ · suffix_max[b] · NORM_BOUND_SLACK · (1 − epsilon) < t
/// ```
///
/// (`suffix_max[b]` = the largest block-max norm from `b` to the end of the
/// segment, so the rule is safe for **any** stored order; in a
/// norm-descending layout it equals `block_max[b]` and fires
/// systematically).  Every item the stop can drop satisfies
/// `score < t / (1 − epsilon)` — the score loss is bounded relative to the
/// k-th best already found, which is why small epsilons cost little recall.
/// At `epsilon = 0` the stop rule coincides with exact per-block pruning
/// and results are **bit-identical** to the exact path.
///
/// `max_blocks` is an orthogonal hard budget on blocks *scored* per
/// retrieval.  Both mechanisms only engage once the heap holds `k` items —
/// a `k ≥ catalog` request (the heap never fills) or a zero-norm user
/// (threshold stuck at 0, bound 0 everywhere) always scans exhaustively and
/// returns full exact results, never a short list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxPolicy {
    /// Relative slack on the termination bound, in `[0, 1)`.  `0` keeps the
    /// scan exact; larger values stop earlier and lose more recall.
    pub epsilon: f32,
    /// Hard budget of blocks scored per retrieval once the heap is full
    /// (`0` = unlimited).
    pub max_blocks: usize,
    /// Advisory recall floor for measurement harnesses and smoke gates —
    /// does not influence the scan itself.
    pub target_recall: f64,
}

/// Default `epsilon` of [`ApproxPolicy::default`] — chosen so the recall
/// harness stays ≥ 0.95 on skewed-norm catalogs while the scan stops
/// measurably earlier than exact pruning.
pub const DEFAULT_APPROX_EPSILON: f32 = 0.1;

impl Default for ApproxPolicy {
    fn default() -> Self {
        Self {
            epsilon: DEFAULT_APPROX_EPSILON,
            max_blocks: 0,
            target_recall: 0.95,
        }
    }
}

impl ApproxPolicy {
    /// A policy equivalent to exact retrieval (`epsilon = 0`, no budget).
    pub fn exact() -> Self {
        Self {
            epsilon: 0.0,
            max_blocks: 0,
            target_recall: 1.0,
        }
    }

    /// A policy with the given epsilon and no block budget.
    ///
    /// # Panics
    /// Panics unless `0 ≤ epsilon < 1`.
    pub fn with_epsilon(epsilon: f32) -> Self {
        let p = Self {
            epsilon,
            ..Self::default()
        };
        p.validate();
        p
    }

    /// True when this policy cannot change results (`epsilon ≤ 0` and no
    /// block budget) — such a policy may share cache entries and micro-
    /// batches with exact requests.
    pub fn is_exact(&self) -> bool {
        self.epsilon <= 0.0 && self.max_blocks == 0
    }

    /// Asserts the policy is usable.
    ///
    /// # Panics
    /// Panics when `epsilon` is outside `[0, 1)` or not finite.
    pub fn validate(&self) {
        assert!(
            self.epsilon.is_finite() && (0.0..1.0).contains(&self.epsilon),
            "approx epsilon must lie in [0, 1), got {}",
            self.epsilon
        );
    }

    /// The multiplier applied to the Cauchy–Schwarz bound before the
    /// termination comparison (slack for f32 rounding included).
    pub fn termination_slack(&self) -> f32 {
        NORM_BOUND_SLACK * (1.0 - self.epsilon)
    }
}

/// Largest block-max norm from each block to the end of the segment:
/// `suffix_max[b] = max(block_max[b..])`.  The early-termination rule
/// compares against this (not `block_max[b]`) so stopping a segment scan is
/// safe for any stored order; for a norm-descending layout the two tables
/// coincide.
pub fn suffix_max_norms(block_max: &[f32]) -> Vec<f32> {
    let mut suffix = block_max.to_vec();
    for b in (0..suffix.len().saturating_sub(1)).rev() {
        suffix[b] = suffix[b].max(suffix[b + 1]);
    }
    suffix
}

/// Blocked, threshold-pruned top-`k` retrieval of one user vector over a
/// **segmented** item catalog: each [`SegmentView`] is scored block by block
/// with its own block-max table (segments are block-aligned on their own, so
/// no kernel call straddles a boundary), stored rows are remapped to global
/// item ids on the way into one shared [`TopK`] heap, and whole blocks are
/// skipped exactly as in [`retrieve_top_k_pruned`].
///
/// Results are bit-identical to [`retrieve_top_k`] over the equivalent
/// contiguous catalog-order slab, for any segmentation and any per-segment
/// permutation — scores depend only on the vectors and the heap tie-break
/// is a total order on `(score, global id)`.  Dot-product scores only (the
/// norm bound does not apply to norm-divided scores).
///
/// `stats` accumulates the per-block prune/score decisions.
pub fn retrieve_top_k_segments<F: FnMut(u32) -> bool>(
    user: &[f32],
    f: usize,
    k: usize,
    segments: &[SegmentView<'_>],
    mut skip: F,
    stats: &mut PruneStats,
) -> Vec<(u32, f32)> {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(user.len(), f, "user vector length mismatch");
    if k == 0 {
        return Vec::new();
    }
    let user_norm = crate::blas::norm_sq(user).sqrt();
    let scratch = segments
        .iter()
        .map(|s| s.item_block.min(s.n_items().max(1)))
        .max()
        .unwrap_or(1);
    let mut topk = TopK::new(k);
    let mut scores = vec![0.0f32; scratch];
    for seg in segments {
        seg.validate(f);
        let n = seg.n_items();
        for (b, start) in (0..n).step_by(seg.item_block).enumerate() {
            if let Some(threshold) = topk.threshold() {
                if user_norm * seg.block_max[b] * NORM_BOUND_SLACK < threshold {
                    stats.blocks_pruned += 1;
                    continue;
                }
            }
            stats.blocks_scored += 1;
            let end = (start + seg.item_block).min(n);
            let out = &mut scores[..end - start];
            batch_score_segment(user, 1, seg, start, end, f, out);
            for (j, &s) in out.iter().enumerate() {
                let item = seg.global_id(start + j);
                if !skip(item) {
                    topk.push(item, s);
                }
            }
        }
    }
    topk.into_sorted_vec()
}

/// Early-exit variant of [`retrieve_top_k_segments`]: identical blocked,
/// threshold-pruned scan, but an [`ApproxPolicy`] may end a segment's scan
/// before the exact bound does.
///
/// Two stop rules, both gated on the heap already holding `k` items:
///
/// * **Epsilon termination** — the scan of a segment stops at the first
///   block `b` where `‖x_u‖ · suffix_max[b] · NORM_BOUND_SLACK ·
///   (1 − epsilon) < threshold`; the blocks left behind are counted in
///   [`PruneStats::blocks_terminated`].  With `epsilon = 0` the rule is
///   implied by the exact per-block bound on every remaining block, so
///   results are **bit-identical** to [`retrieve_top_k_segments`] for any
///   segmentation and any stored order (only the pruned/terminated
///   classification of the skipped tail may differ).
/// * **Block budget** — once `policy.max_blocks > 0` blocks have been
///   scored, further blocks are skipped as terminated.
///
/// Because both rules require a full heap, a request with `k ≥` catalog
/// size or a zero-norm user vector (threshold pinned at `0`, bound `0`
/// everywhere, and `0 < 0` is false) degrades to the full exact scan and
/// always returns complete results.  Dot-product scores only, like the
/// exact variant.
pub fn retrieve_top_k_segments_approx<F: FnMut(u32) -> bool>(
    user: &[f32],
    f: usize,
    k: usize,
    segments: &[SegmentView<'_>],
    mut skip: F,
    policy: &ApproxPolicy,
    stats: &mut PruneStats,
) -> Vec<(u32, f32)> {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(user.len(), f, "user vector length mismatch");
    policy.validate();
    if k == 0 {
        return Vec::new();
    }
    let user_norm = crate::blas::norm_sq(user).sqrt();
    let term_slack = policy.termination_slack();
    let scratch = segments
        .iter()
        .map(|s| s.item_block.min(s.n_items().max(1)))
        .max()
        .unwrap_or(1);
    let mut topk = TopK::new(k);
    let mut scores = vec![0.0f32; scratch];
    let mut scored_blocks = 0usize;
    for seg in segments {
        seg.validate(f);
        let n = seg.n_items();
        let n_blocks = n.div_ceil(seg.item_block.max(1));
        let suffix = suffix_max_norms(seg.block_max);
        for (b, start) in (0..n).step_by(seg.item_block).enumerate() {
            if let Some(threshold) = topk.threshold() {
                if user_norm * suffix[b] * term_slack < threshold {
                    stats.blocks_terminated += (n_blocks - b) as u64;
                    break;
                }
                if user_norm * seg.block_max[b] * NORM_BOUND_SLACK < threshold {
                    stats.blocks_pruned += 1;
                    continue;
                }
                if policy.max_blocks > 0 && scored_blocks >= policy.max_blocks {
                    stats.blocks_terminated += 1;
                    continue;
                }
            }
            stats.blocks_scored += 1;
            scored_blocks += 1;
            let end = (start + seg.item_block).min(n);
            let out = &mut scores[..end - start];
            batch_score_segment(user, 1, seg, start, end, f, out);
            for (j, &s) in out.iter().enumerate() {
                let item = seg.global_id(start + j);
                if !skip(item) {
                    topk.push(item, s);
                }
            }
        }
    }
    topk.into_sorted_vec()
}

/// Merges per-shard partial top-k lists into the final top-`k`.
///
/// Exactness: the [`TopK`] tie-break is a total order (score descending,
/// item id ascending), so the kept set is independent of push order — as
/// long as every item that would survive the unsharded heap appears in some
/// partial list (guaranteed when each shard keeps its own top-`k`, and the
/// shards may span any mix of catalog segments), the merged result is
/// bit-identical to scoring the shards as one run.
pub fn merge_top_k(parts: &[Vec<(u32, f32)>], k: usize) -> Vec<(u32, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let mut topk = TopK::new(k);
    for part in parts {
        for &(item, score) in part {
            topk.push(item, score);
        }
    }
    topk.into_sorted_vec()
}

/// Blocked top-k retrieval of a single user vector against a row-major item
/// factor table: scores `items` in blocks of `item_block` vectors through
/// [`batch_score_block`] and keeps the best `k` in a [`TopK`] heap.
///
/// `skip(item)` excludes items from the result (typically the user's
/// already-rated items).  Returns `(item, score)` sorted by score descending.
pub fn retrieve_top_k<F: FnMut(u32) -> bool>(
    user: &[f32],
    items: &[f32],
    f: usize,
    k: usize,
    item_block: usize,
    skip: F,
) -> Vec<(u32, f32)> {
    retrieve_impl(user, items, f, k, item_block, None, skip)
}

/// [`retrieve_top_k`] with whole-block threshold short-circuiting: once the
/// heap is full, any block whose score upper bound
/// `‖x_u‖ · block_max[b] · NORM_BOUND_SLACK` falls strictly below the k-th
/// best score ([`TopK::threshold`]) is skipped without touching its factors.
///
/// `block_max` must come from [`block_max_norms`] over the same item norms
/// and the same `item_block`.  Results are bit-identical to
/// [`retrieve_top_k`]; only dot-product scores may use this path (a
/// norm-divided score has no per-block bound tighter than `‖x_u‖`).
pub fn retrieve_top_k_pruned<F: FnMut(u32) -> bool>(
    user: &[f32],
    items: &[f32],
    f: usize,
    k: usize,
    item_block: usize,
    block_max: &[f32],
    skip: F,
) -> Vec<(u32, f32)> {
    retrieve_impl(user, items, f, k, item_block, Some(block_max), skip)
}

fn retrieve_impl<F: FnMut(u32) -> bool>(
    user: &[f32],
    items: &[f32],
    f: usize,
    k: usize,
    item_block: usize,
    block_max: Option<&[f32]>,
    mut skip: F,
) -> Vec<(u32, f32)> {
    assert!(f > 0, "latent dimension must be positive");
    assert!(item_block > 0, "item block must be positive");
    assert_eq!(user.len(), f, "user vector length mismatch");
    if k == 0 {
        return Vec::new();
    }
    assert_eq!(items.len() % f, 0, "item buffer not a multiple of f");
    let n_items = items.len() / f;
    // The user norm feeds only the pruning bound; the unpruned path must
    // not pay for it.
    let user_norm = block_max.map(|bm| {
        assert_eq!(
            bm.len(),
            n_items.div_ceil(item_block),
            "block max norms do not match the item blocking"
        );
        crate::blas::norm_sq(user).sqrt()
    });
    let mut topk = TopK::new(k);
    let mut scores = vec![0.0f32; item_block.min(n_items.max(1))];
    for (b, start) in (0..n_items).step_by(item_block).enumerate() {
        if let (Some(bm), Some(norm), Some(threshold)) = (block_max, user_norm, topk.threshold()) {
            if norm * bm[b] * NORM_BOUND_SLACK < threshold {
                continue;
            }
        }
        let end = (start + item_block).min(n_items);
        let block = &items[start * f..end * f];
        let out = &mut scores[..end - start];
        batch_score_block(user, 1, block, end - start, f, out);
        for (j, &s) in out.iter().enumerate() {
            let item = (start + j) as u32;
            if !skip(item) {
                topk.push(item, s);
            }
        }
    }
    topk.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FactorMatrix;

    #[test]
    fn keeps_the_k_best_sorted() {
        let mut t = TopK::new(3);
        for (i, s) in [1.0f32, 5.0, 3.0, 4.0, 2.0].iter().enumerate() {
            t.push(i as u32, *s);
        }
        assert_eq!(t.into_sorted_vec(), vec![(1, 5.0), (3, 4.0), (2, 3.0)]);
    }

    #[test]
    fn fewer_items_than_k_returns_all() {
        let mut t = TopK::new(10);
        t.push(7, 0.5);
        t.push(3, 1.5);
        assert_eq!(t.into_sorted_vec(), vec![(3, 1.5), (7, 0.5)]);
    }

    #[test]
    fn ties_prefer_small_item_ids() {
        let mut t = TopK::new(2);
        for item in [9u32, 1, 5, 3] {
            t.push(item, 1.0);
        }
        assert_eq!(t.into_sorted_vec(), vec![(1, 1.0), (3, 1.0)]);
    }

    #[test]
    fn threshold_tracks_the_kth_score() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(0, 1.0);
        assert_eq!(t.threshold(), None);
        t.push(1, 3.0);
        assert_eq!(t.threshold(), Some(1.0));
        t.push(2, 2.0);
        assert_eq!(t.threshold(), Some(2.0));
    }

    #[test]
    fn nan_scores_are_ignored() {
        let mut t = TopK::new(2);
        t.push(0, f32::NAN);
        t.push(1, 1.0);
        assert_eq!(t.into_sorted_vec(), vec![(1, 1.0)]);
    }

    #[test]
    fn retrieve_matches_full_sort_reference() {
        let f = 8;
        let n = 1000;
        let theta = FactorMatrix::random(n, f, 1.0, 42);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 7).data().to_vec();
        let got = retrieve_top_k(&user, theta.data(), f, 10, 64, |v| v % 97 == 0);

        // Reference: score the whole table with the same kernel, then fully
        // sort — the heap must select exactly the same winners.
        let mut all_scores = vec![0.0f32; n];
        batch_score_block(&user, 1, theta.data(), n, f, &mut all_scores);
        let mut reference: Vec<(u32, f32)> = (0..n as u32)
            .filter(|v| v % 97 != 0)
            .map(|v| (v, all_scores[v as usize]))
            .collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        reference.truncate(10);
        assert_eq!(got, reference);
    }

    #[test]
    fn block_size_does_not_change_results() {
        let f = 4;
        let theta = FactorMatrix::random(333, f, 1.0, 3);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 9).data().to_vec();
        let a = retrieve_top_k(&user, theta.data(), f, 7, 8, |_| false);
        let b = retrieve_top_k(&user, theta.data(), f, 7, 1000, |_| false);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    #[test]
    fn block_max_norms_cover_every_block() {
        let norms = vec![1.0f32, 3.0, 2.0, 0.5, 7.0, 0.0, 4.0];
        assert_eq!(block_max_norms(&norms, 3), vec![3.0, 7.0, 4.0]);
        assert_eq!(block_max_norms(&norms, 100), vec![7.0]);
        assert!(block_max_norms(&[], 4).is_empty());
    }

    #[test]
    fn item_norms_match_per_row_norms() {
        let theta = FactorMatrix::random(37, 5, 1.0, 21);
        let norms = item_norms(theta.data(), 5);
        assert_eq!(norms.len(), 37);
        for (v, &norm) in norms.iter().enumerate() {
            let expect = crate::blas::norm_sq(theta.vector(v)).sqrt();
            assert_eq!(norm, expect);
        }
        assert!(item_norms(&[], 5).is_empty());
    }

    #[test]
    fn merge_of_shard_partials_matches_single_run() {
        let f = 8;
        let n = 600;
        let theta = FactorMatrix::random(n, f, 1.0, 17);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 18).data().to_vec();
        let whole = retrieve_top_k(&user, theta.data(), f, 9, 64, |_| false);
        // Split the catalog into 4 uneven shards, keep top-9 per shard,
        // merge: bit-identical to the single run.
        let cuts = [0usize, 150, 151, 400, n];
        let parts: Vec<Vec<(u32, f32)>> = cuts
            .windows(2)
            .map(|w| {
                let part =
                    retrieve_top_k(&user, &theta.data()[w[0] * f..w[1] * f], f, 9, 64, |_| {
                        false
                    });
                part.into_iter()
                    .map(|(v, s)| (v + w[0] as u32, s))
                    .collect()
            })
            .collect();
        assert_eq!(merge_top_k(&parts, 9), whole);
    }

    #[test]
    fn merge_top_k_handles_edge_shapes() {
        assert!(merge_top_k(&[], 5).is_empty());
        assert!(merge_top_k(&[vec![(1, 1.0)]], 0).is_empty());
        // Duplicate items across parts keep a single entry per push order
        // invariance (the heap dedupes nothing — callers shard disjointly —
        // but ties still prefer small ids deterministically).
        let merged = merge_top_k(&[vec![(3, 1.0), (1, 1.0)], vec![(2, 1.0)]], 2);
        assert_eq!(merged, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn pruned_retrieval_is_bit_identical_to_unpruned() {
        let f = 6;
        let n = 1111;
        for seed in 0..4u64 {
            let theta = FactorMatrix::random(n, f, 1.0, seed);
            let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 100 + seed).data().to_vec();
            let norms: Vec<f32> = theta
                .data()
                .chunks_exact(f)
                .map(|v| crate::blas::norm_sq(v).sqrt())
                .collect();
            for item_block in [7usize, 64, 2000] {
                let bm = block_max_norms(&norms, item_block);
                let plain = retrieve_top_k(&user, theta.data(), f, 10, item_block, |v| v % 31 == 0);
                let pruned =
                    retrieve_top_k_pruned(&user, theta.data(), f, 10, item_block, &bm, |v| {
                        v % 31 == 0
                    });
                assert_eq!(plain, pruned, "seed {seed} block {item_block}");
            }
        }
    }

    #[test]
    fn pruning_skips_low_norm_blocks_without_changing_winners() {
        // First block holds all the mass; the long tail of near-zero blocks
        // is prunable once the heap fills.  The result must still match the
        // unpruned reference exactly.
        let f = 4;
        let n = 512;
        let mut data = vec![1e-6f32; n * f];
        for v in 0..8 {
            for d in 0..f {
                data[v * f + d] = (v + 2) as f32;
            }
        }
        let theta = FactorMatrix::from_vec(n, f, data);
        let user = vec![1.0f32; f];
        let norms: Vec<f32> = theta
            .data()
            .chunks_exact(f)
            .map(|v| crate::blas::norm_sq(v).sqrt())
            .collect();
        let bm = block_max_norms(&norms, 16);
        let plain = retrieve_top_k(&user, theta.data(), f, 5, 16, |_| false);
        let pruned = retrieve_top_k_pruned(&user, theta.data(), f, 5, 16, &bm, |_| false);
        assert_eq!(plain, pruned);
        assert_eq!(pruned[0].0, 9 - 2, "largest seeded item wins");
    }

    /// Builds catalog-order segment views over `theta` split at `cuts`
    /// (global item offsets), each blocked at `item_block`.
    fn views_at<'a>(
        theta: &'a FactorMatrix,
        cuts: &[usize],
        item_block: usize,
        norms: &'a [f32],
        tables: &'a mut Vec<Vec<f32>>,
    ) -> Vec<SegmentView<'a>> {
        let f = theta.rank();
        tables.clear();
        for w in cuts.windows(2) {
            tables.push(block_max_norms(&norms[w[0]..w[1]], item_block));
        }
        cuts.windows(2)
            .zip(tables.iter())
            .map(|(w, bm)| SegmentView {
                items: &theta.data()[w[0] * f..w[1] * f],
                norms: &norms[w[0]..w[1]],
                block_max: bm,
                item_block,
                first_id: w[0] as u32,
                ids: None,
                pos: None,
                encoded: None,
            })
            .collect()
    }

    #[test]
    fn segmented_retrieval_matches_contiguous_for_any_split() {
        let f = 6;
        let n = 777;
        let theta = FactorMatrix::random(n, f, 1.0, 51);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 52).data().to_vec();
        let norms = item_norms(theta.data(), f);
        let bm = block_max_norms(&norms, 64);
        let expect = retrieve_top_k_pruned(&user, theta.data(), f, 9, 64, &bm, |v| v % 13 == 0);
        for cuts in [
            vec![0usize, n],
            vec![0, 100, n],
            vec![0, 64, 65, 300, n],
            vec![0, 1, 2, 3, n],
        ] {
            let mut tables = Vec::new();
            let views = views_at(&theta, &cuts, 64, &norms, &mut tables);
            let mut stats = PruneStats::default();
            let got = retrieve_top_k_segments(&user, f, 9, &views, |v| v % 13 == 0, &mut stats);
            assert_eq!(got, expect, "cuts {cuts:?}");
            assert!(
                stats.blocks_scored + stats.blocks_pruned > 0,
                "counters must see every block decision"
            );
        }
    }

    #[test]
    fn segmented_retrieval_remaps_permuted_rows_to_global_ids() {
        // Store the catalog in reverse order with an explicit id remap: the
        // returned ids and scores must match the catalog-order run exactly.
        let f = 4;
        let n = 120;
        let theta = FactorMatrix::random(n, f, 1.0, 61);
        let norms = item_norms(theta.data(), f);
        let mut rev_data = Vec::with_capacity(n * f);
        let mut rev_norms = Vec::with_capacity(n);
        let ids: Vec<u32> = (0..n as u32).rev().collect();
        for &g in &ids {
            rev_data.extend_from_slice(theta.vector(g as usize));
            rev_norms.push(norms[g as usize]);
        }
        let bm = block_max_norms(&rev_norms, 16);
        let view = SegmentView {
            items: &rev_data,
            norms: &rev_norms,
            block_max: &bm,
            item_block: 16,
            first_id: 0,
            ids: Some(&ids),
            pos: None,
            encoded: None,
        };
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 62).data().to_vec();
        let plain_bm = block_max_norms(&norms, 16);
        let expect = retrieve_top_k_pruned(&user, theta.data(), f, 7, 16, &plain_bm, |_| false);
        let mut stats = PruneStats::default();
        let got = retrieve_top_k_segments(&user, f, 7, &[view], |_| false, &mut stats);
        assert_eq!(got, expect);
    }

    #[test]
    fn prune_stats_merge_and_fraction() {
        let mut a = PruneStats {
            blocks_scored: 3,
            blocks_pruned: 1,
            blocks_terminated: 2,
            ..Default::default()
        };
        a.merge(&PruneStats {
            blocks_scored: 1,
            blocks_pruned: 3,
            blocks_terminated: 4,
            bytes_scanned: 100,
            rerank_candidates: 5,
            rerank_ns: 40,
        });
        assert_eq!(a.blocks_scored, 4);
        assert_eq!(a.blocks_pruned, 4);
        assert_eq!(a.blocks_terminated, 6);
        assert_eq!(a.bytes_scanned, 100);
        assert_eq!(a.rerank_candidates, 5);
        assert_eq!(a.blocks_visited(), 14);
        // Terminated blocks widen the denominator of both rates but feed
        // only their own numerator — the exact-pruning rate must not claim
        // credit for approximate skips.
        assert!((a.pruned_fraction() - 4.0 / 14.0).abs() < 1e-12);
        assert!((a.terminated_fraction() - 6.0 / 14.0).abs() < 1e-12);
        assert_eq!(PruneStats::default().pruned_fraction(), 0.0);
        assert_eq!(PruneStats::default().terminated_fraction(), 0.0);
    }

    #[test]
    fn suffix_max_runs_right_to_left() {
        assert_eq!(
            suffix_max_norms(&[1.0, 5.0, 2.0, 4.0, 3.0]),
            vec![5.0, 5.0, 4.0, 4.0, 3.0]
        );
        // Already descending: suffix max coincides with the table itself.
        let desc = [7.0f32, 6.0, 2.0, 1.0];
        assert_eq!(suffix_max_norms(&desc), desc.to_vec());
        assert!(suffix_max_norms(&[]).is_empty());
    }

    #[test]
    fn approx_policy_shapes() {
        assert!(ApproxPolicy::exact().is_exact());
        assert!(ApproxPolicy::with_epsilon(0.0).is_exact());
        assert!(!ApproxPolicy::with_epsilon(0.05).is_exact());
        assert!(!ApproxPolicy {
            epsilon: 0.0,
            max_blocks: 3,
            target_recall: 1.0,
        }
        .is_exact());
        assert_eq!(ApproxPolicy::exact().termination_slack(), NORM_BOUND_SLACK);
    }

    #[test]
    #[should_panic(expected = "approx epsilon must lie in [0, 1)")]
    fn approx_policy_rejects_epsilon_of_one() {
        ApproxPolicy::with_epsilon(1.0);
    }

    /// Sorts `theta` rows by norm descending and returns the permuted data,
    /// norms, and the global-id remap — a hand-rolled norm-descending
    /// segment like the serve-side `ItemStore` builds.
    fn norm_descending(theta: &FactorMatrix) -> (Vec<f32>, Vec<f32>, Vec<u32>) {
        let f = theta.rank();
        let norms = item_norms(theta.data(), f);
        let mut order: Vec<u32> = (0..norms.len() as u32).collect();
        order.sort_by(|&a, &b| {
            norms[b as usize]
                .total_cmp(&norms[a as usize])
                .then(a.cmp(&b))
        });
        let mut data = Vec::with_capacity(theta.data().len());
        let mut perm_norms = Vec::with_capacity(norms.len());
        for &g in &order {
            data.extend_from_slice(theta.vector(g as usize));
            perm_norms.push(norms[g as usize]);
        }
        (data, perm_norms, order)
    }

    #[test]
    fn approx_with_zero_epsilon_is_bit_identical_for_any_split() {
        let f = 6;
        let n = 777;
        let theta = FactorMatrix::random(n, f, 1.0, 51);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 52).data().to_vec();
        let norms = item_norms(theta.data(), f);
        for cuts in [vec![0usize, n], vec![0, 100, n], vec![0, 64, 65, 300, n]] {
            let mut tables = Vec::new();
            let views = views_at(&theta, &cuts, 64, &norms, &mut tables);
            let mut exact_stats = PruneStats::default();
            let expect =
                retrieve_top_k_segments(&user, f, 9, &views, |v| v % 13 == 0, &mut exact_stats);
            let mut stats = PruneStats::default();
            let got = retrieve_top_k_segments_approx(
                &user,
                f,
                9,
                &views,
                |v| v % 13 == 0,
                &ApproxPolicy::exact(),
                &mut stats,
            );
            assert_eq!(got, expect, "cuts {cuts:?}");
            // At epsilon = 0 termination only fires where exact pruning
            // would skip every remaining block — never on blocks that would
            // have been scored.
            assert_eq!(
                stats.blocks_scored, exact_stats.blocks_scored,
                "cuts {cuts:?}"
            );
        }
    }

    #[test]
    fn approx_scans_monotonically_fewer_blocks_as_epsilon_grows() {
        // Skewed norms, stored norm-descending (one segment) — exactly the
        // serving-side layout that makes epsilon termination systematic.
        let f = 8;
        let n = 4096;
        let base = FactorMatrix::random(n, f, 1.0, 77);
        let mut data = base.data().to_vec();
        for v in 0..n {
            let h = (v as u32).wrapping_mul(2654435761) % 64;
            let scale = if h == 0 { 4.0 } else { 0.01 + 0.001 * h as f32 };
            for d in 0..f {
                data[v * f + d] *= scale;
            }
        }
        let theta = FactorMatrix::from_vec(n, f, data);
        let (perm_data, perm_norms, order) = norm_descending(&theta);
        let bm = block_max_norms(&perm_norms, 64);
        let view = SegmentView {
            items: &perm_data,
            norms: &perm_norms,
            block_max: &bm,
            item_block: 64,
            first_id: 0,
            ids: Some(&order),
            pos: None,
            encoded: None,
        };
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 78).data().to_vec();
        let mut prev_scored = u64::MAX;
        for eps in [0.0f32, 0.05, 0.1, 0.3, 0.6] {
            let mut stats = PruneStats::default();
            let got = retrieve_top_k_segments_approx(
                &user,
                f,
                10,
                std::slice::from_ref(&view),
                |_| false,
                &ApproxPolicy::with_epsilon(eps),
                &mut stats,
            );
            assert_eq!(got.len(), 10, "eps {eps}");
            assert!(
                stats.blocks_scored <= prev_scored,
                "eps {eps}: scored {} after {} at the smaller epsilon",
                stats.blocks_scored,
                prev_scored
            );
            prev_scored = stats.blocks_scored;
        }
        // A coarse epsilon on a skewed catalog must actually terminate.
        assert!(prev_scored < bm.len() as u64);
    }

    #[test]
    fn approx_block_budget_caps_scored_blocks_only_once_full() {
        let f = 4;
        let n = 640; // 10 blocks of 64
        let theta = FactorMatrix::random(n, f, 1.0, 90);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, 91).data().to_vec();
        let norms = item_norms(theta.data(), f);
        let mut tables = Vec::new();
        let views = views_at(&theta, &[0, n], 64, &norms, &mut tables);
        let policy = ApproxPolicy {
            epsilon: 0.0,
            max_blocks: 2,
            target_recall: 1.0,
        };
        let mut stats = PruneStats::default();
        let got =
            retrieve_top_k_segments_approx(&user, f, 5, &views, |_| false, &policy, &mut stats);
        assert_eq!(got.len(), 5, "budgeted scan still returns a full list");
        assert_eq!(stats.blocks_scored, 2);
        assert!(stats.blocks_terminated > 0);

        // k ≥ catalog: the heap never fills, so the budget never engages and
        // every item comes back — never a short list.
        let mut stats = PruneStats::default();
        let all =
            retrieve_top_k_segments_approx(&user, f, n + 5, &views, |_| false, &policy, &mut stats);
        assert_eq!(all.len(), n);
        assert_eq!(stats.blocks_scored, 10);
        assert_eq!(stats.blocks_terminated, 0);
        let mut exact_stats = PruneStats::default();
        let exact = retrieve_top_k_segments(&user, f, n + 5, &views, |_| false, &mut exact_stats);
        assert_eq!(all, exact);
    }

    #[test]
    fn approx_zero_norm_user_degrades_to_full_exact_scan() {
        let f = 4;
        let n = 320;
        let theta = FactorMatrix::random(n, f, 1.0, 93);
        let norms = item_norms(theta.data(), f);
        let mut tables = Vec::new();
        let views = views_at(&theta, &[0, n], 64, &norms, &mut tables);
        let user = vec![0.0f32; f];
        let policy = ApproxPolicy::with_epsilon(0.5);
        let mut stats = PruneStats::default();
        let got =
            retrieve_top_k_segments_approx(&user, f, 7, &views, |_| false, &policy, &mut stats);
        let mut exact_stats = PruneStats::default();
        let exact = retrieve_top_k_segments(&user, f, 7, &views, |_| false, &mut exact_stats);
        // Bound and threshold are both 0; `0 < 0` never holds, so nothing
        // is pruned or terminated and the results are the exact ones.
        assert_eq!(got, exact);
        assert_eq!(got.len(), 7);
        assert_eq!(stats.blocks_terminated, 0);
        assert_eq!(stats.blocks_scored, 5);
    }

    #[test]
    #[should_panic(expected = "block max norms do not match")]
    fn pruned_retrieval_rejects_mismatched_blocking() {
        let theta = FactorMatrix::random(64, 4, 1.0, 1);
        let user = vec![1.0f32; 4];
        retrieve_top_k_pruned(&user, theta.data(), 4, 3, 16, &[1.0; 2], |_| false);
    }
}

//! Property-based tests of the core ALS invariants:
//!
//! * the ALS objective never increases, whatever the data looks like;
//! * SU-ALS is numerically equivalent to the reference engine for any
//!   partitioning;
//! * the planner's feasibility predicate is monotone and its plans satisfy
//!   equation (8);
//! * the reduction schemes never lose bytes and two-phase never beats the
//!   physical lower bound.

use cumf_core::als::su::{SuAlsConfig, SuAlsEngine};
use cumf_core::als::BaseAls;
use cumf_core::config::AlsConfig;
use cumf_core::planner::{feasible, footprint_words, plan_with_capacity, ProblemDims};
use cumf_core::reduce::{reduction_time, ReductionScheme};
use cumf_data::synth::SyntheticConfig;
use cumf_gpu_sim::{GpuCluster, PcieTopology};
use proptest::prelude::*;

fn synthetic(m: u32, n: u32, nnz: usize, seed: u64) -> cumf_sparse::Csr {
    SyntheticConfig {
        m,
        n,
        nnz,
        rank: 4,
        noise_std: 0.2,
        seed,
        ..Default::default()
    }
    .generate()
    .to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn als_objective_never_increases(
        m in 40u32..120,
        n in 20u32..80,
        density in 0.05f64..0.3,
        f in 4usize..12,
        lambda in 0.01f32..1.0,
        seed in 0u64..1000,
    ) {
        let nnz = ((m as f64 * n as f64) * density) as usize;
        let r = synthetic(m, n, nnz.max(10), seed);
        let config = AlsConfig { f, lambda, iterations: 3, ..Default::default() };
        let mut engine = BaseAls::new(config, r);
        let mut prev = engine.objective();
        for _ in 0..3 {
            engine.iterate();
            let j = engine.objective();
            prop_assert!(j <= prev * (1.0 + 1e-5), "objective rose: {prev} -> {j}");
            prop_assert!(j.is_finite());
            prev = j;
        }
    }

    #[test]
    fn su_als_matches_reference_for_any_partitioning(
        p in 1usize..5,
        q in 1usize..5,
        n_gpus in 1usize..4,
        seed in 0u64..500,
    ) {
        let r = synthetic(90, 60, 1800, seed);
        let config = AlsConfig { f: 8, lambda: 0.05, iterations: 1, ..Default::default() };
        let mut reference = BaseAls::new(config.clone(), r.clone());
        let cluster = GpuCluster::titan_x_flat(n_gpus);
        let su_cfg = SuAlsConfig::with_plan(config, ReductionScheme::TwoPhase, p, q);
        let mut su = SuAlsEngine::new(su_cfg, r, cluster);
        reference.iterate();
        let stats = su.iterate();
        prop_assert!(su.x().max_abs_diff(reference.x()) < 5e-2,
            "X mismatch: {}", su.x().max_abs_diff(reference.x()));
        prop_assert!(su.theta().max_abs_diff(reference.theta()) < 5e-2,
            "Theta mismatch: {}", su.theta().max_abs_diff(reference.theta()));
        prop_assert!(stats.total() > 0.0);
    }

    #[test]
    fn planner_footprint_is_monotone_and_plans_are_feasible(
        m in 1_000_000u64..1_000_000_000,
        n in 10_000u64..10_000_000,
        nz_per_row in 10u64..500,
        f in 8u64..128,
    ) {
        let nz = m * nz_per_row;
        let dims = ProblemDims::new(m, n, nz, f);
        // Monotonicity in p and q.
        prop_assert!(footprint_words(&dims, 2, 4) <= footprint_words(&dims, 1, 4));
        prop_assert!(footprint_words(&dims, 2, 8) <= footprint_words(&dims, 2, 4));
        // Any plan returned by the planner satisfies equation (8).
        let capacity = 3_000_000_000u64; // a 12 GB card in f32 words
        if let Ok(plan) = plan_with_capacity(&dims, capacity, 0, 64, 1 << 20) {
            prop_assert!(feasible(&dims, plan.p, plan.q, capacity, 0));
        }
    }

    #[test]
    fn reduction_schemes_are_ordered_sensibly(
        bytes in 1e7f64..5e9,
        n_gpus in 2usize..5,
    ) {
        let flat = PcieTopology::flat(n_gpus);
        let dual = PcieTopology::dual_socket(n_gpus);
        let single = reduction_time(ReductionScheme::SingleGpu, &flat, bytes);
        let one = reduction_time(ReductionScheme::OnePhase, &flat, bytes);
        let one_dual = reduction_time(ReductionScheme::OnePhase, &dual, bytes);
        let two_dual = reduction_time(ReductionScheme::TwoPhase, &dual, bytes);
        // Parallel reduction never loses to shipping everything to one GPU.
        prop_assert!(one <= single + 1e-12);
        // The two-phase scheme is designed for machines with the GPUs split
        // evenly across the sockets (the paper's 2+2 configuration); on such
        // machines it never loses to the naive one-phase scheme by more than
        // its extra phase's fixed latency, and wins outright once transfers
        // are large enough for bandwidth to dominate.
        if n_gpus % 2 == 0 {
            prop_assert!(two_dual <= one_dual + dual.latency_s + 1e-12);
            // With at least two GPUs per socket the intra-socket combining
            // step actually removes cross-socket traffic, so the win is strict.
            if bytes >= 1e8 && n_gpus >= 4 {
                prop_assert!(two_dual < one_dual, "two-phase should win outright for large reductions");
            }
        }
        // All times are positive and finite.
        for t in [single, one, one_dual, two_dual] {
            prop_assert!(t > 0.0 && t.is_finite());
        }
    }
}

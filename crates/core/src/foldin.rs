//! Incremental user fold-in: solving new-or-updated users against frozen
//! item factors.
//!
//! The ALS update of equation (2) solves every user's factors from an
//! *independent* per-user Hermitian system — nothing couples user `u`'s
//! solve to any other user once `Θ` is fixed.  That independence is what
//! makes incremental serving cheap: a new user (or a user with fresh
//! ratings) can be **folded in** by solving just their normal equations
//! against the already-trained `Θ`, without touching the other `m − 1` users
//! and without retraining.  The result feeds a serving-side delta
//! publication (`cumf-serve`'s `SnapshotDelta`), which is the paper-scale
//! point: at production sizes, moving whole factor matrices dominates cost,
//! so an update that touches `u` users should move `O(u·f)` bytes.
//!
//! The solve itself is [`crate::als::kernels::solve_side`] — the same fused
//! per-row kernel every training engine uses, parallel over users via
//! rayon — so a folded-in user gets *exactly* the factors one more
//! update-`X` half-iteration would have given them.

use crate::als::kernels::solve_side_instrumented;
use crate::instrument::TrainMetrics;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Coo, Csr};
use std::time::Instant;

/// Solves the ALS normal equations for a batch of users against frozen item
/// factors.
///
/// * `ratings` — one row per folded-in user over the **full catalog** column
///   space (`n_cols == theta.len()`); build it with [`ratings_rows`] from
///   per-user rating lists.
/// * `theta` — the frozen item factors.
/// * `lambda` — the same weighted-λ regularization used in training: each
///   row's ridge is `λ · n_u`.
///
/// Returns one factor row per input row (row `i` of the result belongs to
/// row `i` of `ratings`).  Users with no ratings get a zero vector, exactly
/// like an empty row in training.
///
/// # Panics
/// Panics if `ratings.n_cols() != theta.len()`.
pub fn fold_in_users(ratings: &Csr, theta: &FactorMatrix, lambda: f32) -> FactorMatrix {
    fold_in_users_instrumented(ratings, theta, lambda, None)
}

/// [`fold_in_users`] with optional batch-latency recording: the whole
/// batch's wall time lands in the [`TrainMetrics`] `fold_in` histogram and
/// each non-empty row records its assembly/solve phases, exactly like an
/// instrumented training half-iteration.
pub fn fold_in_users_instrumented(
    ratings: &Csr,
    theta: &FactorMatrix,
    lambda: f32,
    metrics: Option<&TrainMetrics>,
) -> FactorMatrix {
    assert_eq!(
        ratings.n_cols() as usize,
        theta.len(),
        "fold-in ratings must span the item catalog"
    );
    let started = metrics.map(|_| Instant::now());
    let out = solve_side_instrumented(ratings, theta, lambda, metrics);
    if let (Some(m), Some(t0)) = (metrics, started) {
        m.record_fold_in(t0.elapsed());
    }
    out
}

/// Builds the fold-in ratings matrix from per-user `(item, rating)` lists:
/// row `i` holds `rows[i]` over an `n_items`-column space.
///
/// # Panics
/// Panics if any item id is out of range.
pub fn ratings_rows(rows: &[Vec<(u32, f32)>], n_items: u32) -> Csr {
    let mut coo = Coo::with_capacity(rows.len() as u32, n_items, rows.iter().map(Vec::len).sum());
    for (u, row) in rows.iter().enumerate() {
        for &(item, rating) in row {
            coo.push(u as u32, item, rating)
                .expect("fold-in item id out of range");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::BaseAls;
    use crate::config::AlsConfig;
    use cumf_data::synth::SyntheticConfig;

    fn trained() -> (Csr, BaseAls) {
        let data = SyntheticConfig {
            m: 150,
            n: 80,
            nnz: 4000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate();
        let r = data.to_csr();
        let mut engine = BaseAls::new(
            AlsConfig {
                f: 8,
                lambda: 0.05,
                iterations: 4,
                ..Default::default()
            },
            r.clone(),
        );
        for _ in 0..4 {
            engine.iterate();
        }
        (r, engine)
    }

    #[test]
    fn folding_in_training_rows_matches_one_more_half_iteration() {
        // fold_in_users solves the same system as update_x: feeding the
        // training matrix back in must reproduce solve_side's X exactly.
        let (r, mut engine) = trained();
        let folded = fold_in_users(&r, engine.theta(), engine.config().lambda);
        engine.update_x();
        assert_eq!(folded.max_abs_diff(engine.x()), 0.0);
    }

    #[test]
    fn folded_in_user_predicts_their_ratings() {
        // A brand-new user whose ratings follow an existing user's row gets
        // factors that reconstruct those ratings about as well as training
        // did for the original user.
        let (r, engine) = trained();
        let (items, vals) = r.row(3);
        let rows = vec![items.iter().copied().zip(vals.iter().copied()).collect()];
        let batch = ratings_rows(&rows, r.n_cols());
        let folded = fold_in_users(&batch, engine.theta(), engine.config().lambda);
        assert_eq!(folded.len(), 1);
        let mse: f64 = items
            .iter()
            .zip(vals.iter())
            .map(|(&v, &rating)| {
                let p = cumf_linalg::blas::dot(folded.vector(0), engine.theta().vector(v as usize));
                ((p - rating) as f64).powi(2)
            })
            .sum::<f64>()
            / items.len() as f64;
        assert!(mse.sqrt() < 0.5, "fold-in RMSE too high: {}", mse.sqrt());
    }

    #[test]
    fn empty_rating_rows_fold_to_zero_vectors() {
        let (r, engine) = trained();
        let rows = vec![Vec::new(), vec![(0u32, 4.0f32)]];
        let batch = ratings_rows(&rows, r.n_cols());
        let folded = fold_in_users(&batch, engine.theta(), 0.05);
        assert!(folded.vector(0).iter().all(|&v| v == 0.0));
        assert!(folded.vector(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "must span the item catalog")]
    fn catalog_width_mismatch_panics() {
        let (_, engine) = trained();
        let batch = ratings_rows(&[vec![(0, 1.0)]], 10);
        fold_in_users(&batch, engine.theta(), 0.05);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        ratings_rows(&[vec![(99, 1.0)]], 10);
    }
}
